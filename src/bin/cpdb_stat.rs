//! `cpdb_stat` — dump a unified metrics snapshot and flight-recorder tail.
//!
//! Two modes:
//!
//! * **Demo** (default): runs a small full-stack workload — a durable
//!   engine over the in-memory fault VFS, shipped to a follower through an
//!   outbox — and prints the metrics and events every layer recorded along
//!   the way.
//! * **Offline** (`--store DIR`): warm-starts the engine persisted in
//!   `DIR` with an observability sink attached, runs a few probe queries,
//!   and prints what recovery and the probes recorded. Read-only apart
//!   from the store's own recovery housekeeping.
//!
//! Flags: `--store DIR`, `--json`, `--events N` (tail length, default 16).

use consensus_pdb::engine::{ConsensusEngineBuilder, Query, SetMetric, TopKMetric, Variant};
use consensus_pdb::live::{LiveEngine, TreeDelta};
use consensus_pdb::obs::{MetricsSnapshot, Obs};
use consensus_pdb::replica::{Follower, Primary, Transport};
use consensus_pdb::store::{FaultVfs, RetryPolicy, StoreOptions, Vfs};
use consensus_pdb::workloads::{random_scored_bid_tree, BidConfig};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    store: Option<String>,
    json: bool,
    events: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        store: None,
        json: false,
        events: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => {
                args.store = Some(it.next().ok_or("--store needs a directory")?);
            }
            "--json" => args.json = true,
            "--events" => {
                let n = it.next().ok_or("--events needs a count")?;
                args.events = n.parse().map_err(|_| format!("bad --events value {n}"))?;
            }
            "--help" | "-h" => {
                println!("usage: cpdb_stat [--store DIR] [--json] [--events N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn probes() -> Vec<Query> {
    vec![
        Query::SetConsensus {
            metric: SetMetric::SymmetricDifference,
            variant: Variant::Mean,
        },
        Query::TopK {
            k: 5,
            metric: TopKMetric::SymmetricDifference,
            variant: Variant::Mean,
        },
        Query::TopK {
            k: 5,
            metric: TopKMetric::Footrule,
            variant: Variant::Mean,
        },
        Query::TopK {
            k: 3,
            metric: TopKMetric::Kendall,
            variant: Variant::Mean,
        },
    ]
}

/// Demo: primary applies and ships a few epochs, a follower tails them,
/// probe queries run on both — every layer records into one shared sink.
fn demo(obs: &Obs) -> Result<MetricsSnapshot, Box<dyn std::error::Error>> {
    let vfs = FaultVfs::new();
    let options = StoreOptions {
        vfs: Arc::new(vfs.clone()),
        retry: RetryPolicy::no_delay(3),
        obs: obs.clone(),
    };
    let tree = random_scored_bid_tree(&BidConfig {
        num_blocks: 24,
        seed: 7,
        ..BidConfig::default()
    });
    let engine = ConsensusEngineBuilder::new(tree)
        .seed(7)
        .obs(obs.clone())
        .build()?;
    let live = LiveEngine::new_durable_with(engine, Path::new("/demo/store"), options.clone())?;
    let primary = Primary::attach(
        live,
        Arc::new(vfs.clone()) as Arc<dyn Vfs>,
        Path::new("/demo/outbox"),
    )?;
    primary.ship()?;

    let leaves = primary.snapshot().tree().leaf_nodes();
    for i in 0..8usize {
        primary.apply(&TreeDelta::LeafValue {
            leaf: leaves[i % leaves.len()],
            value: 100.0 + i as f64,
        })?;
    }
    primary.ship()?;

    let transport = Transport::new(
        Arc::new(vfs.clone()) as Arc<dyn Vfs>,
        Path::new("/demo/outbox"),
        Arc::new(vfs.clone()) as Arc<dyn Vfs>,
        Path::new("/demo/inbox"),
    )?;
    let mut follower = Follower::open(transport, Path::new("/demo/fstore"), options)?;
    follower.sync()?;

    for query in probes() {
        let _ = primary.snapshot().run(&query)?;
    }
    // Rerun one probe so the artifact caches show hits next to builds.
    let _ = primary.snapshot().run(&probes()[1])?;
    Ok(primary.live().metrics_snapshot())
}

/// Offline: warm-start the store in `dir` with the sink attached and probe
/// it, so the dump shows what recovery replayed and what the probes cost.
fn offline(dir: &str, obs: &Obs) -> Result<MetricsSnapshot, Box<dyn std::error::Error>> {
    let options = StoreOptions {
        obs: obs.clone(),
        ..StoreOptions::default()
    };
    let live = LiveEngine::open_with(Path::new(dir), options)?;
    let snapshot = live.snapshot();
    for query in probes() {
        if let Err(e) = snapshot.run(&query) {
            eprintln!("probe {query:?} failed: {e}");
        }
    }
    Ok(live.metrics_snapshot())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cpdb_stat: {e}");
            return ExitCode::FAILURE;
        }
    };
    let obs = Obs::enabled();
    let snapshot = match match &args.store {
        Some(dir) => offline(dir, &obs),
        None => demo(&obs),
    } {
        Ok(snapshot) => snapshot,
        Err(e) => {
            eprintln!("cpdb_stat: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = obs.recent_events(args.events);
    if args.json {
        println!("{}", snapshot.to_json());
    } else {
        println!("== metrics ==");
        print!("{}", snapshot.to_text());
        println!("\n== flight recorder (last {} events) ==", events.len());
        for event in &events {
            println!(
                "#{:>6} +{:>10}µs {:<18} {}",
                event.seq, event.at_us, event.kind, event.detail
            );
        }
    }
    ExitCode::SUCCESS
}
