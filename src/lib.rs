//! # consensus-pdb — consensus answers for queries over probabilistic databases
//!
//! A from-scratch Rust implementation of Li & Deshpande, *Consensus Answers
//! for Queries over Probabilistic Databases* (PODS 2009): the probabilistic
//! and/xor tree correlation model, its generating-function probability
//! engine, and polynomial-time (or constant-approximation) algorithms for
//! computing **consensus answers** — the single deterministic answer that
//! minimises the expected distance to the answers of the possible worlds —
//! for set queries, Top-k ranking queries, group-by count aggregates, and
//! clustering.
//!
//! This crate is a facade that re-exports the workspace's crates under one
//! namespace:
//!
//! * [`engine`] — the unified [`ConsensusEngine`](engine::ConsensusEngine)
//!   query API with cached artifacts and batch execution;
//! * [`live`] — incremental updates with snapshot-isolated serving: an
//!   epoch-stamped [`LiveEngine`](live::LiveEngine) applies
//!   [`TreeDelta`](live::TreeDelta)s with delta-aware artifact maintenance
//!   while readers keep answering from their pinned epoch;
//! * [`store`] — the durability layer behind [`live`]: write-ahead log and
//!   checksummed snapshots routed through a pluggable [`Vfs`](store::Vfs),
//!   with deterministic fault injection ([`FaultVfs`](store::FaultVfs)) and
//!   bounded retries ([`RetryPolicy`](store::RetryPolicy));
//! * [`replica`] — read replicas on top of [`store`]: WAL segment shipping
//!   behind a checksummed manifest, verified [`Follower`](replica::Follower)
//!   replay, divergence detection, and fenced primary failover via
//!   [`promote`](replica::Follower::promote);
//! * [`obs`] — unified observability: one [`Obs`](obs::Obs) sink of named
//!   counters, gauges, and log-scale latency histograms plus a bounded
//!   flight recorder of engine/store/live/replica events, snapshot-readable
//!   via [`MetricsSnapshot`](obs::MetricsSnapshot) (see the `cpdb_stat`
//!   binary);
//! * [`genfunc`] — polynomial / generating-function engine;
//! * [`model`] — probabilistic relation models and possible-world semantics;
//! * [`andxor`] — the probabilistic and/xor tree (including the single-sweep
//!   batch evaluator behind the engine's artifact builds);
//! * [`parallel`] — minimal fork-join helpers (`CPDB_THREADS`);
//! * [`assignment`] — Hungarian algorithm and min-cost flow;
//! * [`rankagg`] — Top-k list types, distance metrics, rank aggregation;
//! * [`consensus`] — the consensus-answer algorithms themselves;
//! * [`workloads`] — seeded synthetic instance generators.
//!
//! ## Quickstart
//!
//! Every consensus notion of the paper is a [`Query`](engine::Query) answered
//! by one engine; batches share the cached rank-probability PMFs, preference
//! matrices, and co-clustering weights:
//!
//! ```
//! use consensus_pdb::prelude::*;
//!
//! // A small probabilistic relation: four independent tuples with scores.
//! let db = TupleIndependentDb::from_triples(&[
//!     (1, 95.0, 0.4),   // (key, score, probability)
//!     (2, 90.0, 0.9),
//!     (3, 85.0, 0.7),
//!     (4, 80.0, 0.85),
//! ]).unwrap();
//! let tree = consensus_pdb::andxor::convert::from_tuple_independent(&db).unwrap();
//!
//! let engine = ConsensusEngineBuilder::new(tree).seed(2009).build().unwrap();
//!
//! // Consensus Top-2 answer under the symmetric-difference metric.
//! let answer = engine.run(&Query::TopK {
//!     k: 2,
//!     metric: TopKMetric::SymmetricDifference,
//!     variant: Variant::Mean,
//! }).unwrap();
//! let list = answer.value.as_topk().unwrap();
//! assert_eq!(list.len(), 2);
//! assert!(list.contains(2));
//! assert_eq!(answer.optimality, Optimality::Exact);
//!
//! // The same engine serves the consensus world, too.
//! let world = engine.run(&Query::SetConsensus {
//!     metric: SetMetric::SymmetricDifference,
//!     variant: Variant::Mean,
//! }).unwrap();
//! println!("consensus world: {world}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cpdb_andxor as andxor;
pub use cpdb_assignment as assignment;
pub use cpdb_consensus as consensus;
pub use cpdb_engine as engine;
pub use cpdb_genfunc as genfunc;
pub use cpdb_live as live;
pub use cpdb_model as model;
pub use cpdb_obs as obs;
pub use cpdb_parallel as parallel;
pub use cpdb_rankagg as rankagg;
pub use cpdb_replica as replica;
pub use cpdb_store as store;
pub use cpdb_workloads as workloads;

/// The most commonly used types and functions, re-exported for convenience.
pub mod prelude {
    pub use cpdb_andxor::{AndXorTree, AndXorTreeBuilder, NodeKind, VarAssignment};
    pub use cpdb_consensus::aggregate::GroupByInstance;
    pub use cpdb_consensus::clustering::CoClusteringWeights;
    pub use cpdb_consensus::TopKContext;
    pub use cpdb_engine::{
        Answer, BaselineKind, ConsensusEngine, ConsensusEngineBuilder, EngineError,
        IntersectionStrategy, KendallStrategy, Optimality, Query, SetMetric, TopKMetric, Value,
        Variant,
    };
    pub use cpdb_genfunc::{Poly1, Poly2, Truncation};
    pub use cpdb_live::{AppliedDelta, LiveEngine, Snapshot, TreeDelta};
    pub use cpdb_model::{
        Alternative, AttrValue, BidBlock, BidDb, PossibleWorld, TupleIndependentDb, TupleKey,
        WorldModel, WorldSet, XTuple, XTupleDb,
    };
    pub use cpdb_rankagg::{FullRanking, TopKList};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable() {
        let db = TupleIndependentDb::from_triples(&[(1, 10.0, 0.9)]).unwrap();
        let tree = crate::andxor::convert::from_tuple_independent(&db).unwrap();
        let ctx = TopKContext::new(&tree, 1);
        assert!((ctx.topk_probability(TupleKey(1)) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn engine_is_reachable_through_the_prelude() {
        let db = TupleIndependentDb::from_triples(&[(1, 10.0, 0.9), (2, 5.0, 0.4)]).unwrap();
        let tree = crate::andxor::convert::from_tuple_independent(&db).unwrap();
        let engine = ConsensusEngineBuilder::new(tree).build().unwrap();
        let answer = engine
            .run(&Query::TopK {
                k: 1,
                metric: TopKMetric::SymmetricDifference,
                variant: Variant::Mean,
            })
            .unwrap();
        assert_eq!(answer.value.as_topk().unwrap().items(), &[1]);
    }
}
