//! Offline, dependency-light stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, implementing the
//! API surface this workspace's property suites use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and `prop_shuffle`;
//! * range strategies (`0.0f64..1.0`, `1usize..=6`, …), tuple strategies,
//!   [`strategy::Just`], and [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! generated inputs left to the assertion message. Generation is fully
//! deterministic — each test function owns a fixed-seed RNG — so failures
//! reproduce exactly. The case count honours the `PROPTEST_CASES`
//! environment variable like the real crate does.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic generation RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration for a `proptest!` block; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Resolves the effective case count, honouring `PROPTEST_CASES`.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies during generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A fresh deterministic RNG; every test function starts from the
        /// same stream so failures reproduce run to run.
        pub fn deterministic() -> Self {
            TestRng(StdRng::seed_from_u64(0x5EED_CAFE_F00D_D1CE))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Uniformly permutes generated collections.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: Shuffleable,
        {
            Shuffle { inner: self }
        }
    }

    /// Collections that [`Strategy::prop_shuffle`] can permute.
    pub trait Shuffleable {
        /// Shuffles `self` in place.
        fn shuffle_in_place(&mut self, rng: &mut TestRng);
    }

    impl<T> Shuffleable for Vec<T> {
        fn shuffle_in_place(&mut self, rng: &mut TestRng) {
            use rand::seq::SliceRandom;
            self.as_mut_slice().shuffle(rng);
        }
    }

    /// Always yields a clone of one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The strategy returned by [`Strategy::prop_shuffle`].
    #[derive(Clone, Debug)]
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S> Strategy for Shuffle<S>
    where
        S: Strategy,
        S::Value: Shuffleable,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut value = self.inner.generate(rng);
            value.shuffle_in_place(rng);
            value
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A range of permissible collection lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// A strategy generating `Vec`s whose elements come from `element` and
    /// whose length is uniform over `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from real proptest.

    pub use crate::collection;
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-able function running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.effective_cases() {
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn sorted_vec() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..100, 0..8).prop_map(|mut v| {
            v.sort_unstable();
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..1.0, n in 1usize..=6, m in 3u64..9) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..=6).contains(&n));
            prop_assert!((3..9).contains(&m));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u64..5, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_applies(v in sorted_vec()) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn shuffle_preserves_elements(v in Just((0u64..10).collect::<Vec<u64>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0u64..10).collect::<Vec<u64>>());
        }

        #[test]
        fn tuples_generate_componentwise(
            pair in (0.0f64..1.0, 5u64..7),
            trailing in 0usize..3,
        ) {
            prop_assert!(pair.0 < 1.0);
            prop_assert!(pair.1 == 5 || pair.1 == 6);
            prop_assert!(trailing < 3);
        }
    }

    #[test]
    fn config_cases_honoured() {
        assert_eq!(ProptestConfig::with_cases(24).cases, 24);
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
