//! Offline, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! implementing the API surface this workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] tuning knobs,
//! [`BenchmarkId::new`], [`Throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are simple wall-clock medians over `sample_size` samples —
//! no outlier analysis, no HTML reports — printed one line per benchmark so
//! `cargo bench` gives usable numbers without any external dependency.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &id.full_name(),
            Duration::from_millis(200),
            Duration::from_millis(600),
            10,
            None,
            |b| f(b),
        );
        self
    }
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how long to warm up before sampling.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Sets the sampling time budget.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Sets how many samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares the work per iteration, for elements/sec style reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.full_name());
        run_benchmark(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            self.throughput.clone(),
            |b| f(b),
        );
        self
    }

    /// Benchmarks `f` under `id`, handing it a borrowed `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.full_name());
        run_benchmark(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            self.throughput.clone(),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function_name` at a given parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) if self.function_name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function_name, p),
            None => self.function_name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: name,
            parameter: None,
        }
    }
}

/// The quantity processed per iteration, for rate reporting.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot loop.
pub struct Bencher {
    sampled: Option<Duration>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also discovers how many iterations fit one sample.
        let warm_up_start = Instant::now();
        let mut iters_per_sample = 0u64;
        while warm_up_start.elapsed() < self.warm_up_time || iters_per_sample == 0 {
            std::hint::black_box(routine());
            iters_per_sample += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / iters_per_sample as f64;
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-12)) as u64).clamp(1, 1 << 20);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = samples[samples.len() / 2];
        self.sampled = Some(Duration::from_secs_f64(median));
    }
}

fn run_benchmark<F>(
    label: &str,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sampled: None,
        warm_up_time,
        measurement_time,
        sample_size,
    };
    f(&mut bencher);
    match bencher.sampled {
        Some(per_iter) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!("  ({:.3e} elem/s)", n as f64 / per_iter.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!("  ({:.3e} B/s)", n as f64 / per_iter.as_secs_f64())
                }
            });
            println!(
                "{label:<60} time: {:>12.1?} /iter{}",
                per_iter,
                rate.unwrap_or_default()
            );
        }
        None => println!("{label:<60} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier, re-exported for compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        group.sample_size(2);
        let mut ran = false;
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            ran = true;
            b.iter(|| (0..10u64).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "n10").full_name(), "f/n10");
        assert_eq!(BenchmarkId::from_parameter(5).full_name(), "5");
        assert_eq!(BenchmarkId::from("bare").full_name(), "bare");
    }
}
