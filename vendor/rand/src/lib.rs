//! Offline, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing exactly the API surface this workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`seq::SliceRandom::shuffle`] and `choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, so streams are
//! fully deterministic for a given seed — which is exactly what the seeded
//! workload generators and the test suites rely on. The crate exists because
//! builds must work without network access; it keeps the same crate name so
//! source code is unchanged if the real `rand` is ever substituted back in.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the `rand::distributions::Standard` analogue).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching the real `rand` contract.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        // Include the top endpoint by scaling 53-bit draws over [0, 1].
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64 exactly as `rand_xoshiro` does.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random operations on slices.

    use super::Rng;

    /// Slice extensions: shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used traits and types, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3..8);
            assert!((3..8).contains(&x));
            let y = rng.gen_range(1..=6u64);
            assert!((1..=6).contains(&y));
            let z = rng.gen_range(-10.0..10.0);
            assert!((-10.0..10.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // And is genuinely permuted for this seed.
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw<R: Rng>(mut rng: R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
