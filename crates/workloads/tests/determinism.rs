//! Seed-determinism and distribution-sanity tests for the workload
//! generators: identical configurations must yield bit-identical instances,
//! and every drawn probability / score must respect its configured bounds.

use cpdb_workloads::{
    random_scored_bid_tree, random_tuple_independent, BidConfig, ProbabilityDistribution,
    ScoreDistribution, TupleIndependentConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SCORE_LO: f64 = 10.0;
const SCORE_HI: f64 = 250.0;

fn ti_config(seed: u64) -> TupleIndependentConfig {
    TupleIndependentConfig {
        num_tuples: 64,
        probabilities: ProbabilityDistribution::Uniform { lo: 0.1, hi: 0.9 },
        scores: ScoreDistribution::Uniform {
            lo: SCORE_LO,
            hi: SCORE_HI,
        },
        seed,
    }
}

fn bid_config(seed: u64) -> BidConfig {
    BidConfig {
        num_blocks: 24,
        alternatives_per_block: 3,
        maybe_fraction: 0.3,
        scores: ScoreDistribution::Uniform {
            lo: SCORE_LO,
            hi: SCORE_HI,
        },
        seed,
    }
}

#[test]
fn tuple_independent_identical_for_identical_seeds() {
    for seed in 0..8 {
        let a = random_tuple_independent(&ti_config(seed));
        let b = random_tuple_independent(&ti_config(seed));
        assert_eq!(a, b, "seed {seed} produced two different instances");
    }
}

#[test]
fn tuple_independent_differs_across_seeds() {
    let dbs: Vec<_> = (0..8)
        .map(|seed| random_tuple_independent(&ti_config(seed)))
        .collect();
    for (i, a) in dbs.iter().enumerate() {
        for b in dbs.iter().skip(i + 1) {
            assert_ne!(a, b, "two distinct seeds collided");
        }
    }
}

#[test]
fn scored_bid_tree_identical_for_identical_seeds() {
    for seed in 0..8 {
        let a = random_scored_bid_tree(&bid_config(seed));
        let b = random_scored_bid_tree(&bid_config(seed));
        assert_eq!(a, b, "seed {seed} produced two different trees");
    }
}

#[test]
fn scored_bid_tree_differs_across_seeds() {
    let a = random_scored_bid_tree(&bid_config(1));
    let b = random_scored_bid_tree(&bid_config(2));
    assert_ne!(a, b);
}

#[test]
fn tuple_independent_probabilities_and_scores_respect_bounds() {
    for seed in 0..4 {
        let db = random_tuple_independent(&ti_config(seed));
        for (i, (alt, p)) in db.tuples().iter().enumerate() {
            assert!((0.1..=0.9).contains(p), "probability {p} outside config");
            // The generator perturbs score i by i·1e-7 to break ties.
            let perturbation = i as f64 * 1e-7;
            let score = alt.value.0;
            assert!(
                score >= SCORE_LO && score < SCORE_HI + perturbation + 1e-12,
                "score {score} outside [{SCORE_LO}, {SCORE_HI})"
            );
        }
    }
}

#[test]
fn scored_bid_tree_probabilities_and_scores_respect_bounds() {
    for seed in 0..4 {
        let tree = random_scored_bid_tree(&bid_config(seed));
        for (alt, p) in tree.alternative_probabilities() {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&p),
                "marginal {p} outside [0, 1]"
            );
            let score = alt.value.0;
            // 24 blocks × 3 alternatives → perturbations below 72·1e-7.
            assert!(
                (SCORE_LO..SCORE_HI + 72.0 * 1e-7).contains(&score),
                "score {score} outside [{SCORE_LO}, {SCORE_HI})"
            );
        }
    }
}

#[test]
fn every_probability_distribution_yields_valid_probabilities() {
    let distributions = [
        ProbabilityDistribution::Uniform { lo: 0.05, hi: 1.0 },
        ProbabilityDistribution::HighConfidence {
            noisy_fraction: 0.25,
        },
        ProbabilityDistribution::NearHalf,
    ];
    let mut rng = StdRng::seed_from_u64(7);
    for d in distributions {
        for _ in 0..2000 {
            let p = d.sample(&mut rng);
            assert!((0.0..=1.0).contains(&p), "{d:?} drew {p} outside [0, 1]");
        }
    }
}

#[test]
fn every_score_distribution_respects_its_support() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..2000 {
        let uniform = ScoreDistribution::Uniform { lo: -5.0, hi: 5.0 }.sample(&mut rng, 0.5);
        assert!((-5.0..5.0).contains(&uniform));
        let zipf = ScoreDistribution::Zipf { exponent: 1.5 }.sample(&mut rng, 0.5);
        assert!(
            zipf >= 1.0,
            "Zipf scores are ≥ 1 by construction, got {zipf}"
        );
        let corr =
            ScoreDistribution::CorrelatedWithProbability { scale: 100.0 }.sample(&mut rng, 0.4);
        assert!((40.0..41.0).contains(&corr), "correlated score {corr}");
    }
}
