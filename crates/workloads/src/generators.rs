//! Seeded instance generators.
//!
//! Every generator takes a `Config` struct with a `seed` and produces the
//! same instance for the same configuration, so experiments and benchmarks
//! are reproducible. Scores are drawn without ties (perturbed by a tiny
//! per-tuple offset) because the paper assumes distinct scores.

use crate::distributions::{ProbabilityDistribution, ScoreDistribution};
use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
use cpdb_model::{BidBlock, BidDb, TupleIndependentDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for tuple-independent relations of scored tuples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleIndependentConfig {
    /// Number of tuples.
    pub num_tuples: usize,
    /// Presence-probability distribution.
    pub probabilities: ProbabilityDistribution,
    /// Score distribution.
    pub scores: ScoreDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TupleIndependentConfig {
    fn default() -> Self {
        TupleIndependentConfig {
            num_tuples: 100,
            probabilities: ProbabilityDistribution::Uniform { lo: 0.05, hi: 1.0 },
            scores: ScoreDistribution::Uniform {
                lo: 0.0,
                hi: 1000.0,
            },
            seed: 42,
        }
    }
}

/// Generates a tuple-independent relation of scored tuples.
pub fn random_tuple_independent(config: &TupleIndependentConfig) -> TupleIndependentDb {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let triples: Vec<(u64, f64, f64)> = (0..config.num_tuples)
        .map(|i| {
            let p = config.probabilities.sample(&mut rng);
            // A tiny deterministic offset guarantees distinct scores.
            let score = config.scores.sample(&mut rng, p) + i as f64 * 1e-7;
            (i as u64, score, p)
        })
        .collect();
    TupleIndependentDb::from_triples(&triples).expect("generated probabilities are valid")
}

/// Configuration for block-independent-disjoint relations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidConfig {
    /// Number of blocks (probabilistic tuples).
    pub num_blocks: usize,
    /// Alternatives per block.
    pub alternatives_per_block: usize,
    /// Probability that a block is "maybe" (total mass < 1).
    pub maybe_fraction: f64,
    /// Score distribution for the alternatives.
    pub scores: ScoreDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BidConfig {
    fn default() -> Self {
        BidConfig {
            num_blocks: 50,
            alternatives_per_block: 3,
            maybe_fraction: 0.3,
            scores: ScoreDistribution::Uniform {
                lo: 0.0,
                hi: 1000.0,
            },
            seed: 42,
        }
    }
}

/// Generates a BID relation with attribute-level uncertainty.
pub fn random_bid_db(config: &BidConfig) -> BidDb {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let blocks: Vec<BidBlock> = (0..config.num_blocks)
        .map(|b| {
            let alts = config.alternatives_per_block.max(1);
            // Draw raw weights and normalise; "maybe" blocks keep some mass
            // for the absent outcome.
            let mut weights: Vec<f64> = (0..alts).map(|_| rng.gen_range(0.1..1.0)).collect();
            let absent = if rng.gen::<f64>() < config.maybe_fraction {
                rng.gen_range(0.1..0.6)
            } else {
                0.0
            };
            let total: f64 = weights.iter().sum::<f64>() + absent;
            weights.iter_mut().for_each(|w| *w /= total);
            let pairs: Vec<(f64, f64)> = weights
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let score = config.scores.sample(&mut rng, p) + (b * alts + i) as f64 * 1e-7;
                    (score, p)
                })
                .collect();
            BidBlock::from_pairs(b as u64, &pairs).expect("normalised weights are valid")
        })
        .collect();
    BidDb::new(blocks).expect("block keys are distinct")
}

/// Generates the and/xor tree of a random BID relation (the most common
/// experimental substrate: independent probabilistic tuples with uncertain
/// scores).
pub fn random_scored_bid_tree(config: &BidConfig) -> AndXorTree {
    cpdb_andxor::convert::from_bid(&random_bid_db(config))
        .expect("generated BID relations satisfy the tree constraints")
}

/// Configuration for layered random and/xor trees with nested correlations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndXorTreeConfig {
    /// Number of leaves (tuple alternatives).
    pub num_leaves: usize,
    /// Number of grouping layers above the leaf blocks (each layer
    /// alternates ∧ / ∨ structure); 0 gives a flat BID-like tree.
    pub depth: usize,
    /// Fan-out of the grouping layers.
    pub fanout: usize,
    /// Score distribution.
    pub scores: ScoreDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AndXorTreeConfig {
    fn default() -> Self {
        AndXorTreeConfig {
            num_leaves: 64,
            depth: 2,
            fanout: 4,
            scores: ScoreDistribution::Uniform {
                lo: 0.0,
                hi: 1000.0,
            },
            seed: 42,
        }
    }
}

/// Generates a layered and/xor tree with nested co-existence and mutual
/// exclusion: leaves are grouped into ∧ "co-occurrence bundles", bundles are
/// combined under ∨ choice nodes, and choice nodes are combined under a root
/// ∧ node, repeated for `depth` layers.
pub fn random_andxor_tree(config: &AndXorTreeConfig) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = AndXorTreeBuilder::new();
    // Leaf layer: one leaf per key, distinct scores.
    let mut nodes: Vec<cpdb_andxor::NodeId> = (0..config.num_leaves.max(1))
        .map(|i| {
            let p = rng.gen_range(0.05..1.0);
            let score = config.scores.sample(&mut rng, p) + i as f64 * 1e-7;
            b.leaf_parts(i as u64, score)
        })
        .collect();
    // Alternate ∧ (bundle) and ∨ (choice) layers.
    for layer in 0..config.depth.max(1) {
        let fanout = config.fanout.max(2);
        let mut next = Vec::with_capacity(nodes.len() / fanout + 1);
        for chunk in nodes.chunks(fanout) {
            if layer % 2 == 0 {
                // ∨ layer: each child chosen with probability mass that sums
                // to below 1 so the subtree can also produce nothing.
                let mut weights: Vec<f64> =
                    (0..chunk.len()).map(|_| rng.gen_range(0.1..1.0)).collect();
                let total: f64 = weights.iter().sum::<f64>() * rng.gen_range(1.0..1.5);
                weights.iter_mut().for_each(|w| *w /= total);
                next.push(b.xor_node(chunk.iter().copied().zip(weights).collect()));
            } else {
                next.push(b.and_node(chunk.to_vec()));
            }
        }
        nodes = next;
        if nodes.len() == 1 {
            break;
        }
    }
    let root = if nodes.len() == 1 {
        nodes[0]
    } else {
        b.and_node(nodes)
    };
    b.build(root)
        .expect("layered construction keeps keys disjoint under ∧ nodes")
}

/// Configuration for group-by count instances (§6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupByConfig {
    /// Number of tuples.
    pub num_tuples: usize,
    /// Number of groups.
    pub num_groups: usize,
    /// Zipf skew of the group-membership probabilities (0 = uniform).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroupByConfig {
    fn default() -> Self {
        GroupByConfig {
            num_tuples: 100,
            num_groups: 8,
            skew: 1.0,
            seed: 42,
        }
    }
}

/// The attribute-uncertainty and/xor tree equivalent to a group-by matrix:
/// one ∨ block per tuple whose alternatives are the candidate groups, with
/// the group index as the leaf value. Lets aggregate workloads drive a
/// `ConsensusEngine` (which is built from a tree) with the same uncertainty
/// the matrix describes.
pub fn groupby_tree(probs: &[Vec<f64>]) -> AndXorTree {
    let mut builder = AndXorTreeBuilder::new();
    let mut xors = Vec::new();
    for (i, row) in probs.iter().enumerate() {
        let edges: Vec<_> = row
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(v, &p)| (builder.leaf_parts(i as u64, v as f64), p))
            .collect();
        xors.push(builder.xor_node(edges));
    }
    let root = builder.and_node(xors);
    builder.build(root).expect("rows are distributions")
}

/// Generates the probability matrix of a group-by count query: each tuple's
/// group distribution is a normalised Zipf-weighted draw over a random
/// permutation of the groups.
pub fn random_groupby_instance(config: &GroupByConfig) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = config.num_groups.max(1);
    (0..config.num_tuples.max(1))
        .map(|_| {
            let mut row: Vec<f64> = (0..m)
                .map(|g| {
                    let zipf = 1.0 / ((g + 1) as f64).powf(config.skew.max(0.0));
                    zipf * rng.gen_range(0.05..1.0)
                })
                .collect();
            // Random group permutation so the skew does not always favour the
            // same group indices.
            for i in (1..m).rev() {
                let j = rng.gen_range(0..=i);
                row.swap(i, j);
            }
            let total: f64 = row.iter().sum();
            row.iter_mut().for_each(|p| *p /= total);
            row
        })
        .collect()
}

/// Configuration for attribute-uncertain clustering instances (§6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringConfig {
    /// Number of tuples.
    pub num_tuples: usize,
    /// Number of distinct attribute values (latent clusters).
    pub num_values: usize,
    /// Probability that a tuple takes its "home" value (higher = cleaner
    /// clusters).
    pub cohesion: f64,
    /// Probability that a tuple is missing from a world entirely.
    pub absence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            num_tuples: 30,
            num_values: 4,
            cohesion: 0.7,
            absence: 0.1,
            seed: 42,
        }
    }
}

/// Generates an and/xor tree for consensus clustering: every tuple has a
/// latent home value taken with probability `cohesion`, a uniformly random
/// other value otherwise, and is absent with probability `absence`.
pub fn random_clustering_tree(config: &ClusteringConfig) -> AndXorTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let values = config.num_values.max(2);
    let mut b = AndXorTreeBuilder::new();
    let mut xors = Vec::with_capacity(config.num_tuples);
    for i in 0..config.num_tuples.max(1) {
        let home = rng.gen_range(0..values);
        let other = (home + 1 + rng.gen_range(0..values - 1)) % values;
        let present = 1.0 - config.absence.clamp(0.0, 0.95);
        let p_home = present * config.cohesion.clamp(0.0, 1.0);
        let p_other = present - p_home;
        let mut edges = Vec::new();
        let l_home = b.leaf_parts(i as u64, home as f64);
        edges.push((l_home, p_home));
        if p_other > 1e-12 {
            let l_other = b.leaf_parts(i as u64, other as f64);
            edges.push((l_other, p_other));
        }
        xors.push(b.xor_node(edges));
    }
    let root = b.and_node(xors);
    b.build(root).expect("per-tuple blocks keep keys disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_model::WorldModel;

    #[test]
    fn tuple_independent_generator_is_deterministic() {
        let config = TupleIndependentConfig {
            num_tuples: 20,
            ..Default::default()
        };
        let a = random_tuple_independent(&config);
        let b = random_tuple_independent(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        let other = random_tuple_independent(&TupleIndependentConfig { seed: 43, ..config });
        assert_ne!(a, other);
    }

    #[test]
    fn scores_are_distinct() {
        let db = random_tuple_independent(&TupleIndependentConfig {
            num_tuples: 200,
            ..Default::default()
        });
        let mut scores: Vec<f64> = db.tuples().iter().map(|(a, _)| a.value.0).collect();
        scores.sort_by(f64::total_cmp);
        scores.dedup();
        assert_eq!(scores.len(), 200);
    }

    #[test]
    fn bid_generator_respects_block_structure() {
        let config = BidConfig {
            num_blocks: 10,
            alternatives_per_block: 4,
            ..Default::default()
        };
        let db = random_bid_db(&config);
        assert_eq!(db.len(), 10);
        assert_eq!(db.alternative_count(), 40);
        for block in db.blocks() {
            assert!(block.presence_probability() <= 1.0 + 1e-9);
        }
        // The tree conversion validates all constraints.
        let tree = random_scored_bid_tree(&config);
        assert_eq!(tree.keys().len(), 10);
    }

    #[test]
    fn layered_tree_is_valid_and_has_requested_leaves() {
        let config = AndXorTreeConfig {
            num_leaves: 30,
            depth: 3,
            fanout: 3,
            ..Default::default()
        };
        let tree = random_andxor_tree(&config);
        assert_eq!(tree.leaf_count(), 30);
        assert!(tree.depth() >= 3);
        // Probabilities must be internally consistent: marginals in [0, 1].
        for (_, p) in tree.key_presence_probabilities() {
            assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
    }

    #[test]
    fn layered_tree_small_instance_enumerates_consistently() {
        let config = AndXorTreeConfig {
            num_leaves: 8,
            depth: 2,
            fanout: 3,
            seed: 7,
            ..Default::default()
        };
        let tree = random_andxor_tree(&config);
        let ws = tree.enumerate_worlds();
        let total: f64 = ws.worlds().iter().map(|(_, p)| *p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn groupby_rows_are_distributions() {
        let probs = random_groupby_instance(&GroupByConfig {
            num_tuples: 50,
            num_groups: 6,
            ..Default::default()
        });
        assert_eq!(probs.len(), 50);
        for row in &probs {
            assert_eq!(row.len(), 6);
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn clustering_tree_has_one_block_per_tuple() {
        let tree = random_clustering_tree(&ClusteringConfig {
            num_tuples: 12,
            ..Default::default()
        });
        assert_eq!(tree.keys().len(), 12);
        for (_, p) in tree.key_presence_probabilities() {
            assert!(p <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn generators_differ_across_seeds() {
        let a = random_groupby_instance(&GroupByConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_groupby_instance(&GroupByConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }
}
