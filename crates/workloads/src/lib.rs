//! # cpdb-workloads — synthetic workload generators
//!
//! The paper has no published datasets (it is a theory paper), so every
//! experiment in this repository runs on synthetic instances that exercise
//! the same code paths the paper's motivating applications would: scored
//! tuples from information retrieval / information extraction (independent
//! or block-disjoint with attribute-level uncertainty), deeply correlated
//! and/xor trees, group-by matrices, and attribute-uncertain clustering
//! inputs. All generators are deterministic given a seed, so experiments are
//! reproducible bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod generators;

pub use distributions::{ProbabilityDistribution, ScoreDistribution};
pub use generators::{
    groupby_tree, random_andxor_tree, random_bid_db, random_clustering_tree,
    random_groupby_instance, random_scored_bid_tree, random_tuple_independent, AndXorTreeConfig,
    BidConfig, ClusteringConfig, GroupByConfig, TupleIndependentConfig,
};
