//! Probability and score distributions used by the generators.

use rand::Rng;

/// How tuple-presence (or alternative) probabilities are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbabilityDistribution {
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Mostly confident tuples (probability close to 1) with a fraction of
    /// low-confidence stragglers — the shape produced by information
    /// extraction pipelines.
    HighConfidence {
        /// Fraction of low-confidence tuples, in `[0, 1]`.
        noisy_fraction: f64,
    },
    /// Probabilities concentrated around ½ (maximum entropy per tuple) — the
    /// hardest regime for consensus answers.
    NearHalf,
}

impl ProbabilityDistribution {
    /// Draws one probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ProbabilityDistribution::Uniform { lo, hi } => {
                let lo = lo.clamp(0.0, 1.0);
                let hi = hi.clamp(lo, 1.0);
                if (hi - lo).abs() < f64::EPSILON {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
            ProbabilityDistribution::HighConfidence { noisy_fraction } => {
                if rng.gen::<f64>() < noisy_fraction.clamp(0.0, 1.0) {
                    rng.gen_range(0.05..0.5)
                } else {
                    rng.gen_range(0.8..1.0)
                }
            }
            ProbabilityDistribution::NearHalf => rng.gen_range(0.35..0.65),
        }
    }
}

/// How tuple scores are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreDistribution {
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Zipf-like heavy tail: a few very large scores, many small ones.
    Zipf {
        /// Skew exponent (> 0); larger values concentrate mass at the top.
        exponent: f64,
    },
    /// Scores correlated with the tuple's probability (`score ≈ scale · p`):
    /// the regime where all ranking semantics tend to agree.
    CorrelatedWithProbability {
        /// Multiplicative scale applied to the probability.
        scale: f64,
    },
}

impl ScoreDistribution {
    /// Draws one score given the tuple's (already drawn) probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, probability: f64) -> f64 {
        match *self {
            ScoreDistribution::Uniform { lo, hi } => rng.gen_range(lo..hi),
            ScoreDistribution::Zipf { exponent } => {
                let u: f64 = rng.gen_range(1e-9..1.0);
                u.powf(-1.0 / exponent.max(1e-6))
            }
            ScoreDistribution::CorrelatedWithProbability { scale } => {
                probability * scale + rng.gen_range(0.0..0.01 * scale.abs().max(1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_probabilities_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = ProbabilityDistribution::Uniform { lo: 0.2, hi: 0.7 };
        for _ in 0..1000 {
            let p = d.sample(&mut rng);
            assert!((0.2..=0.7).contains(&p));
        }
    }

    #[test]
    fn high_confidence_is_bimodal() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = ProbabilityDistribution::HighConfidence {
            noisy_fraction: 0.3,
        };
        let samples: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let high = samples.iter().filter(|&&p| p >= 0.8).count();
        let low = samples.iter().filter(|&&p| p < 0.5).count();
        assert!(high > 1000);
        assert!(low > 350);
        assert_eq!(high + low, samples.len());
    }

    #[test]
    fn near_half_concentrates_around_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = ProbabilityDistribution::NearHalf;
        for _ in 0..500 {
            let p = d.sample(&mut rng);
            assert!((0.35..0.65).contains(&p));
        }
    }

    #[test]
    fn degenerate_uniform_returns_constant() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = ProbabilityDistribution::Uniform { lo: 0.5, hi: 0.5 };
        assert_eq!(d.sample(&mut rng), 0.5);
    }

    #[test]
    fn zipf_scores_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = ScoreDistribution::Zipf { exponent: 1.5 };
        let samples: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng, 0.5)).collect();
        let max = samples.iter().cloned().fold(0.0, f64::max);
        let median = {
            let mut s = samples.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(max > 20.0 * median, "max {max} median {median}");
        assert!(samples.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn correlated_scores_track_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = ScoreDistribution::CorrelatedWithProbability { scale: 100.0 };
        let low = d.sample(&mut rng, 0.1);
        let high = d.sample(&mut rng, 0.9);
        assert!(high > low);
    }
}
