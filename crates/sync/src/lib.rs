//! # cpdb-sync — synchronization facades with a model-checking mode
//!
//! The concurrent core of this workspace (`cpdb_engine`'s exactly-once
//! artifact slots, `cpdb_live`'s epoch publish and WAL ordering,
//! `cpdb_store`'s group commit, `cpdb_parallel`'s fork-join pool) rests on
//! a handful of `std::sync` primitives. This crate re-exports exactly that
//! handful — `Mutex`, `RwLock`, `OnceLock`, the `CacheStats` atomics, an
//! [`ArcCell`] pointer-swap slot, and the `thread` spawn/scope surface —
//! behind one switch:
//!
//! * **Normal builds**: the aliases *are* the `std` types (plain
//!   re-exports), so routing a crate through `cpdb_sync` costs nothing.
//!   `cpdb_testkit`'s conformance suite pins that answers are bit-identical
//!   either way.
//! * **`RUSTFLAGS="--cfg cpdb_check"`**: the aliases become the
//!   [`checked`] shims, where every acquire/release/load/store/swap is a
//!   yield point of a cooperative scheduler ([`runtime`]) that runs exactly
//!   one thread at a time. The `cpdb_check` crate drives that scheduler
//!   through every interleaving (DFS with bounded preemptions) and runs a
//!   vector-clock race detector over the recorded shim events.
//!
//! The [`checked`] module and the [`runtime`] are compiled in both modes
//! (inert outside an exploration), so the model checker's own machinery is
//! unit-tested by ordinary `cargo test`.

#![forbid(unsafe_code)]

pub mod checked;
pub mod runtime;

#[cfg(not(cpdb_check))]
pub use std::sync::{Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(cpdb_check)]
pub use checked::{Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub use checked::RaceCell;
pub use std::sync::Arc;

/// The atomic types the engine stack counts and publishes with, plus
/// `Ordering` (always `std`'s).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(cpdb_check))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(cpdb_check)]
    pub use crate::checked::{AtomicBool, AtomicU64, AtomicUsize};
}

/// Thread spawn/join/scope, scheduler-managed under `--cfg cpdb_check`.
pub mod thread {
    #[cfg(not(cpdb_check))]
    pub use std::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

    #[cfg(cpdb_check)]
    pub use crate::checked::thread::{
        scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
    };
}

/// A swappable [`Arc`] slot: the "publish is one pointer store" primitive
/// behind `LiveEngine`'s epoch slot. Readers [`load`](ArcCell::load) a
/// clone of the current `Arc` and can hold it arbitrarily long; a writer
/// [`store`](ArcCell::store)s the next one without ever blocking readers
/// on anything longer than the swap itself.
#[cfg(not(cpdb_check))]
pub struct ArcCell<T> {
    inner: std::sync::RwLock<Arc<T>>,
}

#[cfg(not(cpdb_check))]
impl<T> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcCell {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Returns a clone of the current `Arc`.
    ///
    /// Poisoning is unrecoverable-free here: the critical section is a
    /// single `Arc` clone/store which cannot leave the slot torn, so a
    /// poisoned lock is safely bypassed.
    pub fn load(&self) -> Arc<T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Publishes a new `Arc`.
    pub fn store(&self, value: Arc<T>) {
        *self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = value;
    }
}

#[cfg(not(cpdb_check))]
impl<T: std::fmt::Debug> std::fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcCell").finish_non_exhaustive()
    }
}

#[cfg(cpdb_check)]
pub use checked::ArcCell;

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicUsize, Ordering};
    use super::*;

    #[test]
    fn facades_behave_like_std_outside_exploration() {
        let m = Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);

        let rw = RwLock::new(vec![1, 2]);
        rw.write().unwrap().push(3);
        assert_eq!(rw.read().unwrap().len(), 3);

        let once: OnceLock<u32> = OnceLock::new();
        assert!(once.get().is_none());
        assert_eq!(*once.get_or_init(|| 7), 7);
        assert!(once.set(9).is_err());

        let n = AtomicUsize::new(0);
        n.fetch_add(3, Ordering::Relaxed);
        assert_eq!(n.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn arc_cell_swaps_and_serves_pinned_clones() {
        let cell = ArcCell::new(Arc::new(10));
        let pinned = cell.load();
        cell.store(Arc::new(20));
        assert_eq!(*pinned, 10);
        assert_eq!(*cell.load(), 20);
    }

    #[test]
    fn checked_primitives_are_inert_without_a_scheduler() {
        let m = checked::Mutex::new(0u32);
        *m.lock().unwrap() = 5;
        assert_eq!(*m.lock().unwrap(), 5);

        let once = checked::OnceLock::new();
        assert_eq!(*once.get_or_init(|| 11), 11);
        assert_eq!(once.get(), Some(&11));

        let cell = checked::RaceCell::new(1);
        cell.update(|v| *v += 1);
        assert_eq!(cell.read(), 2);

        let h = checked::thread::spawn(|| 42);
        assert_eq!(h.join().unwrap(), 42);

        let total = checked::thread::scope(|s| {
            let a = s.spawn(|| 1);
            let b = s.spawn(|| 2);
            a.join().unwrap() + b.join().unwrap()
        });
        assert_eq!(total, 3);
    }
}
