//! The cooperative scheduler behind the [`checked`](crate::checked)
//! primitives.
//!
//! During an *exploration* (started by [`run_controlled`]) every managed
//! thread parks at each instrumented operation and the controller decides,
//! one step at a time, which thread may proceed — exactly one managed thread
//! runs at any instant, so a whole execution is reduced to a sequence of
//! scheduling choices. Points where more than one thread could proceed are
//! *branch points*; the record of branch points ([`BranchRecord`]) is what a
//! schedule explorer (see the `cpdb_check` crate) enumerates, and a replayed
//! prefix of choices deterministically reproduces an execution.
//!
//! Outside an exploration every hook is inert: threads that were never
//! registered with the scheduler pass straight through to the underlying
//! `std` primitive. That keeps the instrumented types usable (and fast
//! enough) in ordinary test binaries.
//!
//! The runtime never runs user code while holding its own lock, and it uses
//! only safe `std` synchronization internally: logical lock/once states are
//! tracked here, while the actual data of each shim stays inside a real
//! `std` primitive that — thanks to the one-thread-at-a-time discipline —
//! is never contended during an exploration.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, PoisonError};

/// Identifier of a managed thread inside one controlled execution. The root
/// scenario thread is task `0`; spawned threads get consecutive ids in
/// spawn order, which is deterministic under a fixed schedule.
pub type TaskId = usize;

/// Panic payload used to unwind parked threads when an execution aborts
/// (after a failure elsewhere, a deadlock, or a step-budget blowout).
pub const ABORT_PANIC: &str = "cpdb_check: execution aborted";

/// What an instrumented operation did — the alphabet of the event trace the
/// data-race detector consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A mutex or write-lock acquisition (a full acquire edge).
    Acquire,
    /// A mutex or write-lock release (a full release edge).
    Release,
    /// A shared (read) lock acquisition.
    AcquireShared,
    /// A shared (read) lock release.
    ReleaseShared,
    /// A once-cell value was published by its builder (release edge).
    OncePublish,
    /// A built once-cell value was observed (acquire edge).
    OnceObserve,
    /// An atomic load with the given ordering.
    AtomicLoad(Ordering),
    /// An atomic store with the given ordering.
    AtomicStore(Ordering),
    /// An atomic read-modify-write with the given ordering.
    AtomicRmw(Ordering),
    /// A plain (unsynchronized-by-design) data read of a `RaceCell`.
    DataRead,
    /// A plain data write of a `RaceCell`.
    DataWrite,
    /// This thread spawned the given task (release edge into the child).
    Spawn(TaskId),
    /// This thread finished (its final clock becomes joinable).
    TaskEnd,
    /// This thread joined the given finished task (acquire edge from it).
    Join(TaskId),
}

/// One entry of the event trace: which managed thread performed which
/// operation on which shim object. Object ids are assigned at shim
/// construction and are unique within the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The managed thread that performed the operation.
    pub thread: TaskId,
    /// The shim object operated on (`0` for thread lifecycle events).
    pub object: u64,
    /// What was done.
    pub kind: EventKind,
}

/// One branch point of an execution: a controller step at which more than
/// one thread could have proceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchRecord {
    /// The runnable threads, ascending.
    pub enabled: Vec<TaskId>,
    /// The thread the controller picked.
    pub chosen: TaskId,
    /// The thread that was running before this step, if any — picking a
    /// different thread while this one is still enabled is a *preemption*.
    pub running_before: Option<TaskId>,
}

impl BranchRecord {
    /// Whether picking `choice` at this branch point preempts the thread
    /// that was running.
    pub fn preempts(&self, choice: TaskId) -> bool {
        self.running_before
            .is_some_and(|r| r != choice && self.enabled.contains(&r))
    }
}

/// The outcome of one controlled execution.
#[derive(Debug)]
pub struct RunResult {
    /// Every branch point of the execution, in order. The full choice
    /// sequence (`history.iter().map(|r| r.chosen)`) is the execution's
    /// replayable schedule.
    pub history: Vec<BranchRecord>,
    /// The shim-event trace, in execution order.
    pub events: Vec<Event>,
    /// The first failure observed (a panic message, a deadlock report, or a
    /// step-budget blowout), if any.
    pub failure: Option<String>,
    /// Whether the failure was a deadlock (every live thread blocked).
    pub deadlock: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Wait {
    Lock(u64),
    OnceBuilt(u64),
    TaskExit(TaskId),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Registered; its OS thread has not parked yet.
    Launching,
    /// Granted the run token; currently executing.
    Running,
    /// Parked at a yield point; eligible to be granted.
    Paused,
    /// Parked waiting for a resource; woken (to `Paused`) by the event.
    Blocked(Wait),
    Finished,
}

#[derive(Debug, Default)]
enum OnceState {
    #[default]
    Empty,
    Building,
    Built,
}

#[derive(Debug, Default)]
struct RwState {
    writer: bool,
    readers: usize,
}

#[derive(Debug, Default)]
struct Resources {
    mutexes: HashMap<u64, bool>,
    rwlocks: HashMap<u64, RwState>,
    onces: HashMap<u64, OnceState>,
}

#[derive(Debug, Default)]
struct ExpState {
    active: bool,
    res: Resources,
    abort: bool,
    tasks: Vec<Status>,
    current: Option<TaskId>,
    last_running: Option<TaskId>,
    schedule: Vec<TaskId>,
    branch_idx: usize,
    history: Vec<BranchRecord>,
    events: Vec<Event>,
    steps: usize,
    max_steps: usize,
    failure: Option<String>,
    deadlock: bool,
}

struct Shared {
    state: Mutex<ExpState>,
    cv: Condvar,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(ExpState::default()),
        cv: Condvar::new(),
    })
}

/// Serialises explorations: only one controlled execution runs per process
/// at a time (test binaries run tests concurrently).
fn explore_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

static NEXT_OBJECT: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh shim-object id (unique within the process).
pub fn new_object_id() -> u64 {
    NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static TASK: std::cell::Cell<Option<TaskId>> = const { std::cell::Cell::new(None) };
}

fn me() -> Option<TaskId> {
    TASK.with(|t| t.get())
}

type StateGuard<'a> = std::sync::MutexGuard<'a, ExpState>;

fn lock_state() -> StateGuard<'static> {
    shared()
        .state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Parks the calling managed thread until the controller grants it the run
/// token again. Precondition: the caller holds the state lock and has
/// already set its own status to something non-`Running` and notified.
fn wait_for_grant(mut st: StateGuard<'static>, id: TaskId) {
    loop {
        if st.abort {
            drop(st);
            std::panic::panic_any(ABORT_PANIC);
        }
        if st.tasks[id] == Status::Running {
            return;
        }
        st = shared().cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// The scheduling point every instrumented operation passes through: parks
/// the calling thread and returns once the controller grants it the next
/// step. No-op for unmanaged threads or outside an exploration.
pub fn yield_point() {
    let Some(id) = me() else { return };
    let mut st = lock_state();
    if !st.active {
        return;
    }
    st.tasks[id] = Status::Paused;
    if st.current == Some(id) {
        st.current = None;
    }
    shared().cv.notify_all();
    wait_for_grant(st, id);
}

/// Records `kind` on `object` in the event trace (while the caller holds
/// the run token). Unmanaged callers are ignored.
fn record(st: &mut ExpState, id: TaskId, object: u64, kind: EventKind) {
    st.events.push(Event {
        thread: id,
        object,
        kind,
    });
}

/// Blocks the calling managed thread on `wait`, releasing the run token,
/// until some other thread's event wakes it *and* the controller grants it
/// a step again. Returns with the state lock re-acquired.
fn block_on(mut st: StateGuard<'static>, id: TaskId, wait: Wait) -> StateGuard<'static> {
    st.tasks[id] = Status::Blocked(wait);
    if st.current == Some(id) {
        st.current = None;
    }
    shared().cv.notify_all();
    loop {
        if st.abort {
            drop(st);
            std::panic::panic_any(ABORT_PANIC);
        }
        if st.tasks[id] == Status::Running {
            return st;
        }
        st = shared().cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

fn wake_waiters(st: &mut ExpState, pred: impl Fn(&Wait) -> bool) {
    for status in st.tasks.iter_mut() {
        if let Status::Blocked(w) = status {
            if pred(w) {
                *status = Status::Paused;
            }
        }
    }
    shared().cv.notify_all();
}

/// Acquires the logical mutex `obj` (blocking through the scheduler while
/// another managed thread holds it). Inert when unmanaged.
pub fn mutex_acquire(obj: u64) {
    let Some(id) = me() else { return };
    yield_point();
    let mut st = lock_state();
    if !st.active {
        return;
    }
    loop {
        let held = st.resources_mutex_entry(obj);
        if !*held {
            *held = true;
            record(&mut st, id, obj, EventKind::Acquire);
            return;
        }
        st = block_on(st, id, Wait::Lock(obj));
        if !st.active {
            return;
        }
    }
}

/// Releases the logical mutex `obj`, waking scheduler-blocked waiters.
pub fn mutex_release(obj: u64) {
    let Some(id) = me() else { return };
    let mut st = lock_state();
    if !st.active {
        return;
    }
    *st.resources_mutex_entry(obj) = false;
    record(&mut st, id, obj, EventKind::Release);
    wake_waiters(&mut st, |w| *w == Wait::Lock(obj));
}

/// Acquires the logical rwlock `obj` for writing (`write = true`) or
/// reading.
pub fn rw_acquire(obj: u64, write: bool) {
    let Some(id) = me() else { return };
    yield_point();
    let mut st = lock_state();
    if !st.active {
        return;
    }
    loop {
        let rw = st.resources_rw_entry(obj);
        let free = if write {
            !rw.writer && rw.readers == 0
        } else {
            !rw.writer
        };
        if free {
            if write {
                rw.writer = true;
                record(&mut st, id, obj, EventKind::Acquire);
            } else {
                rw.readers += 1;
                record(&mut st, id, obj, EventKind::AcquireShared);
            }
            return;
        }
        st = block_on(st, id, Wait::Lock(obj));
        if !st.active {
            return;
        }
    }
}

/// Releases the logical rwlock `obj`.
pub fn rw_release(obj: u64, write: bool) {
    let Some(id) = me() else { return };
    let mut st = lock_state();
    if !st.active {
        return;
    }
    let rw = st.resources_rw_entry(obj);
    if write {
        rw.writer = false;
    } else {
        rw.readers = rw.readers.saturating_sub(1);
    }
    let kind = if write {
        EventKind::Release
    } else {
        EventKind::ReleaseShared
    };
    record(&mut st, id, obj, kind);
    wake_waiters(&mut st, |w| *w == Wait::Lock(obj));
}

/// The role [`once_begin`] assigns the caller for once-cell `obj`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnceRole {
    /// The caller must run the initialiser, then call [`once_publish`].
    Builder,
    /// The value is (now) built; the caller just reads it.
    Built,
}

/// Enters the once-cell protocol for `obj`: the first caller becomes the
/// [`OnceRole::Builder`]; later callers block (through the scheduler) until
/// the builder publishes, then observe. Unmanaged callers are reported as
/// builders — the underlying `std::sync::OnceLock` makes that safe.
pub fn once_begin(obj: u64) -> OnceRole {
    let Some(id) = me() else {
        return OnceRole::Builder;
    };
    yield_point();
    let mut st = lock_state();
    if !st.active {
        return OnceRole::Builder;
    }
    loop {
        match st.resources_once_entry(obj) {
            OnceState::Empty => {
                *st.resources_once_entry(obj) = OnceState::Building;
                return OnceRole::Builder;
            }
            OnceState::Built => {
                record(&mut st, id, obj, EventKind::OnceObserve);
                return OnceRole::Built;
            }
            OnceState::Building => {
                st = block_on(st, id, Wait::OnceBuilt(obj));
                if !st.active {
                    return OnceRole::Built;
                }
            }
        }
    }
}

/// Publishes once-cell `obj` (builder side), waking scheduler-blocked
/// waiters.
pub fn once_publish(obj: u64) {
    let Some(id) = me() else { return };
    let mut st = lock_state();
    if !st.active {
        return;
    }
    *st.resources_once_entry(obj) = OnceState::Built;
    record(&mut st, id, obj, EventKind::OncePublish);
    wake_waiters(&mut st, |w| *w == Wait::OnceBuilt(obj));
}

/// Records that a built once-cell value was observed without going through
/// [`once_begin`] (the fast path when the value already exists).
pub fn once_observe(obj: u64) {
    let Some(id) = me() else { return };
    yield_point();
    let mut st = lock_state();
    if !st.active {
        return;
    }
    // The cell may have been built before the exploration started; make the
    // logical state agree so later `once_begin` calls see `Built`.
    *st.resources_once_entry(obj) = OnceState::Built;
    record(&mut st, id, obj, EventKind::OnceObserve);
}

/// The shape of an atomic shim operation, for [`atomic_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// A pure load.
    Load,
    /// A pure store.
    Store,
    /// A read-modify-write (`fetch_add`, `swap`, …).
    Rmw,
}

/// The scheduling point + trace event for an atomic shim operation; the
/// caller performs the real operation immediately after (while still
/// holding the run token, so it is atomic with respect to every other
/// managed thread).
pub fn atomic_op(obj: u64, kind: AtomicKind, ordering: Ordering) {
    let Some(id) = me() else { return };
    yield_point();
    let mut st = lock_state();
    if !st.active {
        return;
    }
    let kind = match kind {
        AtomicKind::Load => EventKind::AtomicLoad(ordering),
        AtomicKind::Store => EventKind::AtomicStore(ordering),
        AtomicKind::Rmw => EventKind::AtomicRmw(ordering),
    };
    record(&mut st, id, obj, kind);
}

/// The scheduling point + trace event for a plain data access of a
/// `RaceCell` — deliberately contributes no happens-before edge, so the
/// race detector can flag unsynchronized conflicting accesses.
pub fn data_access(obj: u64, write: bool) {
    let Some(id) = me() else { return };
    yield_point();
    let mut st = lock_state();
    if !st.active {
        return;
    }
    let kind = if write {
        EventKind::DataWrite
    } else {
        EventKind::DataRead
    };
    record(&mut st, id, obj, kind);
}

/// Registers a child task for the calling managed thread. Returns `None`
/// when the caller is unmanaged (the child should then be spawned plainly).
pub fn register_task() -> Option<TaskId> {
    let id = me()?;
    let mut st = lock_state();
    if !st.active {
        return None;
    }
    let child = st.tasks.len();
    st.tasks.push(Status::Launching);
    record(&mut st, id, 0, EventKind::Spawn(child));
    shared().cv.notify_all();
    Some(child)
}

/// Entry hook of a spawned managed thread: binds the task id to the OS
/// thread and parks until the controller grants the first step.
pub fn task_started(id: TaskId) {
    TASK.with(|t| t.set(Some(id)));
    let mut st = lock_state();
    if !st.active {
        return;
    }
    st.tasks[id] = Status::Paused;
    shared().cv.notify_all();
    wait_for_grant(st, id);
}

/// Exit hook of a managed thread (including the root): records the failure
/// (first one wins), marks the task finished, wakes joiners, and — on a
/// real failure — aborts the rest of the execution.
pub fn task_finished(id: TaskId, failure: Option<String>) {
    TASK.with(|t| t.set(None));
    let mut st = lock_state();
    if !st.active {
        return;
    }
    if let Some(msg) = failure {
        if !msg.contains(ABORT_PANIC) && st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
    }
    st.tasks[id] = Status::Finished;
    if st.current == Some(id) {
        st.current = None;
    }
    record(&mut st, id, 0, EventKind::TaskEnd);
    wake_waiters(&mut st, |w| *w == Wait::TaskExit(id));
}

/// Blocks (through the scheduler) until task `target` finishes. No-op when
/// unmanaged.
pub fn join_task(target: TaskId) {
    let Some(id) = me() else { return };
    yield_point();
    let mut st = lock_state();
    if !st.active {
        return;
    }
    while st.tasks[target] != Status::Finished {
        st = block_on(st, id, Wait::TaskExit(target));
        if !st.active {
            return;
        }
    }
    record(&mut st, id, 0, EventKind::Join(target));
}

/// Whether task `target` has finished, as a scheduled observation.
pub fn task_is_finished(target: TaskId) -> bool {
    let Some(_id) = me() else { return false };
    yield_point();
    let st = lock_state();
    if !st.active {
        return false;
    }
    st.tasks[target] == Status::Finished
}

/// How many managed threads other than the caller are still live (not
/// finished). `0` outside an exploration. Used by shutdown scenarios to
/// assert that background threads were joined.
pub fn other_live_tasks() -> usize {
    let Some(id) = me() else { return 0 };
    let st = lock_state();
    if !st.active {
        return 0;
    }
    st.tasks
        .iter()
        .enumerate()
        .filter(|&(i, s)| i != id && *s != Status::Finished)
        .count()
}

/// Whether the calling thread is a managed thread of an active exploration.
pub fn is_managed() -> bool {
    me().is_some()
}

impl ExpState {
    fn resources_mutex_entry(&mut self, obj: u64) -> &mut bool {
        self.resources().mutexes.entry(obj).or_default()
    }
    fn resources_rw_entry(&mut self, obj: u64) -> &mut RwState {
        self.resources().rwlocks.entry(obj).or_default()
    }
    fn resources_once_entry(&mut self, obj: u64) -> &mut OnceState {
        self.resources().onces.entry(obj).or_default()
    }
    fn resources(&mut self) -> &mut Resources {
        &mut self.res
    }
}

/// Runs `f` as the root of a controlled execution, prescribing the first
/// branch-point choices from `prefix` and letting the default policy
/// (continue the running thread, else lowest id) fill the rest. Returns the
/// execution's branch history, event trace, and failure, if any.
///
/// Executions are serialised process-wide; `max_steps` bounds the number of
/// controller grants (a livelock backstop).
pub fn run_controlled<F>(prefix: &[TaskId], max_steps: usize, f: F) -> RunResult
where
    F: FnOnce() + Send + 'static,
{
    let _serial = explore_lock()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    install_quiet_abort_hook();

    {
        let mut st = lock_state();
        assert!(!st.active, "nested cpdb_check explorations are not allowed");
        *st = ExpState {
            active: true,
            tasks: vec![Status::Launching],
            schedule: prefix.to_vec(),
            max_steps,
            ..ExpState::default()
        };
    }

    let root = std::thread::spawn(move || {
        task_started(0);
        let result = catch_unwind(AssertUnwindSafe(f));
        let failure = result.err().map(|e| panic_message(&*e));
        task_finished(0, failure);
    });

    // Controller loop: wait for quiescence, pick, grant, repeat.
    let mut st = lock_state();
    loop {
        while st
            .tasks
            .iter()
            .any(|s| matches!(s, Status::Running | Status::Launching))
        {
            st = shared().cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.tasks.iter().all(|s| *s == Status::Finished) {
            break;
        }
        if st.abort {
            // Unwinding: every parked thread observes the abort flag on
            // wake and panics out. Release the lock while waiting so they
            // can actually do so.
            shared().cv.notify_all();
            st = shared().cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        let enabled: Vec<TaskId> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Paused)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            let blocked: Vec<_> = st
                .tasks
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Status::Blocked(w) => Some(format!("task {i} blocked on {w:?}")),
                    _ => None,
                })
                .collect();
            st.failure = Some(format!("deadlock: {}", blocked.join("; ")));
            st.deadlock = true;
            st.abort = true;
            continue;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.failure = Some(format!(
                "step budget of {} exceeded (livelock?)",
                st.max_steps
            ));
            st.abort = true;
            continue;
        }
        let chosen = if enabled.len() > 1 {
            let choice = if st.branch_idx < st.schedule.len() {
                let want = st.schedule[st.branch_idx];
                if enabled.contains(&want) {
                    want
                } else {
                    if st.failure.is_none() {
                        st.failure = Some(format!(
                            "schedule diverged: prescribed task {want} not enabled \
                             at branch {} (enabled: {enabled:?})",
                            st.branch_idx
                        ));
                    }
                    default_choice(&enabled, st.last_running)
                }
            } else {
                default_choice(&enabled, st.last_running)
            };
            st.branch_idx += 1;
            let running_before = st.last_running;
            st.history.push(BranchRecord {
                enabled,
                chosen: choice,
                running_before,
            });
            choice
        } else {
            enabled[0]
        };
        st.last_running = Some(chosen);
        st.current = Some(chosen);
        st.tasks[chosen] = Status::Running;
        shared().cv.notify_all();
    }

    let result = RunResult {
        history: std::mem::take(&mut st.history),
        events: std::mem::take(&mut st.events),
        failure: st.failure.take(),
        deadlock: st.deadlock,
    };
    *st = ExpState::default();
    drop(st);
    let _ = root.join();
    result
}

fn default_choice(enabled: &[TaskId], last: Option<TaskId>) -> TaskId {
    match last {
        Some(l) if enabled.contains(&l) => l,
        _ => enabled[0],
    }
}

/// Extracts a printable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Installs (once) a panic hook that suppresses the backtrace spam of the
/// deliberate abort panics used to unwind parked threads, delegating every
/// other panic to the previously-installed hook.
fn install_quiet_abort_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains(ABORT_PANIC));
            // Panics inside managed scenario threads are expected traffic
            // for a model checker (they become recorded failures); keep
            // them quiet too so negative tests don't spam stderr.
            if !quiet && !is_managed() {
                previous(info);
            }
        }));
    });
}
