//! Instrumented counterparts of the `std::sync` primitives the engine
//! stack uses.
//!
//! Each type keeps its data inside the matching `std` primitive (so the
//! compiler's safety story is untouched) and layers the *logical* protocol
//! on the [`runtime`] scheduler: acquires block through the
//! scheduler, releases wake scheduler-blocked waiters, and every operation
//! is a yield point plus a trace event. Outside an exploration the runtime
//! hooks are inert and these types behave exactly like their `std`
//! counterparts (modulo a thread-local read per operation), which is why
//! they are always compiled — the `cpdb_check` cfg only decides whether the
//! crate-root facades alias `std` or this module.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError};

use crate::runtime::{self, AtomicKind, OnceRole};

/// A mutual-exclusion lock with scheduler-visible acquire/release.
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`]; releases the logical lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    id: u64,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            id: runtime::new_object_id(),
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking through the scheduler while another
    /// managed thread holds it.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        runtime::mutex_acquire(self.id);
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                id: self.id,
                inner: g,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                id: self.id,
                inner: p.into_inner(),
            })),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        runtime::mutex_release(self.id);
    }
}

/// A reader–writer lock with scheduler-visible acquire/release.
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    id: u64,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    id: u64,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            id: runtime::new_object_id(),
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        runtime::rw_acquire(self.id, false);
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                id: self.id,
                inner: g,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                id: self.id,
                inner: p.into_inner(),
            })),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        runtime::rw_acquire(self.id, true);
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                id: self.id,
                inner: g,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                id: self.id,
                inner: p.into_inner(),
            })),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").field("id", &self.id).finish()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        runtime::rw_release(self.id, false);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        runtime::rw_release(self.id, true);
    }
}

/// A write-once cell whose build/observe protocol the scheduler can
/// interleave: losers of an init race block through the scheduler until the
/// winner publishes.
pub struct OnceLock<T> {
    id: u64,
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub fn new() -> Self {
        OnceLock {
            id: runtime::new_object_id(),
            inner: std::sync::OnceLock::new(),
        }
    }

    /// Returns the value if it has been set.
    pub fn get(&self) -> Option<&T> {
        match self.inner.get() {
            Some(v) => {
                runtime::once_observe(self.id);
                Some(v)
            }
            None => {
                runtime::yield_point();
                self.inner.get()
            }
        }
    }

    /// Sets the value if the cell was empty; returns it back otherwise.
    pub fn set(&self, value: T) -> Result<(), T> {
        match runtime::once_begin(self.id) {
            OnceRole::Builder => {
                let outcome = self.inner.set(value);
                runtime::once_publish(self.id);
                outcome
            }
            OnceRole::Built => Err(value),
        }
    }

    /// Returns the value, initialising it with `f` exactly once across all
    /// managed threads.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        match runtime::once_begin(self.id) {
            OnceRole::Builder => {
                let value = self.inner.get_or_init(f);
                runtime::once_publish(self.id);
                value
            }
            OnceRole::Built => self
                .inner
                .get()
                .expect("once cell observed as built but empty"),
        }
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        OnceLock::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OnceLock")
            .field("id", &self.id)
            .field("value", &self.inner.get())
            .finish()
    }
}

macro_rules! atomic_int_shim {
    ($(#[$doc:meta])* $name:ident, $std:ty, $ty:ty) => {
        $(#[$doc])*
        pub struct $name {
            id: u64,
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub fn new(value: $ty) -> Self {
                $name {
                    id: runtime::new_object_id(),
                    inner: <$std>::new(value),
                }
            }

            /// Loads the value (a scheduling point).
            pub fn load(&self, order: Ordering) -> $ty {
                runtime::atomic_op(self.id, AtomicKind::Load, order);
                self.inner.load(order)
            }

            /// Stores a value (a scheduling point).
            pub fn store(&self, value: $ty, order: Ordering) {
                runtime::atomic_op(self.id, AtomicKind::Store, order);
                self.inner.store(value, order);
            }

            /// Atomically swaps in a value, returning the previous one.
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                runtime::atomic_op(self.id, AtomicKind::Rmw, order);
                self.inner.swap(value, order)
            }

            /// Atomically adds, returning the previous value.
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                runtime::atomic_op(self.id, AtomicKind::Rmw, order);
                self.inner.fetch_add(value, order)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

atomic_int_shim!(
    /// Scheduler-visible counterpart of [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
atomic_int_shim!(
    /// Scheduler-visible counterpart of [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);

/// Scheduler-visible counterpart of [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    id: u64,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic flag.
    pub fn new(value: bool) -> Self {
        AtomicBool {
            id: runtime::new_object_id(),
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Loads the flag (a scheduling point).
    pub fn load(&self, order: Ordering) -> bool {
        runtime::atomic_op(self.id, AtomicKind::Load, order);
        self.inner.load(order)
    }

    /// Stores the flag (a scheduling point).
    pub fn store(&self, value: bool, order: Ordering) {
        runtime::atomic_op(self.id, AtomicKind::Store, order);
        self.inner.store(value, order);
    }

    /// Atomically swaps the flag, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        runtime::atomic_op(self.id, AtomicKind::Rmw, order);
        self.inner.swap(value, order)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        AtomicBool::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A swappable `Arc` slot — the "publish by single pointer store" primitive
/// `LiveEngine` uses for its current epoch. [`load`](ArcCell::load) and
/// [`store`](ArcCell::store) appear to the race detector as `SeqCst` atomic
/// operations on one location.
pub struct ArcCell<T> {
    id: u64,
    inner: std::sync::Mutex<std::sync::Arc<T>>,
}

impl<T> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: std::sync::Arc<T>) -> Self {
        ArcCell {
            id: runtime::new_object_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Returns a clone of the current `Arc` (a scheduling point).
    pub fn load(&self) -> std::sync::Arc<T> {
        runtime::atomic_op(self.id, AtomicKind::Load, Ordering::SeqCst);
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publishes a new `Arc` (a scheduling point).
    pub fn store(&self, value: std::sync::Arc<T>) {
        runtime::atomic_op(self.id, AtomicKind::Store, Ordering::SeqCst);
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcCell").field("id", &self.id).finish()
    }
}

/// A deliberately-unsynchronized shared cell for *writing checker
/// scenarios*: accesses are plain [`DataRead`](crate::runtime::EventKind)/
/// [`DataWrite`](crate::runtime::EventKind) events carrying no
/// happens-before edge, so two conflicting accesses not ordered by other
/// synchronization are reported as a data race by `cpdb_check`'s detector.
/// (Memory safety is preserved by an internal lock; only the *logical*
/// model treats accesses as unsynchronized.)
pub struct RaceCell<T> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

impl<T> RaceCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        RaceCell {
            id: runtime::new_object_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Reads the value (a plain data read).
    pub fn read(&self) -> T
    where
        T: Clone,
    {
        runtime::data_access(self.id, false);
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Overwrites the value (a plain data write).
    pub fn write(&self, value: T) {
        runtime::data_access(self.id, true);
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }

    /// Mutates the value in place (a plain data write).
    pub fn update(&self, f: impl FnOnce(&mut T)) {
        runtime::data_access(self.id, true);
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner));
    }
}

impl<T: fmt::Debug> fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RaceCell").field("id", &self.id).finish()
    }
}

/// Scheduler-aware replacements for the `std::thread` spawn/join/scope
/// surface. Spawns from managed threads become managed tasks; spawns from
/// unmanaged threads fall straight through to `std`.
pub mod thread {
    use super::*;
    use crate::runtime::TaskId;

    fn managed_body<T>(task: TaskId, f: impl FnOnce() -> T) -> T {
        let result = catch_unwind(AssertUnwindSafe(|| {
            runtime::task_started(task);
            f()
        }));
        let failure = result.as_ref().err().map(|e| runtime::panic_message(&**e));
        runtime::task_finished(task, failure);
        match result {
            Ok(v) => v,
            Err(e) => std::panic::resume_unwind(e),
        }
    }

    /// Handle to a spawned thread; joining goes through the scheduler for
    /// managed tasks.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        task: Option<TaskId>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(task) = self.task {
                runtime::join_task(task);
            }
            self.inner.join()
        }

        /// Whether the thread has finished.
        pub fn is_finished(&self) -> bool {
            match self.task {
                Some(task) if runtime::is_managed() => runtime::task_is_finished(task),
                _ => self.inner.is_finished(),
            }
        }
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("JoinHandle")
                .field("task", &self.task)
                .finish()
        }
    }

    /// Spawns a thread; if the caller is a managed task of an active
    /// exploration, the child becomes a managed task too.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match runtime::register_task() {
            Some(task) => JoinHandle {
                inner: std::thread::spawn(move || managed_body(task, f)),
                task: Some(task),
            },
            None => JoinHandle {
                inner: std::thread::spawn(f),
                task: None,
            },
        }
    }

    /// Scheduler-aware counterpart of [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        children: std::sync::Mutex<Vec<TaskId>>,
    }

    /// Handle to a scoped thread; joining goes through the scheduler for
    /// managed tasks.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        task: Option<TaskId>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread (managed when the caller is managed).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match runtime::register_task() {
                Some(task) => {
                    self.children
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(task);
                    ScopedJoinHandle {
                        inner: self.inner.spawn(move || managed_body(task, f)),
                        task: Some(task),
                    }
                }
                None => ScopedJoinHandle {
                    inner: self.inner.spawn(f),
                    task: None,
                },
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(task) = self.task {
                runtime::join_task(task);
            }
            self.inner.join()
        }

        /// Whether the thread has finished.
        pub fn is_finished(&self) -> bool {
            match self.task {
                Some(task) if runtime::is_managed() => runtime::task_is_finished(task),
                _ => self.inner.is_finished(),
            }
        }
    }

    /// Scheduler-aware counterpart of [`std::thread::scope`]: before the
    /// scope's implicit OS-level join, every managed child is joined
    /// *through the scheduler* so parked children get the steps they need
    /// to finish.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|s| {
            let wrapper = Scope {
                inner: s,
                children: std::sync::Mutex::new(Vec::new()),
            };
            let result = f(&wrapper);
            let children = wrapper
                .children
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            for task in children {
                runtime::join_task(task);
            }
            result
        })
    }

    /// Yields: a scheduling point for managed threads, `std` yield
    /// otherwise.
    pub fn yield_now() {
        if runtime::is_managed() {
            runtime::yield_point();
        } else {
            std::thread::yield_now();
        }
    }
}
