//! # cpdb-check — deterministic interleaving explorer for the engine stack
//!
//! A stateless model checker over the [`cpdb_sync`] shims: a scenario is an
//! ordinary closure using the shim primitives (directly, or through crates
//! compiled with `--cfg cpdb_check`); the [`Checker`] runs it under the
//! cooperative scheduler again and again, depth-first enumerating every
//! branch-point choice within a bounded number of *preemptions* (switching
//! away from a still-runnable thread), the bound that makes exhaustive
//! exploration tractable and — per the CHESS observation — still catches
//! almost all real concurrency bugs at 2–3 preemptions.
//!
//! Every execution gets a replayable **schedule ID** (the dot-joined task
//! choices at its branch points). A failing execution's ID is printed and
//! can be handed to [`Checker::replay`] to reproduce exactly that
//! interleaving under a debugger. After each execution a vector-clock
//! [race detector](race) scans the recorded shim events for unsynchronized
//! conflicting accesses to [`cpdb_sync::RaceCell`]s.
//!
//! ```
//! use cpdb_check::Checker;
//! use cpdb_sync::checked::Mutex;
//! use cpdb_sync::Arc;
//!
//! let exploration = Checker::new("counter").explore(|| {
//!     let n = Arc::new(Mutex::new(0u32));
//!     let n2 = Arc::clone(&n);
//!     let h = cpdb_sync::checked::thread::spawn(move || {
//!         *n2.lock().unwrap() += 1;
//!     });
//!     *n.lock().unwrap() += 1;
//!     h.join().unwrap();
//!     assert_eq!(*n.lock().unwrap(), 2);
//! });
//! exploration.assert_ok();
//! assert!(exploration.schedules >= 2);
//! ```

#![forbid(unsafe_code)]

pub mod race;

use std::sync::Arc;

use cpdb_sync::runtime::{self, BranchRecord, RunResult, TaskId};

/// One failing execution: its replayable schedule and what went wrong.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The schedule ID — pass to [`Checker::replay`] to reproduce.
    pub schedule: String,
    /// The panic message, deadlock report, or step-budget report.
    pub message: String,
    /// Whether the failure was a deadlock.
    pub deadlock: bool,
}

/// A data race found by the detector, with the schedule that exhibited it.
#[derive(Debug, Clone)]
pub struct RaceFinding {
    /// The schedule ID of the first execution exhibiting the race.
    pub schedule: String,
    /// Human-readable description of the two unordered accesses.
    pub description: String,
}

/// The result of exploring a scenario's schedule space.
#[derive(Debug)]
pub struct Exploration {
    /// The scenario name (for reports).
    pub name: String,
    /// How many distinct schedules were executed.
    pub schedules: usize,
    /// Whether the whole space (within the preemption bound) was explored,
    /// as opposed to stopping at the schedule cap.
    pub exhausted: bool,
    /// Executions that panicked, deadlocked, or blew the step budget.
    pub failures: Vec<Failure>,
    /// Distinct data races found across all executions.
    pub races: Vec<RaceFinding>,
}

impl Exploration {
    /// A one-line human-readable summary.
    pub fn report(&self) -> String {
        format!(
            "[cpdb_check] {}: explored {} schedules{}, {} failure(s), {} race(s)",
            self.name,
            self.schedules,
            if self.exhausted {
                " (exhausted)"
            } else {
                " (capped)"
            },
            self.failures.len(),
            self.races.len(),
        )
    }

    /// Panics with a replay-ready report if any execution failed or raced.
    pub fn assert_ok(&self) {
        if self.failures.is_empty() && self.races.is_empty() {
            return;
        }
        let mut msg = format!("{}\n", self.report());
        for f in &self.failures {
            msg.push_str(&format!(
                "  failure on schedule [{}]{}: {}\n  replay with: Checker::new({:?}).replay(\"{}\", scenario)\n",
                f.schedule,
                if f.deadlock { " (deadlock)" } else { "" },
                f.message,
                self.name,
                f.schedule,
            ));
        }
        for r in &self.races {
            msg.push_str(&format!(
                "  race on schedule [{}]: {}\n",
                r.schedule, r.description
            ));
        }
        panic!("{msg}");
    }
}

/// A bounded depth-first schedule explorer for one scenario.
#[derive(Debug, Clone)]
pub struct Checker {
    name: String,
    max_schedules: usize,
    preemption_budget: usize,
    max_steps: usize,
}

impl Checker {
    /// A checker with the default bounds: up to 4096 schedules, 2
    /// preemptions, 100 000 scheduler steps per execution.
    pub fn new(name: &str) -> Self {
        Checker {
            name: name.to_string(),
            max_schedules: 4096,
            preemption_budget: 2,
            max_steps: 100_000,
        }
    }

    /// Caps how many schedules one [`explore`](Checker::explore) runs.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Sets the preemption bound (0 = cooperative-only schedules).
    pub fn preemptions(mut self, n: usize) -> Self {
        self.preemption_budget = n;
        self
    }

    /// Sets the per-execution scheduler-step budget (livelock backstop).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Depth-first explores the scenario's schedule space within the
    /// preemption bound, running the race detector over every execution.
    pub fn explore<F>(&self, scenario: F) -> Exploration
    where
        F: Fn() + Send + Sync + 'static,
    {
        let scenario = Arc::new(scenario);
        let mut stack: Vec<Vec<TaskId>> = vec![Vec::new()];
        let mut schedules = 0usize;
        let mut failures = Vec::new();
        let mut race_keys: Vec<String> = Vec::new();
        let mut races = Vec::new();

        while let Some(prefix) = stack.pop() {
            if schedules >= self.max_schedules {
                return Exploration {
                    name: self.name.clone(),
                    schedules,
                    exhausted: false,
                    failures,
                    races,
                };
            }
            let result = self.run_once(&prefix, &scenario);
            schedules += 1;
            let id = schedule_id(&result.history);
            if let Some(message) = &result.failure {
                failures.push(Failure {
                    schedule: id.clone(),
                    message: message.clone(),
                    deadlock: result.deadlock,
                });
            }
            for race in race::detect(&result.events) {
                let description = race.to_string();
                if !race_keys.contains(&description) {
                    race_keys.push(description.clone());
                    races.push(RaceFinding {
                        schedule: id.clone(),
                        description,
                    });
                }
            }
            // Branch: at every decision point the default policy filled in
            // (at or beyond the prescribed prefix), try the alternatives
            // that stay within the preemption budget. Each extended prefix
            // is a distinct choice string, so no schedule repeats.
            let mut spent = prefix_preemptions(&result.history, prefix.len());
            for i in prefix.len()..result.history.len() {
                let rec = &result.history[i];
                for &alt in rec.enabled.iter().rev() {
                    if alt == rec.chosen {
                        continue;
                    }
                    let extra = usize::from(rec.preempts(alt));
                    if spent + extra > self.preemption_budget {
                        continue;
                    }
                    let mut next: Vec<TaskId> =
                        result.history[..i].iter().map(|r| r.chosen).collect();
                    next.push(alt);
                    stack.push(next);
                }
                spent += usize::from(rec.preempts(rec.chosen));
                if spent > self.preemption_budget {
                    break;
                }
            }
        }

        Exploration {
            name: self.name.clone(),
            schedules,
            exhausted: true,
            failures,
            races,
        }
    }

    /// Re-executes the scenario under exactly the schedule `id` (as printed
    /// by a failure report), returning that execution's result.
    pub fn replay<F>(&self, id: &str, scenario: F) -> ReplayOutcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let prefix = parse_schedule(id);
        let result = self.run_once(&prefix, &Arc::new(scenario));
        ReplayOutcome {
            schedule: schedule_id(&result.history),
            failure: result.failure,
            deadlock: result.deadlock,
            races: race::detect(&result.events)
                .into_iter()
                .map(|r| r.to_string())
                .collect(),
        }
    }

    fn run_once<F>(&self, prefix: &[TaskId], scenario: &Arc<F>) -> RunResult
    where
        F: Fn() + Send + Sync + 'static,
    {
        let scenario = Arc::clone(scenario);
        runtime::run_controlled(prefix, self.max_steps, move || scenario())
    }
}

/// What one replayed execution did.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The full schedule ID the replay actually took.
    pub schedule: String,
    /// The failure message, if the execution failed again.
    pub failure: Option<String>,
    /// Whether the failure was a deadlock.
    pub deadlock: bool,
    /// Races detected in the replayed execution.
    pub races: Vec<String>,
}

/// Encodes a branch history as its replayable schedule ID.
fn schedule_id(history: &[BranchRecord]) -> String {
    let parts: Vec<String> = history.iter().map(|r| r.chosen.to_string()).collect();
    parts.join(".")
}

/// Parses a schedule ID back into a choice prefix.
fn parse_schedule(id: &str) -> Vec<TaskId> {
    id.split('.')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("schedule IDs are dot-joined task ids"))
        .collect()
}

/// Preemptions already spent by the first `upto` branch decisions.
fn prefix_preemptions(history: &[BranchRecord], upto: usize) -> usize {
    history
        .iter()
        .take(upto)
        .filter(|r| r.preempts(r.chosen))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_sync::checked::{thread, Mutex, OnceLock};
    use cpdb_sync::RaceCell;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_scenario_has_one_schedule() {
        let ex = Checker::new("single").explore(|| {
            let m = Mutex::new(1);
            *m.lock().unwrap() += 1;
        });
        ex.assert_ok();
        assert_eq!(ex.schedules, 1);
        assert!(ex.exhausted);
    }

    #[test]
    fn two_increments_explore_multiple_interleavings_and_stay_atomic() {
        let ex = Checker::new("two-inc").explore(|| {
            let n = Arc::new(Mutex::new(0u32));
            let n2 = Arc::clone(&n);
            let h = thread::spawn(move || {
                let mut g = n2.lock().unwrap();
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = n.lock().unwrap();
                let v = *g;
                *g = v + 1;
            }
            h.join().unwrap();
            assert_eq!(*n.lock().unwrap(), 2);
        });
        ex.assert_ok();
        assert!(ex.schedules >= 2, "explored {}", ex.schedules);
        assert!(ex.exhausted);
    }

    #[test]
    fn finds_the_lost_update_in_an_unlocked_counter() {
        // Read-modify-write through a RaceCell with an interleaving window:
        // some schedule loses an update, and the detector flags the race.
        let ex = Checker::new("lost-update").preemptions(3).explore(|| {
            let n = Arc::new(RaceCell::new(0u32));
            let n2 = Arc::clone(&n);
            let h = thread::spawn(move || {
                let v = n2.read();
                n2.write(v + 1);
            });
            let v = n.read();
            n.write(v + 1);
            h.join().unwrap();
            assert_eq!(n.read(), 2, "lost update");
        });
        assert!(
            ex.failures
                .iter()
                .any(|f| f.message.contains("lost update")),
            "no lost update found: {}",
            ex.report()
        );
        assert!(!ex.races.is_empty(), "race not detected: {}", ex.report());
    }

    #[test]
    fn failing_schedules_replay_to_the_same_failure() {
        let scenario = || {
            let n = Arc::new(RaceCell::new(0u32));
            let n2 = Arc::clone(&n);
            let h = thread::spawn(move || {
                let v = n2.read();
                n2.write(v + 1);
            });
            let v = n.read();
            n.write(v + 1);
            h.join().unwrap();
            assert_eq!(n.read(), 2, "lost update");
        };
        let ex = Checker::new("replay").preemptions(3).explore(scenario);
        let failing = ex.failures.first().expect("a failure to replay");
        let outcome = Checker::new("replay").replay(&failing.schedule, scenario);
        assert_eq!(
            outcome
                .failure
                .as_deref()
                .map(|m| m.contains("lost update")),
            Some(true),
            "replay did not reproduce: {outcome:?}"
        );
        assert_eq!(outcome.schedule, failing.schedule);
    }

    #[test]
    fn mutex_protected_counter_never_races_or_fails() {
        let ex = Checker::new("locked").preemptions(3).explore(|| {
            let n = Arc::new(Mutex::new(0u32));
            let cell = Arc::new(RaceCell::new(0u32));
            let (n2, c2) = (Arc::clone(&n), Arc::clone(&cell));
            let h = thread::spawn(move || {
                let _g = n2.lock().unwrap();
                let v = c2.read();
                c2.write(v + 1);
            });
            {
                let _g = n.lock().unwrap();
                let v = cell.read();
                cell.write(v + 1);
            }
            h.join().unwrap();
            assert_eq!(cell.read(), 2);
        });
        ex.assert_ok();
        assert!(ex.schedules >= 2);
    }

    #[test]
    fn once_lock_initialises_exactly_once_on_every_schedule() {
        let ex = Checker::new("once").preemptions(2).explore(|| {
            let cell = Arc::new(OnceLock::new());
            let builds = Arc::new(AtomicUsize::new(0));
            let (cell2, builds2) = (Arc::clone(&cell), Arc::clone(&builds));
            let h = thread::spawn(move || {
                *cell2.get_or_init(|| {
                    builds2.fetch_add(1, Ordering::Relaxed);
                    21
                })
            });
            let a = *cell.get_or_init(|| {
                builds.fetch_add(1, Ordering::Relaxed);
                21
            });
            let b = h.join().unwrap();
            assert_eq!((a, b), (21, 21));
            assert_eq!(builds.load(Ordering::Relaxed), 1, "initialiser ran twice");
        });
        ex.assert_ok();
        assert!(ex.schedules >= 2, "explored {}", ex.schedules);
    }

    #[test]
    fn deadlocks_are_reported_with_a_schedule() {
        let ex = Checker::new("deadlock").preemptions(2).explore(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            h.join().unwrap();
        });
        assert!(
            ex.failures.iter().any(|f| f.deadlock),
            "expected a deadlock: {}",
            ex.report()
        );
    }

    #[test]
    fn scoped_threads_join_through_the_scheduler() {
        let ex = Checker::new("scope").explore(|| {
            let total: u32 = thread::scope(|s| {
                let h1 = s.spawn(|| 1u32);
                let h2 = s.spawn(|| 2u32);
                h1.join().unwrap() + h2.join().unwrap()
            });
            assert_eq!(total, 3);
        });
        ex.assert_ok();
        assert!(ex.schedules >= 2);
    }
}
