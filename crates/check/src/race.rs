//! Vector-clock data-race detection over a recorded shim-event trace.
//!
//! A FastTrack-style pass: each managed thread carries a vector clock;
//! lock releases / once publishes / releasing atomic stores copy the
//! clock into the object, and acquires / observes / acquiring loads join
//! it back — `Relaxed` atomics contribute **no** edge. Spawn and join
//! order parent/child. `RaceCell` accesses (`DataRead`/`DataWrite`) are
//! plain accesses: two conflicting ones not ordered by the
//! happens-before relation built from everything else are a race.

use std::collections::HashMap;

use cpdb_sync::runtime::{Event, EventKind, TaskId};
use std::sync::atomic::Ordering;

/// One detected race: the two unordered conflicting accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The shim object (a `RaceCell`) the accesses collided on.
    pub object: u64,
    /// The earlier access.
    pub first: (TaskId, EventKind),
    /// The later access it is unordered with.
    pub second: (TaskId, EventKind),
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data race on object {}: task {} {:?} unordered with task {} {:?}",
            self.object, self.first.0, self.first.1, self.second.0, self.second.1
        )
    }
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Clock(HashMap<TaskId, u64>);

impl Clock {
    fn join(&mut self, other: &Clock) {
        for (&t, &v) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            *e = (*e).max(v);
        }
    }
    fn tick(&mut self, t: TaskId) {
        *self.0.entry(t).or_insert(0) += 1;
    }
    fn own(&self, t: TaskId) -> u64 {
        self.0.get(&t).copied().unwrap_or(0)
    }
    /// Whether this clock has seen component `c` of task `t`.
    fn covers(&self, t: TaskId, c: u64) -> bool {
        self.own(t) >= c
    }
}

/// The last accesses of one `RaceCell`, as (task, that task's own clock
/// component at access time) pairs.
#[derive(Debug, Default)]
struct CellState {
    last_write: Option<(TaskId, u64, EventKind)>,
    /// Latest read per task since the last write.
    reads: HashMap<TaskId, u64>,
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Runs the detector over one execution's event trace, returning every
/// race found (deduplicated by object and task pair).
pub fn detect(events: &[Event]) -> Vec<Race> {
    let mut clocks: HashMap<TaskId, Clock> = HashMap::new();
    let mut ended: HashMap<TaskId, Clock> = HashMap::new();
    let mut sync_objects: HashMap<u64, Clock> = HashMap::new();
    let mut cells: HashMap<u64, CellState> = HashMap::new();
    let mut races: Vec<Race> = Vec::new();

    let vc = |clocks: &mut HashMap<TaskId, Clock>, t: TaskId| -> Clock {
        clocks
            .entry(t)
            .or_insert_with(|| {
                let mut c = Clock::default();
                c.tick(t);
                c
            })
            .clone()
    };

    for ev in events {
        let t = ev.thread;
        let mut me = vc(&mut clocks, t);
        match ev.kind {
            EventKind::Acquire | EventKind::AcquireShared | EventKind::OnceObserve => {
                if let Some(obj) = sync_objects.get(&ev.object) {
                    me.join(obj);
                }
            }
            EventKind::Release | EventKind::ReleaseShared | EventKind::OncePublish => {
                sync_objects.entry(ev.object).or_default().join(&me);
                me.tick(t);
            }
            EventKind::AtomicLoad(o) => {
                if is_acquire(o) {
                    if let Some(obj) = sync_objects.get(&ev.object) {
                        me.join(obj);
                    }
                }
            }
            EventKind::AtomicStore(o) => {
                if is_release(o) {
                    sync_objects.entry(ev.object).or_default().join(&me);
                    me.tick(t);
                }
            }
            EventKind::AtomicRmw(o) => {
                // An RMW both reads and writes the location; for edge
                // purposes treat it as acquire+release per its ordering.
                if is_acquire(o) {
                    if let Some(obj) = sync_objects.get(&ev.object) {
                        me.join(obj);
                    }
                }
                if is_release(o) {
                    sync_objects.entry(ev.object).or_default().join(&me);
                    me.tick(t);
                }
            }
            EventKind::Spawn(child) => {
                me.tick(t);
                let mut child_clock = me.clone();
                child_clock.tick(child);
                clocks.insert(child, child_clock);
            }
            EventKind::TaskEnd => {
                ended.insert(t, me.clone());
            }
            EventKind::Join(other) => {
                if let Some(fin) = ended.get(&other) {
                    me.join(fin);
                }
            }
            EventKind::DataRead => {
                let cell = cells.entry(ev.object).or_default();
                if let Some((wt, wc, wk)) = cell.last_write {
                    if wt != t && !me.covers(wt, wc) {
                        races.push(Race {
                            object: ev.object,
                            first: (wt, wk),
                            second: (t, ev.kind),
                        });
                    }
                }
                cell.reads.insert(t, me.own(t));
                me.tick(t);
            }
            EventKind::DataWrite => {
                let cell = cells.entry(ev.object).or_default();
                if let Some((wt, wc, wk)) = cell.last_write {
                    if wt != t && !me.covers(wt, wc) {
                        races.push(Race {
                            object: ev.object,
                            first: (wt, wk),
                            second: (t, ev.kind),
                        });
                    }
                }
                for (&rt, &rc) in &cell.reads {
                    if rt != t && !me.covers(rt, rc) {
                        races.push(Race {
                            object: ev.object,
                            first: (rt, EventKind::DataRead),
                            second: (t, ev.kind),
                        });
                    }
                }
                cell.reads.clear();
                cell.last_write = Some((t, me.own(t), ev.kind));
                me.tick(t);
            }
        }
        clocks.insert(t, me);
    }

    races.sort_by_key(|r| (r.object, r.first.0, r.second.0));
    races.dedup_by_key(|r| (r.object, r.first.0, r.second.0));
    races
}
