//! The model-checked concurrency suite: the real `cpdb_live` /
//! `cpdb_engine` / `cpdb_store` protocols driven through every
//! interleaving (within the preemption bound) by the `cpdb_check`
//! explorer.
//!
//! Only compiled under `RUSTFLAGS="--cfg cpdb_check"` — that flag flips
//! the `cpdb_sync` facades to the instrumented shims in *all* crates of
//! the dependency graph, so the `LiveEngine`/`ConsensusEngine` exercised
//! here are the production types, scheduled one shim-operation at a time.
//!
//! Run with:
//! ```sh
//! RUSTFLAGS="--cfg cpdb_check" cargo test -p cpdb_check --test interleavings -- --nocapture
//! ```
//! Each scenario prints its explored-schedule count; any violation panics
//! with a schedule ID replayable via `Checker::replay`.
#![cfg(cpdb_check)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
use cpdb_check::Checker;
use cpdb_engine::{ConsensusEngine, ConsensusEngineBuilder, Query, TopKMetric, Variant};
use cpdb_live::{LiveEngine, Snapshot, TreeDelta};
use cpdb_sync::thread;

/// Every checked scenario must cover at least this many distinct
/// schedules (the acceptance bar for the suite).
const MIN_SCHEDULES: usize = 1000;

/// Cap per exploration so the suite stays time-boxed in CI.
const MAX_SCHEDULES: usize = 2000;

fn tiny_tree() -> AndXorTree {
    let mut b = AndXorTreeBuilder::new();
    let l1 = b.leaf_parts(1, 30.0);
    let x1 = b.xor_node(vec![(l1, 0.8)]);
    let l2 = b.leaf_parts(2, 20.0);
    let x2 = b.xor_node(vec![(l2, 0.4)]);
    let root = b.and_node(vec![x1, x2]);
    b.build(root).expect("tiny tree is valid")
}

fn tiny_engine() -> ConsensusEngine {
    ConsensusEngineBuilder::new(tiny_tree())
        .seed(7)
        .threads(1)
        .build()
        .expect("tiny engine builds")
}

fn topk() -> Query {
    Query::TopK {
        k: 1,
        metric: TopKMetric::SymmetricDifference,
        variant: Variant::Mean,
    }
}

fn reweight(snapshot: &Snapshot, key: u64, probability: f64) -> TreeDelta {
    let leaf = snapshot.tree().leaves_of_key(key)[0];
    TreeDelta::XorEdgeProbability {
        xor: snapshot
            .tree()
            .parent_of(leaf)
            .expect("leaf has xor parent"),
        child: leaf,
        probability,
    }
}

/// A fresh directory per execution (schedules must not share store state).
fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cpdb_check_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scenario dir");
    dir
}

/// Copies a store directory byte-for-byte — the crash image a recovery
/// scenario reopens. Taken while the writer is parked at a shim yield
/// point, it is exactly the on-disk state a crash there would leave.
fn crash_copy(dir: &PathBuf, tag: &str) -> PathBuf {
    let copy = fresh_dir(tag);
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), copy.join(entry.file_name())).expect("copy store file");
    }
    copy
}

fn cleanup(tag: &str) {
    let tmp = std::env::temp_dir();
    if let Ok(entries) = std::fs::read_dir(&tmp) {
        let prefix = format!("cpdb_check_{tag}_{}", std::process::id());
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with(&prefix) {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }
}

/// Scenario 1 — epoch publish: a reader pins a snapshot while a writer
/// publishes the next epoch. On every interleaving the snapshot's epoch
/// and answers stay frozen, and the final published epoch is the
/// writer's.
#[test]
fn epoch_publish_never_tears_a_pinned_snapshot() {
    let ex = Checker::new("epoch-publish")
        .max_schedules(MAX_SCHEDULES)
        .preemptions(4)
        .explore(|| {
            let live = Arc::new(LiveEngine::new(tiny_engine()));
            let seed_snap = live.snapshot();
            let delta = reweight(&seed_snap, 2, 0.75);
            let live2 = Arc::clone(&live);
            let writer = thread::spawn(move || {
                live2.apply(&delta).expect("delta applies");
            });
            let pinned = live.snapshot();
            let pinned_epoch = pinned.epoch();
            let a1 = pinned.run(&topk()).expect("pinned query");
            let a2 = pinned.run(&topk()).expect("pinned query again");
            assert_eq!(a1, a2, "pinned snapshot changed answers mid-publish");
            assert_eq!(pinned.epoch(), pinned_epoch, "snapshot epoch moved");
            writer.join().expect("writer");
            assert_eq!(live.epoch(), 1, "publish lost");
        });
    println!("{}", ex.report());
    ex.assert_ok();
    assert!(
        ex.schedules >= MIN_SCHEDULES,
        "only {} schedules explored",
        ex.schedules
    );
}

/// Scenario 2 — WAL-before-publish: crash-copy the store directory at an
/// arbitrary yield point of a concurrent `apply` and recover the copy. An
/// epoch a reader has *observed as published* must always survive
/// recovery — the WAL append happens strictly before the publish.
#[test]
fn wal_append_precedes_publish_on_every_interleaving() {
    let ex = Checker::new("wal-before-publish")
        .max_schedules(1200)
        .preemptions(4)
        .explore(|| {
            let dir = fresh_dir("wal");
            let live =
                Arc::new(LiveEngine::new_durable(tiny_engine(), &dir).expect("durable engine"));
            let seed_snap = live.snapshot();
            let delta = reweight(&seed_snap, 2, 0.9);
            let live2 = Arc::clone(&live);
            let writer = thread::spawn(move || {
                live2.apply(&delta).expect("delta applies");
            });
            // Observe, then crash: whatever epoch was published at the
            // observation must be recoverable from the copied image.
            let observed = live.epoch();
            let image = crash_copy(&dir, "wal");
            let recovered = LiveEngine::open(&image).expect("crash image recovers");
            assert!(
                recovered.epoch() >= observed,
                "acknowledged epoch {observed} lost: recovered only {}",
                recovered.epoch()
            );
            drop(recovered);
            writer.join().expect("writer");
            // After the ack, the delta must be durable unconditionally.
            let image = crash_copy(&dir, "wal");
            let recovered = LiveEngine::open(&image).expect("final image recovers");
            assert_eq!(recovered.epoch(), 1, "acknowledged delta not durable");
        });
    println!("{}", ex.report());
    cleanup("wal");
    ex.assert_ok();
    assert!(
        ex.schedules >= MIN_SCHEDULES,
        "only {} schedules explored",
        ex.schedules
    );
}

/// Scenario 3 — group commit: `apply_all` publishes all-or-nothing. A
/// concurrent reader may see the batch's final epoch or the base epoch,
/// never an intermediate one; a failing batch publishes nothing.
#[test]
fn apply_all_is_atomic_under_every_interleaving() {
    let ex = Checker::new("apply-all-atomic")
        .max_schedules(MAX_SCHEDULES)
        .preemptions(4)
        .explore(|| {
            let live = Arc::new(LiveEngine::new(tiny_engine()));
            let snap = live.snapshot();
            let batch = vec![reweight(&snap, 1, 0.6), reweight(&snap, 2, 0.7)];
            let live2 = Arc::clone(&live);
            let writer = thread::spawn(move || {
                live2.apply_all(&batch).expect("batch applies");
            });
            let seen = live.epoch();
            assert!(
                seen == 0 || seen == 2,
                "intermediate epoch {seen} observed during apply_all"
            );
            let snap_mid = live.snapshot();
            assert!(
                snap_mid.epoch() == 0 || snap_mid.epoch() == 2,
                "snapshot pinned intermediate epoch {}",
                snap_mid.epoch()
            );
            writer.join().expect("writer");
            assert_eq!(live.epoch(), 2, "batch publish lost");

            // A failing batch (invalid probability) must publish nothing.
            let bad = vec![
                reweight(&snap, 1, 0.5),
                reweight(&snap, 2, 1.5), // invalid: probability > 1
            ];
            assert!(live.apply_all(&bad).is_err(), "invalid batch accepted");
            assert_eq!(live.epoch(), 2, "failed batch moved the epoch");
        });
    println!("{}", ex.report());
    ex.assert_ok();
    assert!(
        ex.schedules >= MIN_SCHEDULES,
        "only {} schedules explored",
        ex.schedules
    );
}

/// Scenario 4 — exactly-once builds: three threads race the same query on
/// a shared engine. On every interleaving all answers are identical, the
/// rank context is built exactly once, and the build/hit counters
/// conserve (one counter bump per lookup).
#[test]
fn concurrent_runs_build_each_artifact_exactly_once() {
    let ex = Checker::new("exactly-once-builds")
        .max_schedules(MAX_SCHEDULES)
        .preemptions(4)
        .explore(|| {
            let engine = Arc::new(tiny_engine());
            let (e1, e2) = (Arc::clone(&engine), Arc::clone(&engine));
            let h1 = thread::spawn(move || e1.run(&topk()).expect("t1 answer"));
            let h2 = thread::spawn(move || e2.run(&topk()).expect("t2 answer"));
            let a0 = engine.run(&topk()).expect("root answer");
            let a1 = h1.join().expect("t1");
            let a2 = h2.join().expect("t2");
            assert_eq!(a0, a1, "answers diverged across threads");
            assert_eq!(a0, a2, "answers diverged across threads");
            let stats = engine.cache_stats();
            assert_eq!(
                stats.rank_context_builds, 1,
                "rank context built {} times",
                stats.rank_context_builds
            );
            assert_eq!(
                stats.rank_context_builds + stats.rank_context_hits,
                3,
                "context lookups not conserved: {stats:?}"
            );
        });
    println!("{}", ex.report());
    ex.assert_ok();
    assert!(
        ex.schedules >= MIN_SCHEDULES,
        "only {} schedules explored",
        ex.schedules
    );
}

/// Scenario 5 — compaction shutdown: a publish that crosses the snapshot
/// cadence spawns the background compactor; dropping the engine must join
/// it on every interleaving (no leaked thread, snapshot on disk).
#[test]
fn compaction_thread_joins_cleanly_on_drop() {
    let ex = Checker::new("compaction-shutdown")
        .max_schedules(1200)
        .preemptions(4)
        .explore(|| {
            let dir = fresh_dir("compact");
            let live = LiveEngine::new_durable(tiny_engine(), &dir).expect("durable engine");
            live.set_snapshot_every(1); // every delta triggers compaction
            let snap = live.snapshot();
            let live = Arc::new(live);
            let live2 = Arc::clone(&live);
            let reader = thread::spawn(move || {
                let pinned = live2.snapshot();
                pinned.run(&topk()).expect("reader answer");
                pinned.epoch()
            });
            live.apply(&reweight(&snap, 2, 0.85))
                .expect("delta applies");
            let reader_epoch = reader.join().expect("reader");
            assert!(reader_epoch <= 1, "reader saw unpublished epoch");
            assert!(
                live.last_compaction_error().is_none(),
                "background compaction failed"
            );
            let live = Arc::into_inner(live).expect("sole owner at shutdown");
            drop(live); // joins the compactor through the scheduler
            assert_eq!(
                cpdb_sync::runtime::other_live_tasks(),
                0,
                "background compactor leaked past Drop"
            );
        });
    println!("{}", ex.report());
    cleanup("compact");
    ex.assert_ok();
    assert!(
        ex.schedules >= MIN_SCHEDULES,
        "only {} schedules explored",
        ex.schedules
    );
}
