//! Tier-1-visible models of the five live-engine concurrency protocols.
//!
//! The full suite in `tests/interleavings.rs` drives the *real*
//! `LiveEngine`/`ConsensusEngine` and needs `--cfg cpdb_check` to flip
//! the facades. These models capture the same five protocols with the
//! always-instrumented `cpdb_sync::checked` primitives, so a plain
//! `cargo test` still model-checks the protocol *shapes* on every run:
//! epoch publish, log-before-publish, group commit, once-only builds,
//! and worker shutdown.

use cpdb_check::Checker;
use cpdb_sync::checked::{thread, ArcCell, Mutex, OnceLock};
use cpdb_sync::Arc;

/// Epoch publish: a reader pins an `ArcCell` snapshot while a writer
/// swaps in the next epoch. The pinned clone must never change, and the
/// final value must be the writer's.
#[test]
fn model_epoch_publish_keeps_pinned_snapshots_stable() {
    let ex = Checker::new("model-epoch-publish").explore(|| {
        let current: Arc<ArcCell<u64>> = Arc::new(ArcCell::new(Arc::new(0)));
        let current2 = Arc::clone(&current);
        let writer = thread::spawn(move || {
            current2.store(Arc::new(1));
        });
        let pinned = current.load();
        let first = *pinned;
        assert_eq!(*pinned, first, "pinned snapshot moved");
        writer.join().expect("writer");
        assert_eq!(*pinned, first, "pinned snapshot moved after publish");
        assert_eq!(*current.load(), 1, "publish lost");
    });
    println!("{}", ex.report());
    ex.assert_ok();
}

/// Log-before-publish: the writer appends to the log *under a lock*
/// before swapping the published epoch. Any reader that observes epoch
/// `n` must find at least `n` entries in the log — on every interleaving.
#[test]
fn model_log_append_precedes_epoch_publish() {
    let ex = Checker::new("model-log-before-publish").explore(|| {
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let epoch: Arc<ArcCell<u64>> = Arc::new(ArcCell::new(Arc::new(0)));
        let (log2, epoch2) = (Arc::clone(&log), Arc::clone(&epoch));
        let writer = thread::spawn(move || {
            log2.lock().expect("log lock").push(1); // durable first
            epoch2.store(Arc::new(1)); // then acknowledge
        });
        let observed = *epoch.load();
        let logged = log.lock().expect("log lock").len() as u64;
        assert!(
            logged >= observed,
            "epoch {observed} acknowledged with only {logged} log entries"
        );
        writer.join().expect("writer");
    });
    println!("{}", ex.report());
    ex.assert_ok();
}

/// Group commit: a two-delta batch is staged privately and published in
/// one swap. Readers may see epoch 0 or 2 — never 1.
#[test]
fn model_group_commit_is_all_or_nothing() {
    let ex = Checker::new("model-group-commit").explore(|| {
        let epoch: Arc<ArcCell<u64>> = Arc::new(ArcCell::new(Arc::new(0)));
        let epoch2 = Arc::clone(&epoch);
        let writer = thread::spawn(move || {
            let mut staged = *epoch2.load();
            staged += 1; // first delta, staged privately
            staged += 1; // second delta, staged privately
            epoch2.store(Arc::new(staged)); // single publish
        });
        let seen = *epoch.load();
        assert!(seen == 0 || seen == 2, "intermediate epoch {seen} escaped");
        writer.join().expect("writer");
        assert_eq!(*epoch.load(), 2, "batch publish lost");
    });
    println!("{}", ex.report());
    ex.assert_ok();
}

/// Exactly-once builds: three tasks race `get_or_init` on one slot. The
/// build counter must end at 1 and every task must see the same value.
#[test]
fn model_shared_artifact_builds_exactly_once() {
    let ex = Checker::new("model-exactly-once").explore(|| {
        let slot: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let builds: Arc<Mutex<u32>> = Arc::new(Mutex::new(0));
        let build = |slot: &OnceLock<u64>, builds: &Mutex<u32>| {
            *slot.get_or_init(|| {
                *builds.lock().expect("builds lock") += 1;
                42
            })
        };
        let (s1, b1) = (Arc::clone(&slot), Arc::clone(&builds));
        let (s2, b2) = (Arc::clone(&slot), Arc::clone(&builds));
        let h1 = thread::spawn(move || build(&s1, &b1));
        let h2 = thread::spawn(move || build(&s2, &b2));
        let v0 = build(&slot, &builds);
        let v1 = h1.join().expect("t1");
        let v2 = h2.join().expect("t2");
        assert_eq!((v0, v1, v2), (42, 42, 42), "tasks saw different artifacts");
        assert_eq!(*builds.lock().expect("builds lock"), 1, "artifact rebuilt");
    });
    println!("{}", ex.report());
    ex.assert_ok();
}

/// Worker shutdown: a background worker handed out through a shared slot
/// is joined before the owner finishes — no schedule leaks the thread.
#[test]
fn model_background_worker_joins_before_shutdown() {
    let ex = Checker::new("model-worker-shutdown").explore(|| {
        let result: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let result2 = Arc::clone(&result);
        let worker = thread::spawn(move || {
            *result2.lock().expect("result lock") = Some(7);
        });
        worker.join().expect("worker"); // shutdown joins the worker…
        let done = result.lock().expect("result lock").take();
        assert_eq!(done, Some(7), "worker result lost at shutdown");
        // …so no other task can still be live.
        assert_eq!(
            cpdb_sync::runtime::other_live_tasks(),
            0,
            "worker leaked past shutdown"
        );
    });
    println!("{}", ex.report());
    ex.assert_ok();
}
