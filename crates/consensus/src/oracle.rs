//! Brute-force expected-distance minimisers.
//!
//! Every consensus notion in this crate has a definitional form: minimise
//! `E_pw[d(τ, τ_pw)]` over a candidate set Ω. On small instances that
//! expectation can be computed by enumerating the possible worlds, and the
//! minimiser found by enumerating Ω. These oracles are deliberately
//! exponential — they exist to certify that the polynomial-time algorithms
//! return optimal (or within-factor) answers in tests and experiments, which
//! is exactly how the paper's claims are validated empirically.

use cpdb_model::{PossibleWorld, WorldSet};
use cpdb_rankagg::TopKList;

/// Expected distance from a fixed candidate world to the random world.
pub fn expected_world_distance<D>(candidate: &PossibleWorld, worlds: &WorldSet, mut d: D) -> f64
where
    D: FnMut(&PossibleWorld, &PossibleWorld) -> f64,
{
    worlds
        .worlds()
        .iter()
        .map(|(w, p)| p * d(candidate, w))
        .sum()
}

/// Brute-force *median* world: the possible world (non-zero probability)
/// minimising the expected distance to the random world. Returns the world
/// and its expected distance.
pub fn brute_force_median_world<D>(worlds: &WorldSet, mut d: D) -> (PossibleWorld, f64)
where
    D: FnMut(&PossibleWorld, &PossibleWorld) -> f64,
{
    let mut best: Option<(PossibleWorld, f64)> = None;
    for (candidate, p) in worlds.worlds() {
        if *p <= 0.0 {
            continue;
        }
        let cost = expected_world_distance(candidate, worlds, &mut d);
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            best = Some((candidate.clone(), cost));
        }
    }
    best.expect("world set must contain at least one world with non-zero probability")
}

/// Brute-force *mean* world over an arbitrary candidate space: every subset
/// of the given alternatives that satisfies the key constraint. Exponential
/// in the number of alternatives.
pub fn brute_force_mean_world<D>(worlds: &WorldSet, mut d: D) -> (PossibleWorld, f64)
where
    D: FnMut(&PossibleWorld, &PossibleWorld) -> f64,
{
    let alternatives = worlds.all_alternatives();
    let n = alternatives.len();
    assert!(n <= 20, "brute-force mean world limited to 20 alternatives");
    let mut best: Option<(PossibleWorld, f64)> = None;
    for mask in 0u64..(1u64 << n) {
        let chosen: Vec<_> = alternatives
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, a)| *a)
            .collect();
        // Skip candidates violating the key constraint (two alternatives of
        // the same tuple can never be an answer world).
        let candidate = match PossibleWorld::new(chosen) {
            Ok(w) => w,
            Err(_) => continue,
        };
        let cost = expected_world_distance(&candidate, worlds, &mut d);
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            best = Some((candidate, cost));
        }
    }
    best.expect("the empty world is always a candidate")
}

/// Expected distance from a fixed Top-k list to the Top-k answer of the
/// random world.
pub fn expected_topk_distance<D>(candidate: &TopKList, worlds: &WorldSet, k: usize, mut d: D) -> f64
where
    D: FnMut(&TopKList, &TopKList) -> f64,
{
    worlds
        .worlds()
        .iter()
        .map(|(w, p)| {
            let answer = world_topk(w, k);
            p * d(candidate, &answer)
        })
        .sum()
}

/// The Top-k answer (as a [`TopKList`] of tuple keys) of a deterministic
/// world under descending score.
pub fn world_topk(world: &PossibleWorld, k: usize) -> TopKList {
    TopKList::new(world.top_k(k).iter().map(|a| a.key.0).collect())
        .expect("a world never contains a key twice")
}

/// The symmetric-difference Top-k distance normalised by the *query*
/// parameter `2k` rather than by the lists' lengths.
///
/// The paper's derivations (Theorem 3 and the median DP of Theorem 4) treat
/// the normaliser as the constant `2k`, which matters when a possible world
/// has fewer than `k` tuples (its Top-k answer is shorter than `k`). Using
/// this fixed normaliser keeps the closed forms exact for candidates of any
/// length and makes cross-size comparisons well-defined.
pub fn sym_diff_distance_fixed_k(k: usize, a: &TopKList, b: &TopKList) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let overlap = a.overlap(b);
    let sym_diff = (a.len() - overlap) + (b.len() - overlap);
    sym_diff as f64 / (2.0 * k as f64)
}

/// Brute-force *mean* Top-k answer: enumerates every ordered selection of `k`
/// distinct tuple keys from `items` and returns the one minimising the
/// expected distance. Exponential (`P(n, k)` candidates).
pub fn brute_force_mean_topk<D>(
    items: &[u64],
    k: usize,
    worlds: &WorldSet,
    mut d: D,
) -> (TopKList, f64)
where
    D: FnMut(&TopKList, &TopKList) -> f64,
{
    let k = k.min(items.len());
    let mut space = 1.0f64;
    for i in 0..k {
        space *= (items.len() - i) as f64;
    }
    assert!(space <= 2e6, "brute-force Top-k candidate space too large");
    let mut best: Option<(TopKList, f64)> = None;
    let mut current = Vec::with_capacity(k);
    let mut used = vec![false; items.len()];
    enumerate_ordered(items, k, &mut current, &mut used, &mut |cand: &[u64]| {
        let list = TopKList::new(cand.to_vec()).expect("distinct by construction");
        let cost = expected_topk_distance(&list, worlds, k, &mut d);
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            best = Some((list, cost));
        }
    });
    best.expect("k = 0 still yields the empty candidate")
}

/// Brute-force *median* Top-k answer: the Top-k answer of some possible world
/// minimising the expected distance.
pub fn brute_force_median_topk<D>(worlds: &WorldSet, k: usize, mut d: D) -> (TopKList, f64)
where
    D: FnMut(&TopKList, &TopKList) -> f64,
{
    let mut best: Option<(TopKList, f64)> = None;
    for (w, p) in worlds.worlds() {
        if *p <= 0.0 {
            continue;
        }
        let candidate = world_topk(w, k);
        let cost = expected_topk_distance(&candidate, worlds, k, &mut d);
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            best = Some((candidate, cost));
        }
    }
    best.expect("world set must contain at least one world")
}

fn enumerate_ordered<F: FnMut(&[u64])>(
    items: &[u64],
    k: usize,
    current: &mut Vec<u64>,
    used: &mut Vec<bool>,
    visit: &mut F,
) {
    if current.len() == k {
        visit(current);
        return;
    }
    for i in 0..items.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        current.push(items[i]);
        enumerate_ordered(items, k, current, used, visit);
        current.pop();
        used[i] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_model::{Alternative, TupleIndependentDb, WorldModel};
    use cpdb_rankagg::metrics::symmetric_difference_topk;

    fn sample_db() -> WorldSet {
        TupleIndependentDb::from_triples(&[(1, 30.0, 0.9), (2, 20.0, 0.6), (3, 10.0, 0.2)])
            .unwrap()
            .enumerate_worlds()
    }

    #[test]
    fn expected_world_distance_weights_by_probability() {
        let ws = sample_db();
        let empty = PossibleWorld::empty();
        let d = expected_world_distance(&empty, &ws, |a, b| a.symmetric_difference(b) as f64);
        // E[|pw|] = 0.9 + 0.6 + 0.2.
        assert!((d - 1.7).abs() < 1e-12);
    }

    #[test]
    fn brute_force_mean_world_under_symmetric_difference_is_majority_set() {
        let ws = sample_db();
        let (mean, _) = brute_force_mean_world(&ws, |a, b| a.symmetric_difference(b) as f64);
        assert!(mean.contains(&Alternative::new(1, 30.0)));
        assert!(mean.contains(&Alternative::new(2, 20.0)));
        assert!(!mean.contains(&Alternative::new(3, 10.0)));
    }

    #[test]
    fn median_world_is_a_possible_world() {
        let ws = sample_db();
        let (median, cost) = brute_force_median_world(&ws, |a, b| a.symmetric_difference(b) as f64);
        assert!(ws.worlds().iter().any(|(w, p)| *p > 0.0 && *w == median));
        assert!(cost >= 0.0);
    }

    #[test]
    fn world_topk_orders_by_score() {
        let w = PossibleWorld::new(vec![
            Alternative::new(1, 5.0),
            Alternative::new(2, 9.0),
            Alternative::new(3, 1.0),
        ])
        .unwrap();
        assert_eq!(world_topk(&w, 2).items(), &[2, 1]);
        assert_eq!(world_topk(&w, 10).len(), 3);
    }

    #[test]
    fn brute_force_mean_topk_picks_high_probability_members() {
        let ws = sample_db();
        let (best, _) = brute_force_mean_topk(&[1, 2, 3], 2, &ws, symmetric_difference_topk);
        assert!(best.contains(1));
        assert!(best.contains(2));
    }

    #[test]
    fn brute_force_median_topk_is_answer_of_some_world() {
        let ws = sample_db();
        let (best, _) = brute_force_median_topk(&ws, 2, symmetric_difference_topk);
        let candidates: Vec<TopKList> = ws
            .worlds()
            .iter()
            .filter(|(_, p)| *p > 0.0)
            .map(|(w, _)| world_topk(w, 2))
            .collect();
        assert!(candidates.contains(&best));
    }
}
