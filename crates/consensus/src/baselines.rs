//! Previously proposed Top-k ranking semantics, implemented as baselines.
//!
//! The paper's introduction motivates consensus answers by the proliferation
//! of ad-hoc ranking semantics for probabilistic databases — U-Top-k,
//! Global Top-k, probabilistic-threshold Top-k (PT-k), expected rank,
//! expected score. Experiment E12 compares the answers these semantics give
//! against the consensus answers; this module implements each of them on top
//! of the same and/xor tree infrastructure so the comparison is apples to
//! apples.

use crate::topk::context::TopKContext;
use cpdb_andxor::AndXorTree;
use cpdb_model::{TupleKey, WorldModel};
use cpdb_rankagg::TopKList;
use rand::Rng;
use std::collections::HashMap;

/// **Expected score**: rank tuples by `E[score(t) · present(t)]` — the
/// classic "expected value" heuristic that ignores rank semantics entirely.
pub fn expected_score_topk(tree: &AndXorTree, k: usize) -> TopKList {
    let mut scores: HashMap<TupleKey, f64> = HashMap::new();
    for (alt, p) in tree.alternative_probabilities() {
        *scores.entry(alt.key).or_insert(0.0) += alt.value.0 * p;
    }
    take_topk_by(scores, k)
}

/// **PT-k** (probabilistic threshold Top-k, Hua et al.): return every tuple
/// with `Pr(r(t) ≤ k) ≥ threshold`. The result size depends on the threshold;
/// tuples are ordered by the probability.
pub fn ptk_answer(ctx: &TopKContext, threshold: f64) -> TopKList {
    let mut selected: Vec<(TupleKey, f64)> = ctx
        .keys()
        .iter()
        .map(|&t| (t, ctx.topk_probability(t)))
        .filter(|(_, p)| *p >= threshold)
        .collect();
    selected.sort_by(|(ka, pa), (kb, pb)| {
        pb.partial_cmp(pa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ka.cmp(kb))
    });
    TopKList::new(selected.into_iter().map(|(t, _)| t.0).collect()).expect("keys are distinct")
}

/// **Global Top-k** (Zhang & Chomicki): the `k` tuples with the highest
/// `Pr(r(t) ≤ k)`. Identical membership to the consensus mean answer under
/// the symmetric-difference metric (Theorem 3) — which is exactly the
/// connection the paper points out.
pub fn global_topk(ctx: &TopKContext) -> TopKList {
    crate::topk::sym_diff::mean_topk_sym_diff(ctx)
}

/// **Expected rank** (Cormode, Li & Yi): rank tuples by `E[rank_pw(t)]`,
/// where a tuple absent from a world of size `m` is ranked `m` (the
/// convention of the expected-rank paper). Computed by Monte-Carlo sampling,
/// which is how the semantics is typically evaluated at scale.
pub fn expected_rank_topk<R: Rng + ?Sized>(
    tree: &AndXorTree,
    k: usize,
    samples: usize,
    rng: &mut R,
) -> TopKList {
    let keys = tree.keys();
    let mut totals: HashMap<TupleKey, f64> = keys.iter().map(|&t| (t, 0.0)).collect();
    for _ in 0..samples.max(1) {
        let w = tree.sample_world(rng);
        let m = w.len();
        for &t in &keys {
            let rank = w.rank_of(t).unwrap_or(m) as f64;
            *totals.entry(t).or_insert(0.0) += rank;
        }
    }
    // Lower expected rank is better: negate so the shared helper can sort
    // descending.
    let scores: HashMap<TupleKey, f64> = totals
        .into_iter()
        .map(|(t, total)| (t, -(total / samples.max(1) as f64)))
        .collect();
    take_topk_by(scores, k)
}

/// **U-Top-k** (Soliman et al.): the most probable Top-k *sequence* — the
/// complete Top-k answer (as an ordered list) with the highest total
/// probability across possible worlds. Computed here by Monte-Carlo
/// estimation of sequence frequencies (exact enumeration is exponential).
pub fn u_topk<R: Rng + ?Sized>(
    tree: &AndXorTree,
    k: usize,
    samples: usize,
    rng: &mut R,
) -> TopKList {
    let mut counts: HashMap<Vec<u64>, usize> = HashMap::new();
    for _ in 0..samples.max(1) {
        let w = tree.sample_world(rng);
        let answer: Vec<u64> = w.top_k(k).iter().map(|a| a.key.0).collect();
        *counts.entry(answer).or_insert(0) += 1;
    }
    let best = counts
        .into_iter()
        .max_by(|(sa, ca), (sb, cb)| ca.cmp(cb).then_with(|| sb.cmp(sa)))
        .map(|(seq, _)| seq)
        .unwrap_or_default();
    TopKList::new(best).expect("a world's Top-k never repeats a key")
}

/// Exact U-Top-k by exhaustive world enumeration (ground truth for small
/// trees).
pub fn u_topk_enumerated(tree: &AndXorTree, k: usize) -> TopKList {
    let ws = tree.enumerate_worlds();
    let mut freq: HashMap<Vec<u64>, f64> = HashMap::new();
    for (w, p) in ws.worlds() {
        let answer: Vec<u64> = w.top_k(k).iter().map(|a| a.key.0).collect();
        *freq.entry(answer).or_insert(0.0) += p;
    }
    let best = freq
        .into_iter()
        .max_by(|(sa, pa), (sb, pb)| {
            pa.partial_cmp(pb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| sb.cmp(sa))
        })
        .map(|(seq, _)| seq)
        .unwrap_or_default();
    TopKList::new(best).expect("a world's Top-k never repeats a key")
}

fn take_topk_by(scores: HashMap<TupleKey, f64>, k: usize) -> TopKList {
    let mut scored: Vec<(TupleKey, f64)> = scores.into_iter().collect();
    scored.sort_by(|(ka, sa), (kb, sb)| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ka.cmp(kb))
    });
    TopKList::new(scored.into_iter().take(k).map(|(t, _)| t.0).collect())
        .expect("keys are distinct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::sym_diff::mean_topk_sym_diff;
    use cpdb_andxor::AndXorTreeBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn independent_tree(specs: &[(u64, f64, f64)]) -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        for &(key, score, p) in specs {
            let l = b.leaf_parts(key, score);
            xors.push(b.xor_node(vec![(l, p)]));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    fn tree() -> AndXorTree {
        independent_tree(&[
            (1, 100.0, 0.2),
            (2, 90.0, 0.9),
            (3, 80.0, 0.85),
            (4, 70.0, 0.4),
        ])
    }

    #[test]
    fn expected_score_ranks_by_score_times_probability() {
        let t = tree();
        let answer = expected_score_topk(&t, 2);
        // E[score]: t1 = 20, t2 = 81, t3 = 68, t4 = 28.
        assert_eq!(answer.items(), &[2, 3]);
    }

    #[test]
    fn global_topk_equals_consensus_mean_under_sym_diff() {
        let t = tree();
        let ctx = TopKContext::new(&t, 2);
        assert_eq!(global_topk(&ctx), mean_topk_sym_diff(&ctx));
    }

    #[test]
    fn ptk_threshold_controls_answer_size() {
        let t = tree();
        let ctx = TopKContext::new(&t, 2);
        let all = ptk_answer(&ctx, 0.0);
        let some = ptk_answer(&ctx, 0.5);
        let none = ptk_answer(&ctx, 1.1);
        assert_eq!(all.len(), 4);
        assert!(some.len() < all.len());
        assert!(none.is_empty());
        // Lowering the threshold never removes tuples.
        for item in some.items() {
            assert!(all.contains(*item));
        }
    }

    #[test]
    fn u_topk_sampled_agrees_with_enumeration() {
        let t = tree();
        let mut rng = StdRng::seed_from_u64(8);
        let exact = u_topk_enumerated(&t, 2);
        let sampled = u_topk(&t, 2, 40_000, &mut rng);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn expected_rank_sampled_agrees_with_enumeration() {
        use cpdb_model::TupleKey;
        let t = independent_tree(&[(1, 100.0, 0.05), (2, 90.0, 0.95), (3, 80.0, 0.9)]);
        // Exact expected ranks by enumeration (absent tuples ranked |pw|).
        let ws = t.enumerate_worlds();
        let mut exact: Vec<(TupleKey, f64)> = t
            .keys()
            .iter()
            .map(|&key| {
                let e = ws.expectation(|w| w.rank_of(key).unwrap_or(w.len()) as f64);
                (key, e)
            })
            .collect();
        exact.sort_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap());
        let expected_top2: Vec<u64> = exact.iter().take(2).map(|(k, _)| k.0).collect();

        let mut rng = StdRng::seed_from_u64(4);
        let answer = expected_rank_topk(&t, 2, 40_000, &mut rng);
        for item in &expected_top2 {
            assert!(
                answer.contains(*item),
                "expected-rank Top-2 {answer} should contain {item} (exact order {exact:?})"
            );
        }
    }

    #[test]
    fn baselines_can_disagree_with_consensus() {
        // The expected-score answer includes the improbable high-score tuple,
        // the consensus answer does not: this is the motivating divergence.
        let t = independent_tree(&[(1, 1000.0, 0.15), (2, 90.0, 0.9), (3, 80.0, 0.85)]);
        let ctx = TopKContext::new(&t, 2);
        let consensus = mean_topk_sym_diff(&ctx);
        let by_score = expected_score_topk(&t, 2);
        assert!(by_score.contains(1));
        assert!(!consensus.contains(1));
    }
}
