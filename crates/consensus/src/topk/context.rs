//! Shared precomputation for the Top-k consensus algorithms.
//!
//! Every algorithm in §5 is driven by the same quantities: for each tuple `t`
//! and each position `i ≤ k`, the probability `Pr(r(t) = i)` that `t` is
//! ranked exactly `i`-th in the random possible world. [`TopKContext`]
//! computes them once from the and/xor tree (via the generating-function
//! engine) and exposes the derived statistics the individual algorithms need:
//! `Pr(r(t) ≤ i)`, `Pr(r(t) > k)`, and the Υ-statistics of §5.4.

use cpdb_andxor::AndXorTree;
use cpdb_model::TupleKey;
use std::collections::HashMap;

/// Precomputed rank statistics for a Top-k query over an and/xor tree.
#[derive(Debug, Clone)]
pub struct TopKContext {
    k: usize,
    keys: Vec<TupleKey>,
    /// `pmf[t][i - 1] = Pr(r(t) = i)` for `1 ≤ i ≤ k`.
    pmf: HashMap<TupleKey, Vec<f64>>,
    /// `cdf[t][i - 1] = Pr(r(t) ≤ i)` for `1 ≤ i ≤ k`.
    cdf: HashMap<TupleKey, Vec<f64>>,
    /// Raw (unclamped) prefix sums `prefix_mass[t][i - 1] = Σ_{j ≤ i}
    /// Pr(r(t) = j)`: the O(1) backbone of the footrule placement cost.
    prefix_mass: HashMap<TupleKey, Vec<f64>>,
    /// Rank-weighted prefix sums `prefix_weighted[t][i - 1] = Σ_{j ≤ i}
    /// j·Pr(r(t) = j)`; the last entry is Υ₂(t).
    prefix_weighted: HashMap<TupleKey, Vec<f64>>,
    /// Harmonic suffix sums `profit_suffix[t][j - 1] = Σ_{i = j..k}
    /// Pr(r(t) ≤ i)/i`: the intersection-metric position profit in O(1); the
    /// first entry is Υ_H(t).
    profit_suffix: HashMap<TupleKey, Vec<f64>>,
}

impl TopKContext {
    /// Builds the context for a Top-k query with the given `k`.
    ///
    /// The rank PMFs come from the single-sweep batch evaluator
    /// ([`AndXorTree::batch_rank_pmfs`]) with an automatic thread count
    /// (`CPDB_THREADS`, then the machine's parallelism) — one shared
    /// generating-function sweep instead of one per key.
    pub fn new(tree: &AndXorTree, k: usize) -> Self {
        Self::new_with_parallelism(tree, k, 0)
    }

    /// [`TopKContext::new`] with an explicit thread count (`0` = auto). The
    /// batch evaluator is bit-identical at any thread count, so the context
    /// does not depend on this knob — only the build time does.
    pub fn new_with_parallelism(tree: &AndXorTree, k: usize, threads: usize) -> Self {
        let keys = tree.keys();
        let pmf = tree.batch_rank_pmfs(k, threads);
        Self::from_parts(k, keys, pmf)
    }

    /// Builds a context directly from per-tuple rank distributions (useful in
    /// tests and for models other than the and/xor tree). `pmf[t]` must have
    /// length `k`.
    pub fn from_pmf(k: usize, pmf: HashMap<TupleKey, Vec<f64>>) -> Self {
        let mut keys: Vec<TupleKey> = pmf.keys().copied().collect();
        keys.sort();
        Self::from_parts(k, keys, pmf)
    }

    /// Derives every cached statistic (CDF, prefix sums, harmonic suffix
    /// sums) from the rank PMFs. All derived tables are O(n·k) to build and
    /// make the per-(tuple, position) queries of the assignment solvers O(1).
    fn from_parts(k: usize, keys: Vec<TupleKey>, pmf: HashMap<TupleKey, Vec<f64>>) -> Self {
        let mut cdf = HashMap::with_capacity(keys.len());
        let mut prefix_mass = HashMap::with_capacity(keys.len());
        let mut prefix_weighted = HashMap::with_capacity(keys.len());
        let mut profit_suffix = HashMap::with_capacity(keys.len());
        for (&key, p) in &pmf {
            let mut c = Vec::with_capacity(k);
            let mut mass = Vec::with_capacity(k);
            let mut weighted = Vec::with_capacity(k);
            let (mut acc, mut wacc) = (0.0, 0.0);
            for (i, &v) in p.iter().enumerate() {
                acc += v;
                wacc += (i + 1) as f64 * v;
                c.push(acc.min(1.0));
                mass.push(acc);
                weighted.push(wacc);
            }
            let mut suffix = vec![0.0; k];
            let mut tail = 0.0;
            for i in (1..=k).rev() {
                tail += c[i - 1] / i as f64;
                suffix[i - 1] = tail;
            }
            cdf.insert(key, c);
            prefix_mass.insert(key, mass);
            prefix_weighted.insert(key, weighted);
            profit_suffix.insert(key, suffix);
        }
        TopKContext {
            k,
            keys,
            pmf,
            cdf,
            prefix_mass,
            prefix_weighted,
            profit_suffix,
        }
    }

    /// The query parameter `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The tuple keys of the database, sorted.
    #[inline]
    pub fn keys(&self) -> &[TupleKey] {
        &self.keys
    }

    /// `Pr(r(t) = i)` for `1 ≤ i ≤ k` (0 outside that range or for unknown
    /// tuples).
    pub fn rank_probability(&self, t: TupleKey, i: usize) -> f64 {
        if i == 0 || i > self.k {
            return 0.0;
        }
        self.pmf.get(&t).map(|p| p[i - 1]).unwrap_or(0.0)
    }

    /// `Pr(r(t) ≤ i)` for `1 ≤ i ≤ k` (0 for `i = 0`, and the value at `k`
    /// for `i > k` since the context never looks past `k`).
    pub fn rank_cdf(&self, t: TupleKey, i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let i = i.min(self.k);
        self.cdf
            .get(&t)
            .and_then(|c| c.get(i - 1))
            .copied()
            .unwrap_or(0.0)
    }

    /// `Pr(r(t) ≤ k)` — the probability that `t` makes the Top-k at all.
    pub fn topk_probability(&self, t: TupleKey) -> f64 {
        self.rank_cdf(t, self.k)
    }

    /// `Pr(r(t) > k)` — includes the probability that `t` is absent.
    pub fn beyond_topk_probability(&self, t: TupleKey) -> f64 {
        1.0 - self.topk_probability(t)
    }

    /// `Σ_t Pr(r(t) ≤ i)` over all tuples — the expected size of the random
    /// world's Top-i answer.
    pub fn total_topi_mass(&self, i: usize) -> f64 {
        self.keys.iter().map(|&t| self.rank_cdf(t, i)).sum()
    }

    /// Υ₁(t) = `Σ_{i ≤ k} Pr(r(t) = i)` = `Pr(r(t) ≤ k)` (§5.4).
    pub fn upsilon1(&self, t: TupleKey) -> f64 {
        self.topk_probability(t)
    }

    /// Υ₂(t) = `Σ_{i ≤ k} i · Pr(r(t) = i)` (§5.4). Served from the
    /// rank-weighted prefix sums in O(1).
    pub fn upsilon2(&self, t: TupleKey) -> f64 {
        self.prefix_weighted
            .get(&t)
            .and_then(|w| w.last())
            .copied()
            .unwrap_or(0.0)
    }

    /// The misplacement mass `Σ_{j ≤ k} Pr(r(t) = j)·|i − j|` of placing `t`
    /// at position `i`, in O(1) via the per-tuple prefix sums: with
    /// `S₀(i) = Σ_{j ≤ i} Pr(r(t) = j)` and `S₁(i) = Σ_{j ≤ i} j·Pr(r(t) = j)`,
    ///
    /// ```text
    /// Σ_{j ≤ k} Pr(r(t) = j)·|i − j| = 2(i·S₀(i) − S₁(i)) + S₁(k) − i·S₀(k)
    /// ```
    ///
    /// (split the sum at `j ≤ i` / `j > i`). This is the footrule hot path:
    /// it turns the assignment cost-matrix build from O(n·k²) into O(n·k).
    /// [`crate::topk::footrule::placement_cost_direct`] keeps the direct
    /// summation as the test reference.
    pub fn misplacement_mass(&self, t: TupleKey, i: usize) -> f64 {
        let Some(mass) = self.prefix_mass.get(&t) else {
            return 0.0;
        };
        if self.k == 0 {
            return 0.0;
        }
        let weighted = &self.prefix_weighted[&t];
        let (s0_k, s1_k) = (mass[self.k - 1], weighted[self.k - 1]);
        let i_f = i as f64;
        if i == 0 {
            s1_k
        } else if i >= self.k {
            i_f * s0_k - s1_k
        } else {
            2.0 * (i_f * mass[i - 1] - weighted[i - 1]) + s1_k - i_f * s0_k
        }
    }

    /// The intersection-metric position profit `Σ_{i = j..k} Pr(r(t) ≤ i)/i`
    /// of placing `t` at position `j` (§5.3), in O(1) via the per-tuple
    /// harmonic suffix sums (`0` outside `1 ≤ j ≤ k` or for unknown tuples).
    /// [`crate::topk::intersection::position_profit_direct`] keeps the direct
    /// summation as the test reference.
    pub fn profit_tail(&self, t: TupleKey, j: usize) -> f64 {
        if j == 0 || j > self.k {
            return 0.0;
        }
        self.profit_suffix.get(&t).map(|s| s[j - 1]).unwrap_or(0.0)
    }

    /// Υ₃(t, i) = `Σ_{j ≤ k} Pr(r(t) = j)·|i − j| + i·Pr(r(t) > k)` (§5.4).
    pub fn upsilon3(&self, t: TupleKey, i: usize) -> f64 {
        let tail = i as f64 * self.beyond_topk_probability(t);
        (1..=self.k)
            .map(|j| self.rank_probability(t, j) * (i as f64 - j as f64).abs())
            .sum::<f64>()
            + tail
    }

    /// Υ_H(t) = `Σ_{i ≤ k} Pr(r(t) ≤ i)/i` — the harmonic ranking function of
    /// §5.3 (a parameterised ranking function in the sense of \[29\]). Served
    /// from the harmonic suffix sums in O(1).
    pub fn upsilon_h(&self, t: TupleKey) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        self.profit_tail(t, 1)
    }

    /// The tuples sorted by decreasing `Pr(r(t) ≤ k)`, ties broken by key.
    pub fn keys_by_topk_probability(&self) -> Vec<(TupleKey, f64)> {
        let mut v: Vec<(TupleKey, f64)> = self
            .keys
            .iter()
            .map(|&t| (t, self.topk_probability(t)))
            .collect();
        v.sort_by(|(ka, pa), (kb, pb)| {
            pb.partial_cmp(pa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| ka.cmp(kb))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_andxor::figure1::figure1_correlated_tree;
    use cpdb_andxor::AndXorTreeBuilder;

    fn independent_tree() -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        for (key, score, p) in [(1u64, 30.0, 0.5), (2, 20.0, 0.8), (3, 10.0, 0.4)] {
            let l = b.leaf_parts(key, score);
            xors.push(b.xor_node(vec![(l, p)]));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    use cpdb_andxor::AndXorTree;

    #[test]
    fn cdf_is_cumulative_pmf() {
        let tree = independent_tree();
        let ctx = TopKContext::new(&tree, 3);
        for &t in ctx.keys() {
            let mut acc = 0.0;
            for i in 1..=3 {
                acc += ctx.rank_probability(t, i);
                assert!((ctx.rank_cdf(t, i) - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn topk_probability_equals_presence_when_k_is_n() {
        let tree = independent_tree();
        let ctx = TopKContext::new(&tree, 3);
        let presence = tree.key_presence_probabilities();
        for (&t, &p) in &presence {
            assert!((ctx.topk_probability(t) - p).abs() < 1e-9);
            assert!((ctx.beyond_topk_probability(t) - (1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    fn upsilon_statistics_consistency() {
        let tree = figure1_correlated_tree();
        let ctx = TopKContext::new(&tree, 2);
        for &t in ctx.keys() {
            let u1 = ctx.upsilon1(t);
            let u2 = ctx.upsilon2(t);
            // Υ₂ is between 1·Υ₁ and k·Υ₁.
            assert!(u2 + 1e-12 >= u1);
            assert!(u2 <= ctx.k() as f64 * u1 + 1e-12);
            // Υ₃(t, i) at i = 0 is just Σ j·Pr(r=j) = Υ₂.
            assert!((ctx.upsilon3(t, 0) - u2).abs() < 1e-12);
            // Υ_H(t) ≥ Pr(r(t) ≤ 1) and ≤ H_k.
            assert!(ctx.upsilon_h(t) + 1e-12 >= ctx.rank_cdf(t, 1));
            assert!(ctx.upsilon_h(t) <= 1.0 + 0.5 + 1e-12);
        }
    }

    #[test]
    fn out_of_range_queries_are_zero() {
        let tree = independent_tree();
        let ctx = TopKContext::new(&tree, 2);
        assert_eq!(ctx.rank_probability(TupleKey(1), 0), 0.0);
        assert_eq!(ctx.rank_probability(TupleKey(1), 5), 0.0);
        assert_eq!(ctx.rank_probability(TupleKey(99), 1), 0.0);
        assert_eq!(ctx.rank_cdf(TupleKey(99), 2), 0.0);
        assert_eq!(ctx.rank_cdf(TupleKey(1), 0), 0.0);
    }

    #[test]
    fn keys_by_topk_probability_sorted_descending() {
        let tree = independent_tree();
        let ctx = TopKContext::new(&tree, 1);
        let sorted = ctx.keys_by_topk_probability();
        for pair in sorted.windows(2) {
            assert!(pair[0].1 >= pair[1].1 - 1e-12);
        }
    }

    #[test]
    fn prefix_sum_accessors_match_direct_summation() {
        let tree = figure1_correlated_tree();
        for k in 1..=4usize {
            let ctx = TopKContext::new(&tree, k);
            for &t in ctx.keys() {
                let direct_u2: f64 = (1..=k).map(|i| i as f64 * ctx.rank_probability(t, i)).sum();
                assert!((ctx.upsilon2(t) - direct_u2).abs() < 1e-12);
                let direct_uh: f64 = (1..=k).map(|i| ctx.rank_cdf(t, i) / i as f64).sum();
                assert!((ctx.upsilon_h(t) - direct_uh).abs() < 1e-12);
                for i in 0..=k + 1 {
                    let direct: f64 = (1..=k)
                        .map(|j| ctx.rank_probability(t, j) * (i as f64 - j as f64).abs())
                        .sum();
                    assert!(
                        (ctx.misplacement_mass(t, i) - direct).abs() < 1e-12,
                        "k={k} t={t:?} i={i}"
                    );
                }
                for j in 1..=k {
                    let direct: f64 = (j..=k).map(|i| ctx.rank_cdf(t, i) / i as f64).sum();
                    assert!((ctx.profit_tail(t, j) - direct).abs() < 1e-12);
                }
            }
            // Unknown tuples and out-of-range positions stay zero.
            assert_eq!(ctx.misplacement_mass(TupleKey(99), 1), 0.0);
            assert_eq!(ctx.profit_tail(TupleKey(99), 1), 0.0);
            assert_eq!(ctx.profit_tail(TupleKey(1), 0), 0.0);
            assert_eq!(ctx.profit_tail(TupleKey(1), k + 1), 0.0);
        }
    }

    #[test]
    fn from_pmf_round_trip() {
        let mut pmf = HashMap::new();
        pmf.insert(TupleKey(1), vec![0.5, 0.2]);
        pmf.insert(TupleKey(2), vec![0.3, 0.3]);
        let ctx = TopKContext::from_pmf(2, pmf);
        assert_eq!(ctx.k(), 2);
        assert!((ctx.topk_probability(TupleKey(1)) - 0.7).abs() < 1e-12);
        assert!((ctx.total_topi_mass(1) - 0.8).abs() < 1e-12);
    }
}
