//! Mean Top-k answer under the symmetric-difference metric (§5.2, Theorem 3).
//!
//! Theorem 3: the set of `k` tuples with the largest `Pr(r(t) ≤ k)` minimises
//! `E[d_Δ(τ, τ_pw)]` — because the expectation decomposes per tuple into
//! `Pr(r(t) > k)` for members and `Pr(r(t) ≤ k)` for non-members. This is
//! precisely the answer of a probabilistic-threshold Top-k (PT-k) query whose
//! threshold is tuned to return `k` tuples, which is how the paper puts the
//! previously proposed PT-k semantics on a consensus-answer footing.

use super::context::TopKContext;
use cpdb_rankagg::TopKList;

/// The mean Top-k answer under `d_Δ`: the `k` tuples with the largest
/// `Pr(r(t) ≤ k)`, ordered by that probability (the metric only cares about
/// membership; the ordering is a deterministic convention).
pub fn mean_topk_sym_diff(ctx: &TopKContext) -> TopKList {
    let ranked = ctx.keys_by_topk_probability();
    TopKList::new(ranked.into_iter().take(ctx.k()).map(|(t, _)| t.0).collect())
        .expect("keys are distinct")
}

/// The exact expected (normalised) symmetric-difference distance
/// `E[d_Δ(τ, τ_pw)]` of an arbitrary candidate list, from the closed form in
/// the proof of Theorem 3:
/// `(1 / 2k) · (k + Σ_t Pr(r(t) ≤ k) − 2 Σ_{t ∈ τ} Pr(r(t) ≤ k))`.
pub fn expected_sym_diff_distance(ctx: &TopKContext, candidate: &TopKList) -> f64 {
    let k = ctx.k() as f64;
    if ctx.k() == 0 {
        return 0.0;
    }
    let total: f64 = ctx.total_topi_mass(ctx.k());
    let selected: f64 = candidate
        .items()
        .iter()
        .map(|&t| ctx.topk_probability(cpdb_model::TupleKey(t)))
        .sum();
    (candidate.len() as f64 + total - 2.0 * selected) / (2.0 * k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cpdb_andxor::figure1::figure1_correlated_tree;
    use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
    use cpdb_model::WorldModel;

    fn independent_tree(specs: &[(u64, f64, f64)]) -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        for &(key, score, p) in specs {
            let l = b.leaf_parts(key, score);
            xors.push(b.xor_node(vec![(l, p)]));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    #[test]
    fn theorem3_matches_brute_force_on_independent_tuples() {
        let tree = independent_tree(&[
            (1, 90.0, 0.3),
            (2, 80.0, 0.9),
            (3, 70.0, 0.6),
            (4, 60.0, 0.7),
            (5, 50.0, 0.2),
        ]);
        for k in 1..=3 {
            let ctx = TopKContext::new(&tree, k);
            let mean = mean_topk_sym_diff(&ctx);
            let ws = tree.enumerate_worlds();
            let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
            let (_, brute_cost) = oracle::brute_force_mean_topk(&items, k, &ws, |a, b| {
                oracle::sym_diff_distance_fixed_k(k, a, b)
            });
            let closed = expected_sym_diff_distance(&ctx, &mean);
            let direct = oracle::expected_topk_distance(&mean, &ws, k, |a, b| {
                oracle::sym_diff_distance_fixed_k(k, a, b)
            });
            assert!(
                (closed - direct).abs() < 1e-9,
                "k={k}: closed form {closed} vs direct {direct}"
            );
            assert!(
                (closed - brute_cost).abs() < 1e-9,
                "k={k}: algorithm {closed} vs brute force {brute_cost}"
            );
        }
    }

    #[test]
    fn theorem3_matches_brute_force_on_correlated_tree() {
        let tree = figure1_correlated_tree();
        for k in 1..=3 {
            let ctx = TopKContext::new(&tree, k);
            let mean = mean_topk_sym_diff(&ctx);
            let ws = tree.enumerate_worlds();
            let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
            let (_, brute_cost) = oracle::brute_force_mean_topk(&items, k, &ws, |a, b| {
                oracle::sym_diff_distance_fixed_k(k, a, b)
            });
            let cost = expected_sym_diff_distance(&ctx, &mean);
            assert!(
                (cost - brute_cost).abs() < 1e-9,
                "k={k}: algorithm {cost} vs brute force {brute_cost}"
            );
        }
    }

    #[test]
    fn mean_answer_contains_the_high_probability_tuples() {
        let tree = independent_tree(&[(1, 9.0, 0.95), (2, 8.0, 0.9), (3, 7.0, 0.05)]);
        let ctx = TopKContext::new(&tree, 2);
        let mean = mean_topk_sym_diff(&ctx);
        assert!(mean.contains(1));
        assert!(mean.contains(2));
        assert!(!mean.contains(3));
    }

    #[test]
    fn score_probability_tradeoff_is_resolved_by_rank_probability() {
        // Tuple 1 has the best score but low probability; tuple 3 has a worse
        // score but is nearly certain. For k = 1 the consensus answer picks
        // the tuple most likely to *be* the top-1, not the best-scored one.
        let tree = independent_tree(&[(1, 100.0, 0.2), (2, 90.0, 0.3), (3, 80.0, 0.95)]);
        let ctx = TopKContext::new(&tree, 1);
        let mean = mean_topk_sym_diff(&ctx);
        // Pr(r(3) ≤ 1) = 0.95·0.8·0.7 = 0.532 > Pr(r(1) ≤ 1) = 0.2.
        assert_eq!(mean.items(), &[3]);
    }

    #[test]
    fn expected_distance_of_empty_candidate() {
        let tree = independent_tree(&[(1, 9.0, 0.5)]);
        let ctx = TopKContext::new(&tree, 1);
        let d = expected_sym_diff_distance(&ctx, &TopKList::empty());
        // Distance is 1/2·(0 + 0.5 - 0)/1 = 0.25.
        assert!((d - 0.25).abs() < 1e-12);
    }
}
