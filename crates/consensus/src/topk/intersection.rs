//! Mean Top-k answer under the intersection metric (§5.3).
//!
//! The intersection metric `d_I` averages the (normalised) symmetric
//! difference over every prefix depth, so position matters. Rewriting the
//! expectation (see the paper's derivation) shows that minimising
//! `E[d_I(τ, τ_pw)]` is equivalent to maximising
//!
//! ```text
//! A(τ) = Σ_{j=1..k}  profit(τ(j), j),
//! profit(t, j) = Σ_{i=j..k}  Pr(r(t) ≤ i) / i
//! ```
//!
//! — an assignment problem between tuples (agents) and result positions
//! (tasks), solved exactly with the Hungarian algorithm.
//!
//! The paper also defines the harmonic ranking function
//! `Υ_H(t) = Σ_{i ≤ k} Pr(r(t) ≤ i)/i` and proves that simply taking the `k`
//! tuples with the highest `Υ_H` (in that order) achieves
//! `A(τ_H) ≥ A(τ*) / H_k`. Both the exact and the approximate answers are
//! provided, and the experiments measure how close the approximation gets in
//! practice.

use super::context::TopKContext;
use cpdb_assignment::max_profit_assignment_flat;
use cpdb_model::TupleKey;
use cpdb_rankagg::TopKList;

/// The profit of placing tuple `t` at result position `j` (1-based):
/// `Σ_{i=j..k} Pr(r(t) ≤ i)/i`. Served in O(1) from the harmonic suffix sums
/// cached in [`TopKContext`] ([`TopKContext::profit_tail`]), so the full n×k
/// assignment profit matrix costs O(n·k) instead of O(n·k²);
/// [`position_profit_direct`] keeps the direct summation as the test
/// reference.
pub fn position_profit(ctx: &TopKContext, t: TupleKey, j: usize) -> f64 {
    ctx.profit_tail(t, j)
}

/// [`position_profit`] by direct O(k) summation over the rank CDF — the
/// reference implementation the suffix-sum hot path is tested against.
pub fn position_profit_direct(ctx: &TopKContext, t: TupleKey, j: usize) -> f64 {
    (j..=ctx.k()).map(|i| ctx.rank_cdf(t, i) / i as f64).sum()
}

/// The objective `A(τ)` of a candidate list (the paper's §5.3).
pub fn objective_a(ctx: &TopKContext, candidate: &TopKList) -> f64 {
    candidate
        .items()
        .iter()
        .enumerate()
        .map(|(idx, &t)| position_profit(ctx, TupleKey(t), idx + 1))
        .sum()
}

/// The exact expected intersection-metric distance of a candidate:
/// `E[d_I(τ, τ_pw)] = (1/k) Σ_{i=1..k} (1/2i)(i + Σ_t Pr(r(t) ≤ i) −
/// 2 Σ_{t ∈ τ^i} Pr(r(t) ≤ i))`.
pub fn expected_intersection_distance(ctx: &TopKContext, candidate: &TopKList) -> f64 {
    let k = ctx.k();
    if k == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 1..=k {
        let prefix_len = candidate.len().min(i);
        let selected: f64 = candidate
            .items()
            .iter()
            .take(i)
            .map(|&t| ctx.rank_cdf(TupleKey(t), i))
            .sum();
        let mass = ctx.total_topi_mass(i);
        total += (prefix_len as f64 + mass - 2.0 * selected) / (2.0 * i as f64);
    }
    total / k as f64
}

/// The exact mean Top-k answer under the intersection metric, via the
/// Hungarian algorithm on the (tuple × position) profit matrix.
pub fn mean_topk_intersection(ctx: &TopKContext) -> TopKList {
    let k = ctx.k();
    if k == 0 || ctx.keys().is_empty() {
        return TopKList::empty();
    }
    let keys = ctx.keys();
    // Row-major flat profit matrix: O(n·k) to fill (position_profit is O(1))
    // and one allocation instead of one per row.
    let mut profit = Vec::with_capacity(keys.len() * k);
    for &t in keys {
        for j in 1..=k {
            profit.push(position_profit(ctx, t, j));
        }
    }
    let assignment = max_profit_assignment_flat(&profit, keys.len(), k);
    let mut slots: Vec<Option<u64>> = vec![None; k];
    for (row, col) in assignment.row_to_col.iter().enumerate() {
        if let Some(c) = col {
            slots[*c] = Some(keys[row].0);
        }
    }
    TopKList::new(slots.into_iter().flatten().collect()).expect("keys are distinct")
}

/// The harmonic-ranking approximation `τ_H`: the `k` tuples with the highest
/// `Υ_H(t)`, in decreasing order. Guaranteed to achieve at least a `1/H_k`
/// fraction of the optimal objective `A(τ*)`.
pub fn mean_topk_upsilon_h(ctx: &TopKContext) -> TopKList {
    let mut scored: Vec<(TupleKey, f64)> =
        ctx.keys().iter().map(|&t| (t, ctx.upsilon_h(t))).collect();
    scored.sort_by(|(ka, sa), (kb, sb)| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ka.cmp(kb))
    });
    TopKList::new(scored.into_iter().take(ctx.k()).map(|(t, _)| t.0).collect())
        .expect("keys are distinct")
}

/// The `k`-th harmonic number `H_k = Σ_{i ≤ k} 1/i` (the approximation bound
/// of §5.3) now lives in the shared numerics module of `cpdb_genfunc`; it is
/// re-exported here because it is the natural companion of
/// [`mean_topk_upsilon_h`].
pub use cpdb_genfunc::harmonic;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cpdb_andxor::figure1::figure1_correlated_tree;
    use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
    use cpdb_model::WorldModel;
    use cpdb_rankagg::metrics::intersection_metric;

    fn independent_tree(specs: &[(u64, f64, f64)]) -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        for &(key, score, p) in specs {
            let l = b.leaf_parts(key, score);
            xors.push(b.xor_node(vec![(l, p)]));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    fn tree_small() -> AndXorTree {
        independent_tree(&[
            (1, 90.0, 0.3),
            (2, 80.0, 0.9),
            (3, 70.0, 0.6),
            (4, 60.0, 0.7),
        ])
    }

    #[test]
    fn expected_distance_formula_matches_enumeration() {
        let tree = tree_small();
        let ws = tree.enumerate_worlds();
        for k in 1..=3 {
            let ctx = TopKContext::new(&tree, k);
            let candidates = [
                TopKList::new((1..=k as u64).collect()).unwrap(),
                TopKList::new((1..=k as u64).rev().collect()).unwrap(),
            ];
            for cand in &candidates {
                let formula = expected_intersection_distance(&ctx, cand);
                let direct = oracle::expected_topk_distance(cand, &ws, k, intersection_metric);
                assert!(
                    (formula - direct).abs() < 1e-9,
                    "k={k} cand={cand}: formula {formula} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn assignment_answer_matches_brute_force() {
        let tree = tree_small();
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        for k in 1..=3 {
            let ctx = TopKContext::new(&tree, k);
            let mean = mean_topk_intersection(&ctx);
            let cost = expected_intersection_distance(&ctx, &mean);
            let (_, brute_cost) =
                oracle::brute_force_mean_topk(&items, k, &ws, intersection_metric);
            assert!(
                (cost - brute_cost).abs() < 1e-9,
                "k={k}: assignment {cost} vs brute force {brute_cost}"
            );
        }
    }

    #[test]
    fn assignment_answer_matches_brute_force_on_correlated_tree() {
        let tree = figure1_correlated_tree();
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        for k in 1..=3 {
            let ctx = TopKContext::new(&tree, k);
            let mean = mean_topk_intersection(&ctx);
            let cost = expected_intersection_distance(&ctx, &mean);
            let (_, brute_cost) =
                oracle::brute_force_mean_topk(&items, k, &ws, intersection_metric);
            assert!(
                (cost - brute_cost).abs() < 1e-9,
                "k={k}: assignment {cost} vs brute force {brute_cost}"
            );
        }
    }

    #[test]
    fn suffix_sum_position_profit_matches_direct_summation() {
        for tree in [tree_small(), figure1_correlated_tree()] {
            for k in 1..=4usize {
                let ctx = TopKContext::new(&tree, k);
                for &t in ctx.keys() {
                    for j in 1..=k {
                        let fast = position_profit(&ctx, t, j);
                        let direct = position_profit_direct(&ctx, t, j);
                        assert!(
                            (fast - direct).abs() < 1e-12,
                            "k={k} t={t:?} j={j}: suffix-sum {fast} vs direct {direct}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn upsilon_h_answer_respects_the_harmonic_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..6 {
            let n = rng.gen_range(4..8);
            let specs: Vec<(u64, f64, f64)> = (0..n)
                .map(|i| {
                    (
                        i as u64,
                        rng.gen_range(0.0..100.0),
                        rng.gen_range(0.05..1.0),
                    )
                })
                .collect();
            let tree = independent_tree(&specs);
            let k = rng.gen_range(1..=3usize);
            let ctx = TopKContext::new(&tree, k);
            let optimal = mean_topk_intersection(&ctx);
            let approx = mean_topk_upsilon_h(&ctx);
            let a_opt = objective_a(&ctx, &optimal);
            let a_approx = objective_a(&ctx, &approx);
            assert!(
                a_approx + 1e-9 >= a_opt / harmonic(k),
                "A(τ_H) = {a_approx} < A(τ*)/H_k = {}",
                a_opt / harmonic(k)
            );
            // The approximation can never beat the optimum.
            assert!(a_approx <= a_opt + 1e-9);
        }
    }

    #[test]
    fn objective_and_distance_are_consistent() {
        // Larger A(τ) ⇔ smaller expected intersection distance.
        let tree = tree_small();
        let ctx = TopKContext::new(&tree, 2);
        let a = TopKList::new(vec![2, 4]).unwrap();
        let b = TopKList::new(vec![1, 3]).unwrap();
        let (aa, ab) = (objective_a(&ctx, &a), objective_a(&ctx, &b));
        let (da, db) = (
            expected_intersection_distance(&ctx, &a),
            expected_intersection_distance(&ctx, &b),
        );
        assert_eq!(aa > ab, da < db);
    }

    #[test]
    fn harmonic_re_export_matches_genfunc() {
        assert_eq!(harmonic(4), cpdb_genfunc::harmonic(4));
    }

    #[test]
    fn empty_context_returns_empty_answer() {
        let tree = independent_tree(&[(1, 1.0, 0.5)]);
        let ctx = TopKContext::new(&tree, 0);
        assert!(mean_topk_intersection(&ctx).is_empty());
        assert_eq!(
            expected_intersection_distance(&ctx, &TopKList::empty()),
            0.0
        );
    }
}
