//! Consensus Top-k answers under Kendall's tau (§5.5).
//!
//! Computing the mean answer under the Kendall distance is NP-hard even for
//! explicitly given rankings (Kemeny aggregation of 4 lists), and and/xor
//! trees can encode arbitrary world distributions, so the paper settles for
//! constant-factor approximations:
//!
//! * the footrule-optimal answer (§5.4) is a 2-approximation, because the
//!   footrule and Kendall Top-k distances are within a factor 2 of each
//!   other;
//! * pivot/KwikSort aggregation driven by the exact pairwise probabilities
//!   `Pr(r(t_i) < r(t_j))` — the only statistic Ailon's partial-rank-
//!   aggregation algorithms need — gives a constant-factor approximation.
//!   (The paper invokes Ailon's LP-based 3/2-approximation; this repository
//!   substitutes the combinatorial pivot scheme, whose measured quality is
//!   reported by experiment E8.)
//!
//! The module also provides exact and sampled evaluators for
//! `E[d_K(τ, τ_pw)]` so the approximation factors can be measured.

use super::context::TopKContext;
use super::footrule::mean_topk_footrule;
use crate::oracle;
use cpdb_andxor::AndXorTree;
use cpdb_model::{TupleKey, WorldModel};
use cpdb_rankagg::metrics::kendall_tau_topk;
use cpdb_rankagg::pivot::{pivot_best_of, PreferenceMatrix};
use cpdb_rankagg::TopKList;
use rand::Rng;

/// Builds the pairwise-preference tournament `w(i, j) = Pr(r(t_i) < r(t_j))`
/// over the given keys, using exact generating-function computations via the
/// batch evaluator ([`AndXorTree::batch_pairwise_order`]): one shared
/// root-path extraction serves every pair instead of two tree sweeps per
/// pair. Auto thread count (`CPDB_THREADS`, then machine parallelism).
pub fn preference_matrix(tree: &AndXorTree, keys: &[TupleKey]) -> PreferenceMatrix {
    preference_matrix_with_parallelism(tree, keys, 0)
}

/// [`preference_matrix`] with an explicit thread count (`0` = auto). The
/// batch evaluator is bit-identical at any thread count.
pub fn preference_matrix_with_parallelism(
    tree: &AndXorTree,
    keys: &[TupleKey],
    threads: usize,
) -> PreferenceMatrix {
    let weights = tree.batch_pairwise_order(keys, threads);
    matrix_from_weights(keys, &weights)
}

/// Assembles a [`PreferenceMatrix`] from a row-major weight matrix over
/// `keys` — the shared back end of the batch build and the live-update
/// patch path.
fn matrix_from_weights(keys: &[TupleKey], weights: &[f64]) -> PreferenceMatrix {
    let items: Vec<u64> = keys.iter().map(|t| t.0).collect();
    let n = keys.len();
    let mut m = PreferenceMatrix::new(&items);
    for (i, &a) in keys.iter().enumerate() {
        for (j, &b) in keys.iter().enumerate() {
            if i != j {
                m.set_weight(a.0, b.0, weights[i * n + j]);
            }
        }
    }
    m
}

/// The **patch path** of [`preference_matrix`] for live updates: rebuilds
/// only the rows/columns of the `affected` keys on the mutated tree (via
/// [`AndXorTree::batch_pairwise_order_partial`], the same per-pair closed
/// form as the full batch build) and copies every other entry from the
/// pre-mutation tournament `old`. When the mutation's
/// [`cpdb_andxor::DeltaImpact`] certifies that only `affected` keys were
/// touched, the result is **bit-identical** to a from-scratch
/// [`preference_matrix_with_parallelism`] on the mutated tree, at
/// `O(|affected|·n)` pair evaluations instead of `O(n²)`.
pub fn preference_matrix_patched(
    tree: &AndXorTree,
    keys: &[TupleKey],
    affected: &std::collections::BTreeSet<TupleKey>,
    old: &PreferenceMatrix,
    threads: usize,
) -> PreferenceMatrix {
    let recompute: Vec<bool> = keys.iter().map(|k| affected.contains(k)).collect();
    let weights = tree.batch_pairwise_order_partial(
        keys,
        &recompute,
        |i, j| old.weight(keys[i].0, keys[j].0),
        threads,
    );
    matrix_from_weights(keys, &weights)
}

/// The candidate pool the pivot aggregation works on: the `pool_size` (at
/// least `k`) most promising tuples by `Pr(r(t) ≤ k)`, in that order.
pub fn candidate_pool(ctx: &TopKContext, pool_size: usize) -> Vec<TupleKey> {
    candidate_pool_with_coverage(ctx, pool_size).0
}

/// [`candidate_pool`] together with the pool's **coverage**: the fraction of
/// the total Top-k probability mass `Σ_t Pr(r(t) ≤ k)` retained by the pool.
/// A truncated pool silently drops candidates; the coverage quantifies how
/// much of the mass the aggregation can still see (`1.0` when nothing was
/// clipped), so heuristic answers can report it instead of hiding the
/// truncation.
pub fn candidate_pool_with_coverage(ctx: &TopKContext, pool_size: usize) -> (Vec<TupleKey>, f64) {
    let ranked = ctx.keys_by_topk_probability();
    let total: f64 = ranked.iter().map(|(_, p)| *p).sum();
    let take = pool_size.max(ctx.k());
    let retained: f64 = ranked.iter().take(take).map(|(_, p)| *p).sum();
    let pool = ranked.into_iter().take(take).map(|(t, _)| t).collect();
    let coverage = if total > 0.0 {
        (retained / total).min(1.0)
    } else {
        1.0
    };
    (pool, coverage)
}

/// Restricts a precomputed pairwise-order tournament to a candidate pool,
/// copying the weights instead of recomputing the generating functions. This
/// is the caching seam used by `cpdb_engine`: the full tournament is computed
/// once per tree, and per-query pools are carved out of it for free.
pub fn preference_submatrix(full: &PreferenceMatrix, pool: &[TupleKey]) -> PreferenceMatrix {
    let items: Vec<u64> = pool.iter().map(|t| t.0).collect();
    let mut m = PreferenceMatrix::new(&items);
    for (idx, &a) in pool.iter().enumerate() {
        for &b in pool.iter().skip(idx + 1) {
            m.set_weight(a.0, b.0, full.weight(a.0, b.0));
            m.set_weight(b.0, a.0, full.weight(b.0, a.0));
        }
    }
    m
}

/// Kendall consensus answer via pivot aggregation: run seeded KwikSort over
/// the pairwise-order tournament (restricted to the `candidate_pool` most
/// promising tuples by `Pr(r(t) ≤ k)`), take the best of `trials` runs, and
/// return its Top-k prefix.
pub fn mean_topk_kendall_pivot<R: Rng + ?Sized>(
    tree: &AndXorTree,
    ctx: &TopKContext,
    candidate_pool_size: usize,
    trials: usize,
    rng: &mut R,
) -> TopKList {
    let k = ctx.k();
    if k == 0 {
        return TopKList::empty();
    }
    let pool = candidate_pool(ctx, candidate_pool_size);
    if pool.is_empty() {
        return TopKList::empty();
    }
    let prefs = preference_matrix(tree, &pool);
    mean_topk_kendall_pivot_from_prefs(ctx, &prefs, trials, rng)
}

/// The pivot aggregation step alone, given an already pool-restricted
/// tournament (see [`preference_submatrix`]): best-of-`trials` KwikSort,
/// truncated to the Top-k prefix.
pub fn mean_topk_kendall_pivot_from_prefs<R: Rng + ?Sized>(
    ctx: &TopKContext,
    prefs: &PreferenceMatrix,
    trials: usize,
    rng: &mut R,
) -> TopKList {
    if ctx.k() == 0 || prefs.items().is_empty() {
        return TopKList::empty();
    }
    let ranking = pivot_best_of(prefs, trials, rng).expect("tournament is non-empty");
    ranking.top_k(ctx.k())
}

/// Kendall consensus answer via the footrule-optimal answer — a
/// 2-approximation because the two metrics are within a factor 2 of each
/// other (Fagin et al.).
pub fn mean_topk_kendall_via_footrule(ctx: &TopKContext) -> TopKList {
    mean_topk_footrule(ctx)
}

/// Exact `E[d_K(τ, τ_pw)]` by enumerating the possible worlds. Exponential;
/// used for ground truth on small instances.
pub fn expected_kendall_distance_enumerated(
    tree: &AndXorTree,
    ctx: &TopKContext,
    candidate: &TopKList,
) -> f64 {
    let ws = tree.enumerate_worlds();
    oracle::expected_topk_distance(candidate, &ws, ctx.k(), kendall_tau_topk)
}

/// Monte-Carlo estimate of `E[d_K(τ, τ_pw)]` by sampling `samples` worlds.
pub fn expected_kendall_distance_sampled<R: Rng + ?Sized>(
    tree: &AndXorTree,
    ctx: &TopKContext,
    candidate: &TopKList,
    samples: usize,
    rng: &mut R,
) -> f64 {
    if samples == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for _ in 0..samples {
        let w = tree.sample_world(rng);
        let answer = oracle::world_topk(&w, ctx.k());
        total += kendall_tau_topk(candidate, &answer);
    }
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_andxor::figure1::figure1_correlated_tree;
    use cpdb_andxor::AndXorTreeBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn independent_tree(specs: &[(u64, f64, f64)]) -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        for &(key, score, p) in specs {
            let l = b.leaf_parts(key, score);
            xors.push(b.xor_node(vec![(l, p)]));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    fn tree_small() -> AndXorTree {
        independent_tree(&[
            (1, 90.0, 0.4),
            (2, 80.0, 0.9),
            (3, 70.0, 0.6),
            (4, 60.0, 0.8),
        ])
    }

    #[test]
    fn preference_matrix_is_consistent_with_enumeration() {
        let tree = figure1_correlated_tree();
        let keys = tree.keys();
        let prefs = preference_matrix(&tree, &keys);
        let ws = tree.enumerate_worlds();
        for &a in &keys {
            for &b in &keys {
                if a == b {
                    continue;
                }
                let expected = ws.expectation(|w| match (w.rank_of(a), w.rank_of(b)) {
                    (Some(ra), Some(rb)) => f64::from(ra < rb),
                    (Some(_), None) => 1.0,
                    _ => 0.0,
                });
                assert!((prefs.weight(a.0, b.0) - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pivot_answer_is_within_factor_two_of_brute_force() {
        let tree = tree_small();
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        let mut rng = StdRng::seed_from_u64(5);
        for k in 1..=3 {
            let ctx = TopKContext::new(&tree, k);
            let pivot = mean_topk_kendall_pivot(&tree, &ctx, items.len(), 8, &mut rng);
            let pivot_cost = expected_kendall_distance_enumerated(&tree, &ctx, &pivot);
            let (_, opt_cost) = oracle::brute_force_mean_topk(&items, k, &ws, kendall_tau_topk);
            assert!(
                pivot_cost <= 2.0 * opt_cost + 1e-9,
                "k={k}: pivot {pivot_cost} vs optimal {opt_cost}"
            );
        }
    }

    #[test]
    fn footrule_answer_is_within_factor_two_of_brute_force() {
        let tree = tree_small();
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        for k in 1..=3 {
            let ctx = TopKContext::new(&tree, k);
            let answer = mean_topk_kendall_via_footrule(&ctx);
            let cost = expected_kendall_distance_enumerated(&tree, &ctx, &answer);
            let (_, opt_cost) = oracle::brute_force_mean_topk(&items, k, &ws, kendall_tau_topk);
            assert!(
                cost <= 2.0 * opt_cost + 1e-9,
                "k={k}: footrule answer {cost} vs optimal {opt_cost}"
            );
        }
    }

    #[test]
    fn sampled_distance_converges_to_enumerated() {
        let tree = tree_small();
        let ctx = TopKContext::new(&tree, 2);
        let candidate = TopKList::new(vec![2, 4]).unwrap();
        let exact = expected_kendall_distance_enumerated(&tree, &ctx, &candidate);
        let mut rng = StdRng::seed_from_u64(77);
        let sampled = expected_kendall_distance_sampled(&tree, &ctx, &candidate, 20_000, &mut rng);
        assert!(
            (exact - sampled).abs() < 0.05,
            "exact {exact} vs sampled {sampled}"
        );
    }

    #[test]
    fn unanimous_ordering_is_recovered() {
        // Near-certain tuples with clearly separated scores: the consensus
        // order should follow the scores.
        let tree = independent_tree(&[(1, 100.0, 0.99), (2, 90.0, 0.99), (3, 80.0, 0.99)]);
        let ctx = TopKContext::new(&tree, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let pivot = mean_topk_kendall_pivot(&tree, &ctx, 3, 4, &mut rng);
        assert_eq!(pivot.items(), &[1, 2, 3]);
    }

    #[test]
    fn preference_submatrix_path_is_bit_identical_to_direct() {
        let tree = tree_small();
        let ctx = TopKContext::new(&tree, 2);
        let full = preference_matrix(&tree, &tree.keys());
        let pool = candidate_pool(&ctx, 4);
        let sub = preference_submatrix(&full, &pool);
        assert_eq!(sub, preference_matrix(&tree, &pool));
        let mut direct_rng = StdRng::seed_from_u64(9);
        let mut cached_rng = StdRng::seed_from_u64(9);
        assert_eq!(
            mean_topk_kendall_pivot(&tree, &ctx, 4, 4, &mut direct_rng),
            mean_topk_kendall_pivot_from_prefs(&ctx, &sub, 4, &mut cached_rng)
        );
    }

    #[test]
    fn pool_coverage_reports_retained_topk_mass() {
        let tree = tree_small();
        let ctx = TopKContext::new(&tree, 2);
        // Full pool: nothing clipped.
        let (pool, coverage) = candidate_pool_with_coverage(&ctx, 4);
        assert_eq!(pool.len(), 4);
        assert!((coverage - 1.0).abs() < 1e-12);
        // Clipped pool: coverage is the retained fraction of Σ Pr(r(t) ≤ k).
        let (pool, coverage) = candidate_pool_with_coverage(&ctx, 2);
        assert_eq!(pool.len(), 2);
        let ranked = ctx.keys_by_topk_probability();
        let total: f64 = ranked.iter().map(|(_, p)| *p).sum();
        let retained: f64 = ranked.iter().take(2).map(|(_, p)| *p).sum();
        assert!((coverage - retained / total).abs() < 1e-12);
        assert!(coverage < 1.0);
        // The wrapper returns the same pool.
        assert_eq!(candidate_pool(&ctx, 2), pool);
    }

    #[test]
    fn zero_k_and_empty_pool_edge_cases() {
        let tree = tree_small();
        let ctx = TopKContext::new(&tree, 0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(mean_topk_kendall_pivot(&tree, &ctx, 4, 2, &mut rng).is_empty());
        assert_eq!(
            expected_kendall_distance_sampled(
                &tree,
                &TopKContext::new(&tree, 1),
                &TopKList::empty(),
                0,
                &mut rng
            ),
            0.0
        );
    }
}
