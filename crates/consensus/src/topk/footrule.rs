//! Mean Top-k answer under Spearman's footrule (§5.4 and Figure 2).
//!
//! The footrule distance with location parameter `ℓ = k + 1` is a true metric
//! on Top-k lists and sits in the same equivalence class as Kendall's tau.
//! Figure 2 of the paper rewrites its expectation against the random world's
//! answer as a constant plus a sum of per-(tuple, position) charges
//!
//! ```text
//! E[F*(τ, τ_pw)] = C + Σ_t Σ_{i ≤ k} δ(t = τ(i)) · f(t, i),
//! f(t, i) = Υ₃(t, i) + Υ₂(t) − 2(k + 1)·Υ₁(t),
//! C = (k + 1)·k + Σ_t ((k + 1)·Υ₁(t) − Υ₂(t)),
//! ```
//!
//! so the optimal answer is again an assignment problem: place tuple `t` at
//! position `i` with cost `f(t, i)`, allowing tuples to stay unplaced at zero
//! cost.

use super::context::TopKContext;
use cpdb_assignment::min_cost_assignment_flat;
use cpdb_model::TupleKey;
use cpdb_rankagg::TopKList;

/// The per-(tuple, position) charge `f(t, i)` of Figure 2.
///
/// **Sign correction (documented reproduction finding):** expanding
/// `E[F*(τ, τ_pw)]` from the definition gives, for a tuple placed at
/// position `i`,
///
/// ```text
/// f(t, i) = Σ_{j ≤ k} Pr(r(t) = j)·|i − j|  −  i·Pr(r(t) > k)
///           + Υ₂(t) − 2(k + 1)·Υ₁(t)
/// ```
///
/// i.e. the `i·Pr(r(t) > k)` term enters with a **negative** sign (it comes
/// from the `− Σ_{t ∈ τ \ τ_pw} τ(t)` term of the footrule identity).
/// The paper's Figure 2 folds that term into `Υ₃(t, i)` with a positive sign,
/// which double-counts it; the tests in this module validate the corrected
/// expression against brute-force enumeration (they fail with the paper's
/// literal sign).
///
/// Served in O(1) per `(t, i)` from the per-tuple prefix sums cached in
/// [`TopKContext`] ([`TopKContext::misplacement_mass`]), so the full n×k
/// assignment cost matrix costs O(n·k) instead of O(n·k²).
/// [`placement_cost_direct`] keeps the direct O(k) summation as the test
/// reference.
pub fn placement_cost(ctx: &TopKContext, t: TupleKey, i: usize) -> f64 {
    ctx.misplacement_mass(t, i) - i as f64 * ctx.beyond_topk_probability(t) + ctx.upsilon2(t)
        - 2.0 * (ctx.k() as f64 + 1.0) * ctx.upsilon1(t)
}

/// [`placement_cost`] by direct O(k) summation over the rank PMF — the
/// reference implementation the prefix-sum hot path is tested against.
pub fn placement_cost_direct(ctx: &TopKContext, t: TupleKey, i: usize) -> f64 {
    let misplacement: f64 = (1..=ctx.k())
        .map(|j| ctx.rank_probability(t, j) * (i as f64 - j as f64).abs())
        .sum();
    let upsilon2: f64 = (1..=ctx.k())
        .map(|j| j as f64 * ctx.rank_probability(t, j))
        .sum();
    misplacement - i as f64 * ctx.beyond_topk_probability(t) + upsilon2
        - 2.0 * (ctx.k() as f64 + 1.0) * ctx.upsilon1(t)
}

/// The constant term `C` of Figure 2 (independent of the candidate answer).
pub fn constant_term(ctx: &TopKContext) -> f64 {
    let k = ctx.k() as f64;
    let per_tuple: f64 = ctx
        .keys()
        .iter()
        .map(|&t| (k + 1.0) * ctx.upsilon1(t) - ctx.upsilon2(t))
        .sum();
    (k + 1.0) * k + per_tuple
}

/// The exact expected footrule distance `E[F*(τ, τ_pw)]` of a candidate
/// answer, from the Figure 2 decomposition.
pub fn expected_footrule_distance(ctx: &TopKContext, candidate: &TopKList) -> f64 {
    let placements: f64 = candidate
        .items()
        .iter()
        .enumerate()
        .map(|(idx, &t)| placement_cost(ctx, TupleKey(t), idx + 1))
        .sum();
    constant_term(ctx) + placements
}

/// The exact mean Top-k answer under the footrule metric, via a min-cost
/// assignment on the `f(t, i)` matrix (tuples × positions). Placements with
/// positive cost are left unused only when fewer than `k` tuples exist.
pub fn mean_topk_footrule(ctx: &TopKContext) -> TopKList {
    let k = ctx.k();
    if k == 0 || ctx.keys().is_empty() {
        return TopKList::empty();
    }
    let keys = ctx.keys();
    // Row-major flat cost matrix: O(n·k) to fill (placement_cost is O(1))
    // and one allocation instead of one per row.
    let mut cost = Vec::with_capacity(keys.len() * k);
    for &t in keys {
        for i in 1..=k {
            cost.push(placement_cost(ctx, t, i));
        }
    }
    let assignment = min_cost_assignment_flat(&cost, keys.len(), k);
    let mut slots: Vec<Option<u64>> = vec![None; k];
    for (row, col) in assignment.row_to_col.iter().enumerate() {
        if let Some(c) = col {
            slots[*c] = Some(keys[row].0);
        }
    }
    TopKList::new(slots.into_iter().flatten().collect()).expect("keys are distinct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cpdb_andxor::figure1::figure1_correlated_tree;
    use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
    use cpdb_model::WorldModel;
    use cpdb_rankagg::metrics::footrule_distance;

    fn independent_tree(specs: &[(u64, f64, f64)]) -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        for &(key, score, p) in specs {
            let l = b.leaf_parts(key, score);
            xors.push(b.xor_node(vec![(l, p)]));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    fn tree_small() -> AndXorTree {
        independent_tree(&[
            (1, 90.0, 0.3),
            (2, 80.0, 0.9),
            (3, 70.0, 0.6),
            (4, 60.0, 0.7),
        ])
    }

    /// The Figure 2 decomposition must equal the definitional expectation.
    /// This is the computational validation of the paper's Figure 2.
    #[test]
    fn figure2_decomposition_matches_enumeration() {
        let tree = tree_small();
        let ws = tree.enumerate_worlds();
        for k in 1..=3usize {
            let ctx = TopKContext::new(&tree, k);
            let candidates = [
                TopKList::new((1..=k as u64).collect()).unwrap(),
                TopKList::new((1..=k as u64).rev().collect()).unwrap(),
                TopKList::new(((5 - k as u64)..5).collect()).unwrap(),
            ];
            for cand in &candidates {
                let formula = expected_footrule_distance(&ctx, cand);
                let direct = oracle::expected_topk_distance(cand, &ws, k, footrule_distance);
                assert!(
                    (formula - direct).abs() < 1e-9,
                    "k={k} cand={cand}: Figure 2 formula {formula} vs enumeration {direct}"
                );
            }
        }
    }

    #[test]
    fn figure2_decomposition_matches_enumeration_on_correlated_tree() {
        let tree = figure1_correlated_tree();
        let ws = tree.enumerate_worlds();
        for k in 1..=3usize {
            let ctx = TopKContext::new(&tree, k);
            // Candidates over the five keys of Figure 1(ii).
            let candidates = [
                TopKList::new((1..=k as u64).collect()).unwrap(),
                TopKList::new((3..3 + k as u64).collect()).unwrap(),
            ];
            for cand in &candidates {
                let formula = expected_footrule_distance(&ctx, cand);
                let direct = oracle::expected_topk_distance(cand, &ws, k, footrule_distance);
                assert!(
                    (formula - direct).abs() < 1e-9,
                    "k={k} cand={cand}: {formula} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn assignment_answer_matches_brute_force() {
        let tree = tree_small();
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        for k in 1..=3 {
            let ctx = TopKContext::new(&tree, k);
            let mean = mean_topk_footrule(&ctx);
            let cost = expected_footrule_distance(&ctx, &mean);
            let (_, brute_cost) = oracle::brute_force_mean_topk(&items, k, &ws, footrule_distance);
            assert!(
                (cost - brute_cost).abs() < 1e-9,
                "k={k}: assignment {cost} vs brute force {brute_cost}"
            );
        }
    }

    #[test]
    fn assignment_answer_matches_brute_force_on_correlated_tree() {
        let tree = figure1_correlated_tree();
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        for k in 1..=2 {
            let ctx = TopKContext::new(&tree, k);
            let mean = mean_topk_footrule(&ctx);
            let cost = expected_footrule_distance(&ctx, &mean);
            let (_, brute_cost) = oracle::brute_force_mean_topk(&items, k, &ws, footrule_distance);
            assert!(
                (cost - brute_cost).abs() < 1e-9,
                "k={k}: assignment {cost} vs brute force {brute_cost}"
            );
        }
    }

    #[test]
    fn prefix_sum_placement_cost_matches_direct_summation() {
        for tree in [tree_small(), figure1_correlated_tree()] {
            for k in 1..=4usize {
                let ctx = TopKContext::new(&tree, k);
                for &t in ctx.keys() {
                    for i in 1..=k {
                        let fast = placement_cost(&ctx, t, i);
                        let direct = placement_cost_direct(&ctx, t, i);
                        assert!(
                            (fast - direct).abs() < 1e-12,
                            "k={k} t={t:?} i={i}: prefix-sum {fast} vs direct {direct}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn footrule_favours_likely_high_rank_tuples_at_the_top() {
        let tree = independent_tree(&[(1, 100.0, 0.95), (2, 90.0, 0.9), (3, 80.0, 0.1)]);
        let ctx = TopKContext::new(&tree, 2);
        let mean = mean_topk_footrule(&ctx);
        assert_eq!(mean.items(), &[1, 2]);
    }

    #[test]
    fn empty_and_zero_k_cases() {
        let tree = independent_tree(&[(1, 1.0, 0.5)]);
        let ctx = TopKContext::new(&tree, 0);
        assert!(mean_topk_footrule(&ctx).is_empty());
    }
}
