//! Consensus Top-k answers (§5 of the paper).
//!
//! A Top-k query returns, for each possible world, the `k` tuples with the
//! highest score. The consensus answer is the Top-k list minimising the
//! expected distance to the random world's answer, under one of the distance
//! measures of Fagin et al. (implemented in `cpdb-rankagg`):
//!
//! | sub-module | metric | algorithm | guarantee |
//! |---|---|---|---|
//! | [`sym_diff`] | normalised symmetric difference `d_Δ` | top-k by `Pr(r(t) ≤ k)` (the PT-k connection, Theorem 3) | exact mean |
//! | [`median_dp`] | `d_Δ` restricted to possible answers | threshold + tree DP (Theorem 4) | exact median |
//! | [`intersection`] | intersection metric `d_I` | assignment problem; `Υ_H` ranking shortcut | exact mean; `1/H_k` approx |
//! | [`footrule`] | Spearman footrule `F^{(k+1)}` | assignment problem (Figure 2 decomposition) | exact mean |
//! | [`kendall`] | Kendall tau `K^{(0)}` | footrule answer (2-approx) and pivot aggregation over `Pr(r(t_i) < r(t_j))` | constant approx (NP-hard exactly) |
//!
//! All of them consume a [`context::TopKContext`], which precomputes the rank
//! distributions `Pr(r(t) = i)` for `i ≤ k` from the and/xor tree once.

pub mod context;
pub mod footrule;
pub mod intersection;
pub mod kendall;
pub mod median_dp;
pub mod sym_diff;

pub use context::TopKContext;
