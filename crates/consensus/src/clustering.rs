//! Consensus clustering over probabilistic databases (§6.2).
//!
//! Two tuples are clustered together in a possible world when they take the
//! same value for the (uncertain) attribute `A`; keys absent from a world
//! form one artificial cluster. The consensus clustering minimises the
//! expected number of pairwise disagreements with the random world's
//! clustering, and — as in Ailon, Charikar & Newman's CONSENSUS-CLUSTERING —
//! the only statistics needed are the pairwise co-clustering probabilities
//! `w_{ij}`, which the generating-function engine computes exactly:
//! `w_{ij} = Σ_a Pr(i.A = a ∧ j.A = a) + Pr(i absent ∧ j absent)`.
//!
//! The pivot (KwikCluster) algorithm gives a constant-factor approximation;
//! a brute-force optimiser over set partitions provides ground truth on
//! small instances.

use cpdb_andxor::AndXorTree;
use cpdb_genfunc::Truncation;
use cpdb_model::TupleKey;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// A clustering of tuple keys: each inner vector is one cluster.
pub type Clustering = Vec<Vec<TupleKey>>;

/// Pairwise co-clustering probabilities `w_{ij}` for a set of tuples.
#[derive(Debug, Clone)]
pub struct CoClusteringWeights {
    keys: Vec<TupleKey>,
    weights: HashMap<(TupleKey, TupleKey), f64>,
}

impl CoClusteringWeights {
    /// Computes the exact co-clustering probabilities from an and/xor tree,
    /// including the "both absent" artificial cluster of the paper. Uses the
    /// batch evaluator ([`AndXorTree::batch_cocluster_weights`]) — one shared
    /// root-path extraction instead of one generating-function sweep per pair
    /// — with an automatic thread count (`CPDB_THREADS`, then machine
    /// parallelism).
    pub fn from_tree(tree: &AndXorTree) -> Self {
        Self::from_tree_with_parallelism(tree, 0)
    }

    /// [`CoClusteringWeights::from_tree`] with an explicit thread count
    /// (`0` = auto). The batch evaluator is bit-identical at any thread
    /// count.
    pub fn from_tree_with_parallelism(tree: &AndXorTree, threads: usize) -> Self {
        let keys = tree.keys();
        let matrix = tree.batch_cocluster_weights(&keys, threads);
        Self::from_matrix(keys, &matrix)
    }

    /// Assembles the symmetric weight map from a row-major matrix over
    /// `keys` — the shared back end of the batch build and the live-update
    /// patch path.
    fn from_matrix(keys: Vec<TupleKey>, matrix: &[f64]) -> Self {
        let n = keys.len();
        let mut weights = HashMap::new();
        for (idx, &i) in keys.iter().enumerate() {
            for (jdx, &j) in keys.iter().enumerate().skip(idx + 1) {
                let w = matrix[idx * n + jdx];
                weights.insert((i, j), w);
                weights.insert((j, i), w);
            }
        }
        CoClusteringWeights { keys, weights }
    }

    /// The per-pair reference construction (one generating-function sweep per
    /// pair), kept as the conformance baseline for the batch path and as the
    /// legacy side of the `rank_artifacts` benchmark.
    pub fn from_tree_per_pair(tree: &AndXorTree) -> Self {
        let keys = tree.keys();
        let mut weights = HashMap::new();
        for (idx, &i) in keys.iter().enumerate() {
            for &j in keys.iter().skip(idx + 1) {
                let same_value = tree.cluster_weight(i, j);
                // Pr(both absent): assign x to every leaf of either key; the
                // coefficient of x^0 is the probability neither appears.
                let both_absent = tree
                    .genfunc1(Truncation::Degree(0), |a| a.key == i || a.key == j)
                    .coeff(0);
                let w = (same_value + both_absent).clamp(0.0, 1.0);
                weights.insert((i, j), w);
                weights.insert((j, i), w);
            }
        }
        CoClusteringWeights { keys, weights }
    }

    /// The **patch path** of [`CoClusteringWeights::from_tree`] for live
    /// updates: rebuilds only the pairs with an `affected` key on the
    /// mutated tree (via [`AndXorTree::batch_cocluster_weights_partial`],
    /// the same per-pair closed form as the full batch build) and copies
    /// every other pair's weight from `self`, the pre-mutation matrix. When
    /// the mutation's [`cpdb_andxor::DeltaImpact`] certifies that only
    /// `affected` keys were touched, the result is **bit-identical** to a
    /// from-scratch build on the mutated tree, at `O(|affected|·n)` pair
    /// evaluations instead of `O(n²)`.
    pub fn patched(
        &self,
        tree: &AndXorTree,
        affected: &std::collections::BTreeSet<TupleKey>,
        threads: usize,
    ) -> Self {
        let keys = tree.keys();
        let recompute: Vec<bool> = keys.iter().map(|k| affected.contains(k)).collect();
        let matrix = tree.batch_cocluster_weights_partial(
            &keys,
            &recompute,
            |i, j| self.weight(keys[i], keys[j]),
            threads,
        );
        Self::from_matrix(keys, &matrix)
    }

    /// Builds weights directly from a map (for tests and other models). Only
    /// pairs present in the map are considered co-clustered with non-zero
    /// probability.
    pub fn from_map(keys: Vec<TupleKey>, weights: HashMap<(TupleKey, TupleKey), f64>) -> Self {
        let mut symmetric = HashMap::with_capacity(weights.len() * 2);
        for (&(i, j), &w) in &weights {
            symmetric.insert((i, j), w);
            symmetric.insert((j, i), w);
        }
        CoClusteringWeights {
            keys,
            weights: symmetric,
        }
    }

    /// The tuple keys being clustered.
    pub fn keys(&self) -> &[TupleKey] {
        &self.keys
    }

    /// `w_{ij}` — the probability that `i` and `j` are clustered together in
    /// the random world.
    pub fn weight(&self, i: TupleKey, j: TupleKey) -> f64 {
        if i == j {
            return 1.0;
        }
        self.weights.get(&(i, j)).copied().unwrap_or(0.0)
    }

    /// The expected pairwise-disagreement distance `E[d(C, C_pw)]` of a
    /// candidate clustering: pairs placed together cost `1 − w_{ij}`, pairs
    /// separated cost `w_{ij}`.
    pub fn expected_distance(&self, clustering: &Clustering) -> f64 {
        let mut cluster_of: HashMap<TupleKey, usize> = HashMap::new();
        for (c, members) in clustering.iter().enumerate() {
            for &t in members {
                cluster_of.insert(t, c);
            }
        }
        let mut total = 0.0;
        for (idx, &i) in self.keys.iter().enumerate() {
            for &j in self.keys.iter().skip(idx + 1) {
                let together = cluster_of.get(&i) == cluster_of.get(&j)
                    && cluster_of.contains_key(&i)
                    && cluster_of.contains_key(&j);
                let w = self.weight(i, j);
                total += if together { 1.0 - w } else { w };
            }
        }
        total
    }
}

/// KwikCluster / pivot consensus clustering: repeatedly pick a random pivot,
/// put every unclustered tuple with co-clustering probability ≥ ½ into the
/// pivot's cluster, and recurse on the rest. Expected constant-factor
/// approximation of the optimal consensus clustering.
pub fn pivot_clustering<R: Rng + ?Sized>(weights: &CoClusteringWeights, rng: &mut R) -> Clustering {
    let mut remaining: Vec<TupleKey> = weights.keys().to_vec();
    remaining.shuffle(rng);
    let mut clusters = Vec::new();
    while let Some(pivot) = remaining.pop() {
        let mut cluster = vec![pivot];
        let mut rest = Vec::with_capacity(remaining.len());
        for &t in &remaining {
            if weights.weight(pivot, t) >= 0.5 {
                cluster.push(t);
            } else {
                rest.push(t);
            }
        }
        remaining = rest;
        clusters.push(cluster);
    }
    clusters
}

/// Runs [`pivot_clustering`] `trials` times plus the singleton and the
/// all-in-one clusterings, returning the candidate with the smallest expected
/// distance.
pub fn pivot_clustering_best_of<R: Rng + ?Sized>(
    weights: &CoClusteringWeights,
    trials: usize,
    rng: &mut R,
) -> (Clustering, f64) {
    let singletons: Clustering = weights.keys().iter().map(|&t| vec![t]).collect();
    let everything: Clustering = vec![weights.keys().to_vec()];
    let mut best = singletons;
    let mut best_cost = weights.expected_distance(&best);
    let all_cost = weights.expected_distance(&everything);
    if all_cost < best_cost {
        best = everything;
        best_cost = all_cost;
    }
    for _ in 0..trials {
        let candidate = pivot_clustering(weights, rng);
        let cost = weights.expected_distance(&candidate);
        if cost < best_cost {
            best_cost = cost;
            best = candidate;
        }
    }
    (best, best_cost)
}

/// Brute-force optimal consensus clustering by enumerating every set
/// partition of the keys (Bell-number many; limited to 10 keys).
pub fn brute_force_clustering(weights: &CoClusteringWeights) -> (Clustering, f64) {
    let keys = weights.keys().to_vec();
    assert!(
        keys.len() <= 10,
        "brute-force consensus clustering limited to 10 tuples"
    );
    let mut assignment = vec![0usize; keys.len()];
    let mut best: Option<(Clustering, f64)> = None;
    enumerate_partitions(&keys, 0, 0, &mut assignment, &mut |labels| {
        let num_clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut clustering: Clustering = vec![Vec::new(); num_clusters];
        for (idx, &label) in labels.iter().enumerate() {
            clustering[label].push(keys[idx]);
        }
        let cost = weights.expected_distance(&clustering);
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            best = Some((clustering, cost));
        }
    });
    best.expect("at least the singleton partition exists")
}

fn enumerate_partitions<F: FnMut(&[usize])>(
    keys: &[TupleKey],
    idx: usize,
    max_label: usize,
    assignment: &mut Vec<usize>,
    visit: &mut F,
) {
    if idx == keys.len() {
        visit(assignment);
        return;
    }
    for label in 0..=max_label {
        assignment[idx] = label;
        let next_max = if label == max_label {
            max_label + 1
        } else {
            max_label
        };
        enumerate_partitions(keys, idx + 1, next_max, assignment, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_andxor::AndXorTreeBuilder;
    use cpdb_model::{PossibleWorld, WorldModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Attribute-uncertain relation: each tuple takes one of a few values.
    fn attribute_tree() -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        // Tuples 1 and 2 usually share value 10; tuple 3 usually takes 20.
        for (key, options) in [
            (1u64, vec![(10.0, 0.8), (20.0, 0.2)]),
            (2u64, vec![(10.0, 0.7), (20.0, 0.3)]),
            (3u64, vec![(10.0, 0.1), (20.0, 0.9)]),
        ] {
            let edges: Vec<_> = options
                .iter()
                .map(|&(v, p)| {
                    let l = b.leaf_parts(key, v);
                    (l, p)
                })
                .collect();
            xors.push(b.xor_node(edges));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    fn world_clustering_distance(
        w: &PossibleWorld,
        clustering: &Clustering,
        keys: &[TupleKey],
    ) -> f64 {
        let mut cluster_of: HashMap<TupleKey, usize> = HashMap::new();
        for (c, members) in clustering.iter().enumerate() {
            for &t in members {
                cluster_of.insert(t, c);
            }
        }
        let mut total = 0.0;
        for (idx, &i) in keys.iter().enumerate() {
            for &j in keys.iter().skip(idx + 1) {
                // In the world: together iff same value, or both absent.
                let together_world = match (w.value_of(i), w.value_of(j)) {
                    (Some(a), Some(b)) => a == b,
                    (None, None) => true,
                    _ => false,
                };
                let together_candidate = cluster_of.get(&i) == cluster_of.get(&j);
                if together_world != together_candidate {
                    total += 1.0;
                }
            }
        }
        total
    }

    #[test]
    fn batch_weights_match_the_per_pair_reference() {
        let tree = attribute_tree();
        let batch = CoClusteringWeights::from_tree(&tree);
        let reference = CoClusteringWeights::from_tree_per_pair(&tree);
        for (idx, &i) in batch.keys().iter().enumerate() {
            for &j in batch.keys().iter().skip(idx + 1) {
                assert!(
                    (batch.weight(i, j) - reference.weight(i, j)).abs() < 1e-12,
                    "w({i:?},{j:?}): batch {} vs per-pair {}",
                    batch.weight(i, j),
                    reference.weight(i, j)
                );
            }
        }
    }

    #[test]
    fn weights_match_enumeration() {
        let tree = attribute_tree();
        let weights = CoClusteringWeights::from_tree(&tree);
        let ws = tree.enumerate_worlds();
        for (idx, &i) in weights.keys().iter().enumerate() {
            for &j in weights.keys().iter().skip(idx + 1) {
                let expected = ws.expectation(|w| match (w.value_of(i), w.value_of(j)) {
                    (Some(a), Some(b)) => f64::from(a == b),
                    (None, None) => 1.0,
                    _ => 0.0,
                });
                assert!(
                    (weights.weight(i, j) - expected).abs() < 1e-9,
                    "w({i:?},{j:?}) = {} vs enumeration {expected}",
                    weights.weight(i, j)
                );
            }
        }
    }

    #[test]
    fn expected_distance_matches_enumeration() {
        let tree = attribute_tree();
        let weights = CoClusteringWeights::from_tree(&tree);
        let ws = tree.enumerate_worlds();
        let keys = tree.keys();
        let candidates: Vec<Clustering> = vec![
            vec![vec![TupleKey(1), TupleKey(2)], vec![TupleKey(3)]],
            vec![vec![TupleKey(1)], vec![TupleKey(2)], vec![TupleKey(3)]],
            vec![vec![TupleKey(1), TupleKey(2), TupleKey(3)]],
        ];
        for cand in &candidates {
            let formula = weights.expected_distance(cand);
            let brute = ws.expectation(|w| world_clustering_distance(w, cand, &keys));
            assert!(
                (formula - brute).abs() < 1e-9,
                "candidate {cand:?}: formula {formula} vs enumeration {brute}"
            );
        }
    }

    #[test]
    fn pivot_close_to_brute_force_on_small_instances() {
        let tree = attribute_tree();
        let weights = CoClusteringWeights::from_tree(&tree);
        let mut rng = StdRng::seed_from_u64(9);
        let (_, pivot_cost) = pivot_clustering_best_of(&weights, 16, &mut rng);
        let (_, opt_cost) = brute_force_clustering(&weights);
        assert!(pivot_cost + 1e-9 >= opt_cost);
        assert!(
            pivot_cost <= 2.0 * opt_cost + 1e-9,
            "pivot {pivot_cost} vs optimal {opt_cost}"
        );
    }

    #[test]
    fn pivot_groups_strongly_correlated_tuples() {
        let tree = attribute_tree();
        let weights = CoClusteringWeights::from_tree(&tree);
        let mut rng = StdRng::seed_from_u64(3);
        let (best, _) = pivot_clustering_best_of(&weights, 16, &mut rng);
        // Tuples 1 and 2 should land in the same cluster, 3 elsewhere.
        let cluster_of = |t: TupleKey| best.iter().position(|c| c.contains(&t)).unwrap();
        assert_eq!(cluster_of(TupleKey(1)), cluster_of(TupleKey(2)));
        assert_ne!(cluster_of(TupleKey(1)), cluster_of(TupleKey(3)));
    }

    #[test]
    fn brute_force_enumerates_all_partitions_of_three() {
        // Weight structure where the optimum is the all-singletons partition.
        let keys = vec![TupleKey(1), TupleKey(2), TupleKey(3)];
        let weights = CoClusteringWeights::from_map(keys, HashMap::new());
        let (best, cost) = brute_force_clustering(&weights);
        assert_eq!(best.len(), 3);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn self_weight_is_one_and_unknown_pairs_zero() {
        let weights = CoClusteringWeights::from_map(vec![TupleKey(1), TupleKey(2)], HashMap::new());
        assert_eq!(weights.weight(TupleKey(1), TupleKey(1)), 1.0);
        assert_eq!(weights.weight(TupleKey(1), TupleKey(2)), 0.0);
    }
}
