//! Consensus answers for group-by count aggregates (§6.1).
//!
//! The query `SELECT groupname, COUNT(*) FROM R GROUP BY groupname` over a
//! probabilistic relation with attribute-level uncertainty is specified by a
//! matrix `P = [p_{i,v}]` (tuple `i` takes group `v` with probability
//! `p_{i,v}`, rows summing to 1). A deterministic answer is an
//! `m`-dimensional count vector, and distances are squared L2.
//!
//! * the **mean** answer is simply the vector of expected counts `r̄ = 1·P`
//!   (linearity of expectation), and it minimises the expected squared
//!   distance over all real vectors;
//! * the **median** answer must be a *possible* count vector. Theorem 5: the
//!   possible vector closest to `r̄` rounds every coordinate to `⌊r̄[v]⌋` or
//!   `⌈r̄[v]⌉` (Lemma 3) and can be found by a min-cost flow with lower
//!   bounds; Corollary 2: that vector is a 4-approximation of the true
//!   median.

use cpdb_assignment::{FlowError, MinCostFlow};
use cpdb_model::error::ModelError;
use rand::Rng;

/// A group-by count aggregation problem: `probs[i][v]` is the probability
/// that tuple `i` belongs to group `v`. Rows must sum to 1 (every tuple
/// belongs to exactly one group in every world).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByInstance {
    probs: Vec<Vec<f64>>,
    num_groups: usize,
}

impl GroupByInstance {
    /// Builds an instance, validating shapes and probabilities.
    pub fn new(probs: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        if probs.is_empty() {
            return Err(ModelError::Empty {
                context: "group-by instance with no tuples".to_string(),
            });
        }
        let num_groups = probs[0].len();
        if num_groups == 0 {
            return Err(ModelError::Empty {
                context: "group-by instance with no groups".to_string(),
            });
        }
        for (i, row) in probs.iter().enumerate() {
            if row.len() != num_groups {
                return Err(ModelError::Invalid {
                    context: format!(
                        "tuple {i} has {} group probabilities, expected {num_groups}",
                        row.len()
                    ),
                });
            }
            let mut total = 0.0;
            for (v, &p) in row.iter().enumerate() {
                cpdb_model::error::validate_probability(p, &format!("tuple {i}, group {v}"))?;
                total += p;
            }
            if (total - 1.0).abs() > 1e-6 {
                return Err(ModelError::Invalid {
                    context: format!("tuple {i} group probabilities sum to {total}, expected 1"),
                });
            }
        }
        Ok(GroupByInstance { probs, num_groups })
    }

    /// Number of tuples.
    #[inline]
    pub fn num_tuples(&self) -> usize {
        self.probs.len()
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The probability matrix.
    #[inline]
    pub fn probabilities(&self) -> &[Vec<f64>] {
        &self.probs
    }

    /// The **mean** answer `r̄ = 1·P`: the expected count of every group.
    pub fn mean_answer(&self) -> Vec<f64> {
        let mut mean = vec![0.0; self.num_groups];
        for row in &self.probs {
            for (v, &p) in row.iter().enumerate() {
                mean[v] += p;
            }
        }
        mean
    }

    /// The exact expected squared distance `E[‖r − R‖²]` of an arbitrary
    /// candidate vector `r`, using
    /// `E[‖r − R‖²] = ‖r − r̄‖² + Σ_v Var(R_v)` and the independence of
    /// tuples: `Var(R_v) = Σ_i p_{i,v}(1 − p_{i,v})`.
    pub fn expected_squared_distance(&self, candidate: &[f64]) -> f64 {
        let mean = self.mean_answer();
        let mut bias: f64 = 0.0;
        for (v, m) in mean.iter().enumerate() {
            let c = candidate.get(v).copied().unwrap_or(0.0);
            bias += (c - m).powi(2);
        }
        bias + self.total_variance()
    }

    /// `Σ_v Var(R_v)` — the irreducible part of the expected squared distance.
    pub fn total_variance(&self) -> f64 {
        self.probs
            .iter()
            .flat_map(|row| row.iter().map(|&p| p * (1.0 - p)))
            .sum()
    }

    /// Theorem 5: the possible count vector closest to the mean answer,
    /// found by a min-cost flow with lower bounds. Returns the vector and the
    /// per-tuple group assignment that witnesses its possibility.
    pub fn closest_possible_answer(&self) -> Result<PossibleAggregate, ModelError> {
        let n = self.num_tuples();
        let m = self.num_groups();
        let mean = self.mean_answer();

        // Node layout: 0 = source, 1..=n tuples, n+1..=n+m groups, n+m+1 sink.
        let source = 0usize;
        let sink = n + m + 1;
        let mut flow = MinCostFlow::new(n + m + 2);
        let mut tuple_group_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (i, edges) in tuple_group_edges.iter_mut().enumerate() {
            flow.add_edge(source, 1 + i, 0, 1, 0.0)
                .map_err(flow_to_model_error)?;
            for (v, &p) in self.probs[i].iter().enumerate() {
                if p > 0.0 {
                    let e = flow
                        .add_edge(1 + i, 1 + n + v, 0, 1, 0.0)
                        .map_err(flow_to_model_error)?;
                    edges.push((v, e));
                }
            }
        }
        for (v, &mv) in mean.iter().enumerate() {
            let floor = mv.floor();
            let frac = mv - floor;
            // Mandatory ⌊r̄[v]⌋ units at zero marginal cost.
            flow.add_edge(1 + n + v, sink, floor as i64, floor as i64, 0.0)
                .map_err(flow_to_model_error)?;
            if frac > 1e-9 {
                // One optional unit whose marginal cost is the change in
                // squared error from rounding up instead of down.
                let cost = (mv.ceil() - mv).powi(2) - (floor - mv).powi(2);
                flow.add_edge(1 + n + v, sink, 0, 1, cost)
                    .map_err(flow_to_model_error)?;
            }
        }
        let solution = flow
            .min_cost_flow(source, sink, n as i64)
            .map_err(flow_to_model_error)?;

        // Recover the witnessing assignment and the rounded vector.
        let mut assignment = vec![0usize; n];
        let mut counts = vec![0i64; m];
        for (i, edges) in tuple_group_edges.iter().enumerate() {
            for &(v, e) in edges {
                if solution.edge_flows[e] > 0 {
                    assignment[i] = v;
                    counts[v] += 1;
                }
            }
        }
        Ok(PossibleAggregate { counts, assignment })
    }

    /// Corollary 2: a deterministic 4-approximation of the **median** answer
    /// — simply the closest possible answer to the mean.
    pub fn median_answer_4approx(&self) -> Result<PossibleAggregate, ModelError> {
        self.closest_possible_answer()
    }

    /// Samples a possible count vector (a query answer of a random world).
    pub fn sample_answer<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<i64> {
        let mut counts = vec![0i64; self.num_groups];
        for row in &self.probs {
            let mut u: f64 = rng.gen();
            let mut chosen = self.num_groups - 1;
            for (v, &p) in row.iter().enumerate() {
                if u < p {
                    chosen = v;
                    break;
                }
                u -= p;
            }
            counts[chosen] += 1;
        }
        counts
    }

    /// Exhaustively enumerates the distribution over possible count vectors.
    /// Exponential in the number of tuples; ground truth for small instances.
    pub fn enumerate_answers(&self) -> Vec<(Vec<i64>, f64)> {
        assert!(
            self.num_tuples() <= 12,
            "exhaustive group-by enumeration limited to 12 tuples"
        );
        let mut dist: Vec<(Vec<i64>, f64)> = vec![(vec![0; self.num_groups], 1.0)];
        for row in &self.probs {
            let mut next: std::collections::BTreeMap<Vec<i64>, f64> =
                std::collections::BTreeMap::new();
            for (counts, p) in &dist {
                for (v, &q) in row.iter().enumerate() {
                    if q <= 0.0 {
                        continue;
                    }
                    let mut c = counts.clone();
                    c[v] += 1;
                    *next.entry(c).or_insert(0.0) += p * q;
                }
            }
            dist = next.into_iter().collect();
        }
        dist
    }

    /// The exact **median** answer by exhaustive enumeration (ground truth).
    pub fn median_answer_brute_force(&self) -> (Vec<i64>, f64) {
        let answers = self.enumerate_answers();
        let mut best: Option<(Vec<i64>, f64)> = None;
        for (candidate, p) in &answers {
            if *p <= 0.0 {
                continue;
            }
            let cost: f64 = answers
                .iter()
                .map(|(other, q)| {
                    q * candidate
                        .iter()
                        .zip(other.iter())
                        .map(|(a, b)| ((a - b) as f64).powi(2))
                        .sum::<f64>()
                })
                .sum();
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                best = Some((candidate.clone(), cost));
            }
        }
        best.expect("at least one possible answer exists")
    }
}

/// A possible aggregate answer together with the tuple → group assignment
/// that realises it (the witness that the vector is a possible query answer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossibleAggregate {
    /// The per-group counts.
    pub counts: Vec<i64>,
    /// `assignment[i]` is the group taken by tuple `i` in the witnessing
    /// world.
    pub assignment: Vec<usize>,
}

fn flow_to_model_error(e: FlowError) -> ModelError {
    ModelError::Invalid {
        context: format!("aggregate flow construction failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> GroupByInstance {
        GroupByInstance::new(vec![
            vec![0.6, 0.4, 0.0],
            vec![0.1, 0.7, 0.2],
            vec![0.3, 0.3, 0.4],
            vec![0.0, 0.5, 0.5],
            vec![0.9, 0.05, 0.05],
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_rows() {
        assert!(GroupByInstance::new(vec![]).is_err());
        assert!(GroupByInstance::new(vec![vec![]]).is_err());
        assert!(GroupByInstance::new(vec![vec![0.5, 0.6]]).is_err());
        assert!(GroupByInstance::new(vec![vec![0.5, 0.5], vec![1.0]]).is_err());
        assert!(GroupByInstance::new(vec![vec![0.5, 0.5], vec![1.0, 0.0]]).is_ok());
    }

    #[test]
    fn mean_answer_is_column_sums() {
        let inst = small_instance();
        let mean = inst.mean_answer();
        assert!((mean[0] - 1.9).abs() < 1e-12);
        assert!((mean[1] - 1.95).abs() < 1e-12);
        assert!((mean[2] - 1.15).abs() < 1e-12);
        assert!((mean.iter().sum::<f64>() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn expected_squared_distance_matches_enumeration() {
        let inst = small_instance();
        let answers = inst.enumerate_answers();
        let candidates = [vec![2.0, 2.0, 1.0], vec![0.0, 0.0, 5.0], inst.mean_answer()];
        for cand in &candidates {
            let formula = inst.expected_squared_distance(cand);
            let brute: f64 = answers
                .iter()
                .map(|(ans, p)| {
                    p * cand
                        .iter()
                        .zip(ans.iter())
                        .map(|(c, a)| (c - *a as f64).powi(2))
                        .sum::<f64>()
                })
                .sum();
            assert!(
                (formula - brute).abs() < 1e-9,
                "candidate {cand:?}: formula {formula} vs enumeration {brute}"
            );
        }
    }

    #[test]
    fn mean_answer_minimises_expected_squared_distance() {
        let inst = small_instance();
        let mean = inst.mean_answer();
        let base = inst.expected_squared_distance(&mean);
        for delta in [-0.5, 0.25, 1.0] {
            let mut perturbed = mean.clone();
            perturbed[0] += delta;
            assert!(inst.expected_squared_distance(&perturbed) >= base - 1e-12);
        }
    }

    #[test]
    fn closest_possible_answer_rounds_the_mean() {
        let inst = small_instance();
        let mean = inst.mean_answer();
        let possible = inst.closest_possible_answer().unwrap();
        // Lemma 3: every coordinate is the floor or ceiling of the mean.
        for (v, &c) in possible.counts.iter().enumerate() {
            assert!(
                c == mean[v].floor() as i64 || c == mean[v].ceil() as i64,
                "group {v}: count {c} vs mean {}",
                mean[v]
            );
        }
        // The counts sum to n and the assignment witnesses them.
        assert_eq!(possible.counts.iter().sum::<i64>(), 5);
        let mut counted = vec![0i64; inst.num_groups()];
        for (i, &g) in possible.assignment.iter().enumerate() {
            assert!(
                inst.probabilities()[i][g] > 0.0,
                "tuple {i} cannot take group {g}"
            );
            counted[g] += 1;
        }
        assert_eq!(counted, possible.counts);
    }

    #[test]
    fn closest_possible_answer_is_optimal_among_possible_answers() {
        let inst = small_instance();
        let mean = inst.mean_answer();
        let possible = inst.closest_possible_answer().unwrap();
        let chosen_dist: f64 = possible
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| (c as f64 - mean[v]).powi(2))
            .sum();
        for (candidate, p) in inst.enumerate_answers() {
            if p <= 0.0 {
                continue;
            }
            let d: f64 = candidate
                .iter()
                .enumerate()
                .map(|(v, &c)| (c as f64 - mean[v]).powi(2))
                .sum();
            assert!(
                chosen_dist <= d + 1e-9,
                "possible answer {candidate:?} is closer to the mean"
            );
        }
    }

    #[test]
    fn four_approximation_holds_on_random_instances() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(404);
        for _ in 0..10 {
            let n = rng.gen_range(2..7);
            let m = rng.gen_range(2..4);
            let probs: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    let mut row: Vec<f64> = (0..m).map(|_| rng.gen_range(0.01..1.0)).collect();
                    let total: f64 = row.iter().sum();
                    row.iter_mut().for_each(|p| *p /= total);
                    row
                })
                .collect();
            let inst = GroupByInstance::new(probs).unwrap();
            let approx = inst.median_answer_4approx().unwrap();
            let approx_counts: Vec<f64> = approx.counts.iter().map(|&c| c as f64).collect();
            let approx_cost = inst.expected_squared_distance(&approx_counts);
            let (_, opt_cost) = inst.median_answer_brute_force();
            assert!(
                approx_cost <= 4.0 * opt_cost + 1e-9,
                "approx {approx_cost} vs optimal median {opt_cost}"
            );
        }
    }

    #[test]
    fn sampled_answers_have_the_right_expectation() {
        let inst = small_instance();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut acc = vec![0.0; inst.num_groups()];
        for _ in 0..n {
            let s = inst.sample_answer(&mut rng);
            for (v, c) in s.iter().enumerate() {
                acc[v] += *c as f64;
            }
        }
        let mean = inst.mean_answer();
        for v in 0..inst.num_groups() {
            assert!(
                (acc[v] / n as f64 - mean[v]).abs() < 0.05,
                "group {v}: sampled {} vs mean {}",
                acc[v] / n as f64,
                mean[v]
            );
        }
    }

    #[test]
    fn deterministic_instance_is_its_own_median() {
        let inst =
            GroupByInstance::new(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let possible = inst.closest_possible_answer().unwrap();
        assert_eq!(possible.counts, vec![1, 2]);
        assert_eq!(inst.total_variance(), 0.0);
        let (brute, cost) = inst.median_answer_brute_force();
        assert_eq!(brute, vec![1, 2]);
        assert_eq!(cost, 0.0);
    }
}
