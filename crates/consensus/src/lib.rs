//! # cpdb-consensus — consensus answers for queries over probabilistic databases
//!
//! This crate implements the contribution of Li & Deshpande, *Consensus
//! Answers for Queries over Probabilistic Databases* (PODS 2009): given a
//! query over a probabilistic database, find the single deterministic answer
//! that minimises the **expected distance** to the (random) answer of the
//! possible worlds —
//!
//! ```text
//! τ* = argmin_{τ ∈ Ω}  E_pw [ d(τ, τ_pw) ]
//! ```
//!
//! The *mean* answer lets `Ω` be every syntactically valid answer; the
//! *median* answer restricts `Ω` to answers of possible worlds with non-zero
//! probability.
//!
//! The modules follow the paper's sections:
//!
//! | module | paper | problem |
//! |---|---|---|
//! | [`set_distance`] | §4.1, Thm 2, Cor 1 | mean/median world under symmetric difference |
//! | [`jaccard`] | §4.2, Lemmas 1–2 | mean/median world under Jaccard distance |
//! | [`topk`] | §5 | consensus Top-k answers under d∆, intersection, footrule, Kendall |
//! | [`aggregate`] | §6.1, Thm 5, Cor 2 | consensus group-by count vectors |
//! | [`clustering`] | §6.2 | consensus clustering |
//! | [`baselines`] | §2 / intro | previously proposed ranking semantics for comparison |
//! | [`oracle`] | — | brute-force expected-distance minimisers used as ground truth |
//!
//! All algorithms take a probabilistic and/xor tree (`cpdb-andxor`) — the
//! paper's correlation model — or, where the paper requires it, the simpler
//! tuple-independent / BID models from `cpdb-model`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod baselines;
pub mod clustering;
pub mod jaccard;
pub mod oracle;
pub mod set_distance;
pub mod topk;

pub use cpdb_genfunc::harmonic;
pub use topk::context::TopKContext;
