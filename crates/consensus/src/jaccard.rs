//! Consensus worlds under the Jaccard distance (§4.2, Lemmas 1–2).
//!
//! The Jaccard distance `d_J(S₁, S₂) = |S₁ Δ S₂| / |S₁ ∪ S₂]` couples the
//! tuples, so the expected distance no longer decomposes per tuple. The paper
//! shows two facts that still make the problem tractable:
//!
//! * **Lemma 1** — for any candidate world `W`, `E[d_J(W, pw)]` can be read
//!   off a bivariate generating function in which members of `W` map to `x`
//!   and non-members to `y`: the coefficient of `x^i y^j` is the probability
//!   that `|W ∩ pw| = i` and `|pw \ W| = j`, and such a world is at distance
//!   `(|W| − i + j) / (|W| + j)`.
//! * **Lemma 2** — for tuple-independent databases the mean world is a
//!   *prefix* of the tuples sorted by decreasing probability, so scanning the
//!   `n + 1` prefixes and scoring each with Lemma 1 finds it in polynomial
//!   time. The same scan over the highest-probability alternative of each
//!   block gives the median world for BID databases.

use cpdb_andxor::{AndXorTree, VarAssignment};
use cpdb_genfunc::Truncation;
use cpdb_model::{Alternative, BidDb, PossibleWorld, TupleIndependentDb};
use std::collections::{HashMap, HashSet};

/// Lemma 1: the exact expected Jaccard distance between a candidate world and
/// the random world of an and/xor tree.
pub fn expected_jaccard_distance(tree: &AndXorTree, candidate: &PossibleWorld) -> f64 {
    let members: HashSet<Alternative> = candidate.alternatives().iter().copied().collect();
    let w = members.len();
    let poly = tree.genfunc2(Truncation::None, Truncation::None, |a| {
        if members.contains(a) {
            VarAssignment::X
        } else {
            VarAssignment::Y
        }
    });
    poly.expectation_with(|i, j| {
        let union = w + j;
        if union == 0 {
            0.0
        } else {
            (w - i + j) as f64 / union as f64
        }
    })
}

/// The result of a consensus-world search: the chosen world and its expected
/// distance.
#[derive(Debug, Clone, PartialEq)]
pub struct JaccardConsensus {
    /// The selected world.
    pub world: PossibleWorld,
    /// Its exact expected Jaccard distance to the random world.
    pub expected_distance: f64,
}

/// Lemma 2: the mean world of a tuple-independent database under the Jaccard
/// distance, found by scanning prefixes of the probability-sorted tuple list
/// and scoring each prefix exactly with Lemma 1.
pub fn mean_world_tuple_independent(db: &TupleIndependentDb) -> JaccardConsensus {
    let tree = cpdb_andxor::convert::from_tuple_independent(db)
        .expect("tuple-independent databases always satisfy the tree constraints");
    let sorted = db.sorted_by_probability_desc();
    best_prefix_world(&tree, &sorted)
}

/// The median world of a BID database under the Jaccard distance: only the
/// highest-probability alternative of each block can participate (per §4.2),
/// and the candidates are again prefixes by probability.
pub fn median_world_bid(db: &BidDb) -> JaccardConsensus {
    let tree = cpdb_andxor::convert::from_bid(db)
        .expect("BID databases always satisfy the tree constraints");
    let mut best_alts: Vec<(Alternative, f64)> =
        db.blocks().iter().map(|b| b.best_alternative()).collect();
    best_alts.sort_by(|(a1, p1), (a2, p2)| {
        p2.partial_cmp(p1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a1.key.cmp(&a2.key))
    });
    best_prefix_world(&tree, &best_alts)
}

/// The candidate list the prefix scan works on, derived directly from an
/// and/xor tree: the highest-marginal-probability alternative of every tuple
/// key, sorted by decreasing probability (ties broken by key). For
/// tuple-independent trees this is exactly the Lemma 2 candidate order; for
/// BID trees it is the §4.2 median candidate order. This is the caching seam
/// used by `cpdb_engine` — the list is computed once per tree and reused by
/// every Jaccard query.
pub fn prefix_candidates(tree: &AndXorTree) -> Vec<(Alternative, f64)> {
    prefix_candidates_from_marginals(&tree.alternative_probabilities())
}

/// [`prefix_candidates`] from an already-computed marginal-probability table,
/// so callers that cache `alternative_probabilities` (the engine does, for
/// symmetric-difference set queries) avoid a second tree walk.
pub fn prefix_candidates_from_marginals(
    marginals: &HashMap<Alternative, f64>,
) -> Vec<(Alternative, f64)> {
    let mut best: HashMap<cpdb_model::TupleKey, (Alternative, f64)> = HashMap::new();
    for (&alt, &p) in marginals {
        match best.entry(alt.key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((alt, p));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (cur, cur_p) = *e.get();
                let better = p
                    .partial_cmp(&cur_p)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| alt.value.0.total_cmp(&cur.value.0))
                    .is_gt();
                if better {
                    e.insert((alt, p));
                }
            }
        }
    }
    let mut sorted: Vec<(Alternative, f64)> = best.into_values().collect();
    sorted.sort_by(|(a1, p1), (a2, p2)| {
        p2.partial_cmp(p1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a1.key.cmp(&a2.key))
    });
    sorted
}

/// Scores every prefix of `sorted` (including the empty prefix) with Lemma 1
/// and returns the best one.
pub fn best_prefix_world(tree: &AndXorTree, sorted: &[(Alternative, f64)]) -> JaccardConsensus {
    let mut best = JaccardConsensus {
        world: PossibleWorld::empty(),
        expected_distance: expected_jaccard_distance(tree, &PossibleWorld::empty()),
    };
    let mut prefix: Vec<Alternative> = Vec::with_capacity(sorted.len());
    for (alt, _) in sorted {
        prefix.push(*alt);
        let world = PossibleWorld::new(prefix.clone())
            .expect("prefixes contain at most one alternative per key");
        let d = expected_jaccard_distance(tree, &world);
        if d < best.expected_distance {
            best = JaccardConsensus {
                world,
                expected_distance: d,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cpdb_model::{BidBlock, WorldModel};

    fn jaccard(a: &PossibleWorld, b: &PossibleWorld) -> f64 {
        a.jaccard_distance(b)
    }

    #[test]
    fn lemma1_matches_enumeration() {
        let db = TupleIndependentDb::from_triples(&[
            (1, 1.0, 0.8),
            (2, 2.0, 0.5),
            (3, 3.0, 0.3),
            (4, 4.0, 0.6),
        ])
        .unwrap();
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        let ws = db.enumerate_worlds();
        let candidates = [
            PossibleWorld::empty(),
            PossibleWorld::new(vec![Alternative::new(1, 1.0)]).unwrap(),
            PossibleWorld::new(vec![Alternative::new(1, 1.0), Alternative::new(4, 4.0)]).unwrap(),
            PossibleWorld::new(vec![
                Alternative::new(1, 1.0),
                Alternative::new(2, 2.0),
                Alternative::new(3, 3.0),
                Alternative::new(4, 4.0),
            ])
            .unwrap(),
        ];
        for cand in &candidates {
            let exact = expected_jaccard_distance(&tree, cand);
            let brute = oracle::expected_world_distance(cand, &ws, jaccard);
            assert!(
                (exact - brute).abs() < 1e-9,
                "candidate {cand}: genfunc {exact} vs enumeration {brute}"
            );
        }
    }

    #[test]
    fn lemma1_matches_enumeration_on_correlated_tree() {
        let tree = cpdb_andxor::figure1::figure1_correlated_tree();
        let ws = tree.enumerate_worlds();
        for (cand, _) in ws.worlds() {
            let exact = expected_jaccard_distance(&tree, cand);
            let brute = oracle::expected_world_distance(cand, &ws, jaccard);
            assert!((exact - brute).abs() < 1e-9);
        }
    }

    #[test]
    fn lemma2_mean_world_matches_brute_force() {
        let db = TupleIndependentDb::from_triples(&[
            (1, 1.0, 0.9),
            (2, 2.0, 0.8),
            (3, 3.0, 0.45),
            (4, 4.0, 0.2),
            (5, 5.0, 0.65),
        ])
        .unwrap();
        let consensus = mean_world_tuple_independent(&db);
        let ws = db.enumerate_worlds();
        let (_, brute_cost) = oracle::brute_force_mean_world(&ws, jaccard);
        assert!(
            (consensus.expected_distance - brute_cost).abs() < 1e-9,
            "prefix scan {} vs brute force {brute_cost}",
            consensus.expected_distance
        );
        // The chosen world is a prefix of the probability order.
        assert!(consensus.world.contains(&Alternative::new(1, 1.0)));
        assert!(consensus.world.contains(&Alternative::new(2, 2.0)));
    }

    #[test]
    fn lemma2_prefix_structure_holds_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..8 {
            let n = rng.gen_range(3..8);
            let triples: Vec<(u64, f64, f64)> = (0..n)
                .map(|i| (i as u64, i as f64, rng.gen_range(0.05..0.95)))
                .collect();
            let db = TupleIndependentDb::from_triples(&triples).unwrap();
            let consensus = mean_world_tuple_independent(&db);
            let ws = db.enumerate_worlds();
            let (_, brute_cost) = oracle::brute_force_mean_world(&ws, jaccard);
            assert!(
                consensus.expected_distance <= brute_cost + 1e-9,
                "prefix scan {} vs brute force {brute_cost}",
                consensus.expected_distance
            );
        }
    }

    #[test]
    fn bid_median_is_a_possible_world_and_beats_random_candidates() {
        let db = BidDb::new(vec![
            BidBlock::from_pairs(1, &[(10.0, 0.7), (11.0, 0.2)]).unwrap(),
            BidBlock::from_pairs(2, &[(20.0, 0.5), (21.0, 0.5)]).unwrap(),
            BidBlock::from_pairs(3, &[(30.0, 0.3)]).unwrap(),
        ])
        .unwrap();
        let consensus = median_world_bid(&db);
        let ws = db.enumerate_worlds();
        // The answer must be a possible world (it only uses one alternative
        // per block).
        assert!(ws
            .worlds()
            .iter()
            .any(|(w, p)| *p > 0.0 && *w == consensus.world));
        // And it should not be beaten by any single-block-best candidate
        // prefix that the algorithm considered.
        let empty_cost = oracle::expected_world_distance(&PossibleWorld::empty(), &ws, jaccard);
        assert!(consensus.expected_distance <= empty_cost + 1e-9);
    }

    #[test]
    fn prefix_candidates_match_model_sorted_orders() {
        // Tuple-independent: same order as the db's probability sort.
        let db = TupleIndependentDb::from_triples(&[
            (1, 1.0, 0.9),
            (2, 2.0, 0.2),
            (3, 3.0, 0.65),
            (4, 4.0, 0.65),
        ])
        .unwrap();
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        assert_eq!(prefix_candidates(&tree), db.sorted_by_probability_desc());
        // And the scan over them reproduces the Lemma 2 consensus exactly.
        assert_eq!(
            best_prefix_world(&tree, &prefix_candidates(&tree)),
            mean_world_tuple_independent(&db)
        );

        // BID: same answer as the block-best median scan.
        let bid = BidDb::new(vec![
            BidBlock::from_pairs(1, &[(10.0, 0.7), (11.0, 0.2)]).unwrap(),
            BidBlock::from_pairs(2, &[(20.0, 0.4), (21.0, 0.5)]).unwrap(),
            BidBlock::from_pairs(3, &[(30.0, 0.3)]).unwrap(),
        ])
        .unwrap();
        let bid_tree = cpdb_andxor::convert::from_bid(&bid).unwrap();
        assert_eq!(
            best_prefix_world(&bid_tree, &prefix_candidates(&bid_tree)),
            median_world_bid(&bid)
        );
    }

    #[test]
    fn empty_database_has_zero_distance() {
        let db = TupleIndependentDb::from_triples(&[]).unwrap();
        let consensus = mean_world_tuple_independent(&db);
        assert!(consensus.world.is_empty());
        assert_eq!(consensus.expected_distance, 0.0);
    }
}
