//! Consensus worlds under the symmetric-difference distance (§4.1).
//!
//! * **Theorem 2** — the *mean* world is the set of all tuple alternatives
//!   with marginal probability greater than ½, because each alternative `t`
//!   contributes `Pr(¬t)` to the expected distance when included and `Pr(t)`
//!   when excluded, independently of everything else.
//! * **Corollary 1** — for databases whose correlations are captured by a
//!   probabilistic and/xor tree, that same set is itself a possible world, so
//!   it is also the *median* world.
//! * For arbitrary correlations the median-world problem is NP-hard (the
//!   MAX-2-SAT reduction lives in `cpdb_model::hardness`); the
//!   [`median_world_from_worldset`] helper solves the explicit-world version
//!   by enumeration so the hardness gadget can be exercised end-to-end.

use cpdb_andxor::AndXorTree;
use cpdb_model::{Alternative, PossibleWorld, WorldModel, WorldSet};
use std::collections::HashMap;

/// The expected symmetric-difference distance between a candidate world and
/// the random world, computed in closed form from per-alternative marginals:
/// `Σ_{t ∈ S} (1 − Pr(t)) + Σ_{t ∉ S} Pr(t)` (proof of Theorem 2).
///
/// The summation runs in sorted-alternative order, not `HashMap` iteration
/// order, so the result is bit-identical across map instances — the engine's
/// concurrent-vs-serial conformance gates compare answers from independently
/// built engines down to the last bit.
pub fn expected_symmetric_difference(
    candidate: &PossibleWorld,
    marginals: &HashMap<Alternative, f64>,
) -> f64 {
    expected_symmetric_difference_sorted(candidate, &sorted_marginals(marginals), marginals)
}

/// The marginal table as a sorted slice, the form
/// [`expected_symmetric_difference_sorted`] consumes. Callers that score many
/// candidates against one table (the enumerated-median scan) sort once and
/// reuse it.
fn sorted_marginals(marginals: &HashMap<Alternative, f64>) -> Vec<(Alternative, f64)> {
    let mut entries: Vec<(Alternative, f64)> = marginals.iter().map(|(a, p)| (*a, *p)).collect();
    entries.sort_by_key(|(alt, _)| *alt);
    entries
}

/// [`expected_symmetric_difference`] over a pre-sorted marginal slice (the
/// map is still consulted for the membership test of candidate-only
/// alternatives).
fn expected_symmetric_difference_sorted(
    candidate: &PossibleWorld,
    entries: &[(Alternative, f64)],
    marginals: &HashMap<Alternative, f64>,
) -> f64 {
    let mut total = 0.0;
    for (alt, p) in entries {
        if candidate.contains(alt) {
            total += 1.0 - p;
        } else {
            total += p;
        }
    }
    // Alternatives in the candidate that never occur contribute 1 each.
    for alt in candidate.alternatives() {
        if !marginals.contains_key(alt) {
            total += 1.0;
        }
    }
    total
}

/// Theorem 2: the mean world under symmetric difference for any model that
/// can report its per-alternative marginals — the set of alternatives with
/// probability strictly greater than ½.
pub fn mean_world_from_marginals(marginals: &HashMap<Alternative, f64>) -> PossibleWorld {
    let chosen: Vec<Alternative> = marginals
        .iter()
        .filter(|(_, p)| **p > 0.5)
        .map(|(a, _)| *a)
        .collect();
    PossibleWorld::new(chosen)
        .expect("two alternatives of one tuple cannot both have probability > 1/2")
}

/// Theorem 2 specialised to an and/xor tree: the mean world under the
/// symmetric-difference distance.
pub fn mean_world(tree: &AndXorTree) -> PossibleWorld {
    mean_world_from_marginals(&tree.alternative_probabilities())
}

/// Corollary 1: for an and/xor tree the median world coincides with the mean
/// world (the majority set of alternatives with probability > ½).
///
/// **Caveat (documented reproduction finding):** the corollary as stated in
/// the paper assumes the majority set is itself a possible world. That holds
/// for BID-style trees (every ∨ node can yield "nothing"), but a tree whose
/// root ∨ node has total probability exactly 1 — such as the Figure 1(iii)
/// construction — has no empty world, so when *no* alternative exceeds ½ the
/// returned set (∅) is a strict lower bound rather than an attainable median.
/// Use [`median_world_from_worldset`] (enumeration) when an exact median over
/// the possible worlds is required for such trees.
pub fn median_world(tree: &AndXorTree) -> PossibleWorld {
    mean_world(tree)
}

/// The expected symmetric-difference distance of a candidate against an
/// and/xor tree, using the closed form of Theorem 2.
pub fn expected_distance(tree: &AndXorTree, candidate: &PossibleWorld) -> f64 {
    expected_symmetric_difference(candidate, &tree.alternative_probabilities())
}

/// Median world for an *explicitly enumerated* distribution (arbitrary
/// correlations): the possible world minimising the expected symmetric
/// difference, found by scanning the support and scoring each candidate with
/// the closed form. This is the problem shown NP-hard in §4.1 when the
/// distribution is given implicitly; with the worlds listed explicitly it is
/// linear in the support size.
pub fn median_world_from_worldset(worlds: &WorldSet) -> (PossibleWorld, f64) {
    let mut marginals: HashMap<Alternative, f64> = HashMap::new();
    for (w, p) in worlds.worlds() {
        for alt in w.alternatives() {
            *marginals.entry(*alt).or_insert(0.0) += p;
        }
    }
    let entries = sorted_marginals(&marginals);
    let mut best: Option<(PossibleWorld, f64)> = None;
    for (w, p) in worlds.worlds() {
        if *p <= 0.0 {
            continue;
        }
        let cost = expected_symmetric_difference_sorted(w, &entries, &marginals);
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            best = Some((w.clone(), cost));
        }
    }
    best.expect("world set must be non-empty")
}

/// Convenience: mean world for any [`WorldModel`] by enumerating its worlds
/// to obtain marginals. Exponential; intended for small models and tests.
pub fn mean_world_enumerated<M: WorldModel>(model: &M) -> PossibleWorld {
    let ws = model.enumerate_worlds();
    let mut marginals: HashMap<Alternative, f64> = HashMap::new();
    for (w, p) in ws.worlds() {
        for alt in w.alternatives() {
            *marginals.entry(*alt).or_insert(0.0) += p;
        }
    }
    mean_world_from_marginals(&marginals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cpdb_andxor::convert::from_bid;
    use cpdb_andxor::figure1::{figure1_bid, figure1_correlated_tree};
    use cpdb_andxor::AndXorTreeBuilder;
    use cpdb_model::TupleIndependentDb;

    #[test]
    fn theorem2_matches_brute_force_on_independent_tuples() {
        let db = TupleIndependentDb::from_triples(&[
            (1, 1.0, 0.9),
            (2, 2.0, 0.55),
            (3, 3.0, 0.5),
            (4, 4.0, 0.1),
        ])
        .unwrap();
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        let mean = mean_world(&tree);
        assert!(mean.contains(&Alternative::new(1, 1.0)));
        assert!(mean.contains(&Alternative::new(2, 2.0)));
        assert!(!mean.contains(&Alternative::new(3, 3.0))); // exactly 0.5 is excluded
        assert!(!mean.contains(&Alternative::new(4, 4.0)));

        let ws = db.enumerate_worlds();
        let (brute, brute_cost) =
            oracle::brute_force_mean_world(&ws, |a, b| a.symmetric_difference(b) as f64);
        let closed_cost = expected_distance(&tree, &mean);
        assert!((closed_cost - brute_cost).abs() < 1e-9);
        // The brute-force optimum has the same cost (it may differ on the
        // probability-exactly-½ tuple, which is cost-neutral).
        assert!(
            (oracle::expected_world_distance(&brute, &ws, |a, b| a.symmetric_difference(b) as f64)
                - closed_cost)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn theorem2_matches_brute_force_on_figure1_bid() {
        let tree = from_bid(&figure1_bid()).unwrap();
        let mean = mean_world(&tree);
        let ws = tree.enumerate_worlds();
        let (_, brute_cost) =
            oracle::brute_force_mean_world(&ws, |a, b| a.symmetric_difference(b) as f64);
        assert!((expected_distance(&tree, &mean) - brute_cost).abs() < 1e-9);
        // Only (t3, 9) has marginal probability > 1/2 in Figure 1(i).
        assert_eq!(mean.alternatives(), &[Alternative::new(3, 9.0)]);
    }

    #[test]
    fn corollary1_median_equals_mean_and_is_possible_for_andxor() {
        // A tree with coexistence correlations: the majority set must still be
        // a possible world.
        let mut b = AndXorTreeBuilder::new();
        let l1 = b.leaf_parts(1, 1.0);
        let l2 = b.leaf_parts(2, 2.0);
        let pair = b.and_node(vec![l1, l2]);
        let l3 = b.leaf_parts(3, 3.0);
        let x1 = b.xor_node(vec![(pair, 0.8)]);
        let x2 = b.xor_node(vec![(l3, 0.4)]);
        let root = b.and_node(vec![x1, x2]);
        let tree = b.build(root).unwrap();

        let median = median_world(&tree);
        let ws = tree.enumerate_worlds();
        assert!(
            ws.worlds().iter().any(|(w, p)| *p > 0.0 && *w == median),
            "median {median} must be a possible world"
        );
        let (brute, brute_cost) =
            oracle::brute_force_median_world(&ws, |a, b| a.symmetric_difference(b) as f64);
        assert!(
            (expected_distance(&tree, &median) - brute_cost).abs() < 1e-9,
            "median {median} vs brute {brute}"
        );
    }

    #[test]
    fn corollary1_on_figure1_correlated_tree() {
        let tree = figure1_correlated_tree();
        let median = median_world(&tree);
        let ws = tree.enumerate_worlds();
        let (_, brute_cost) =
            oracle::brute_force_median_world(&ws, |a, b| a.symmetric_difference(b) as f64);
        // No alternative has probability > 1/2 in Figure 1(iii) (max is 0.4),
        // so the mean world is empty...
        assert!(median.is_empty());
        // ...and the brute-force median over possible worlds has expected
        // distance at least the mean world's (the mean is a lower bound over
        // all worlds).
        assert!(expected_distance(&tree, &median) <= brute_cost + 1e-9);
    }

    #[test]
    fn median_from_worldset_solves_hardness_gadget() {
        use cpdb_model::hardness::{Clause, HardnessGadget, Literal, Max2SatInstance};
        let inst = Max2SatInstance::new(
            3,
            vec![
                Clause::new(Literal::pos(0), Literal::neg(1)),
                Clause::new(Literal::pos(1), Literal::pos(2)),
                Clause::new(Literal::neg(0), Literal::neg(2)),
                Clause::new(Literal::pos(0), Literal::pos(2)),
            ],
        )
        .unwrap();
        let (optimum, _) = inst.brute_force_optimum();
        let gadget = HardnessGadget::build(inst).unwrap();
        // Build the distribution over query answers as explicit worlds keyed
        // by clause index.
        let s_worlds = gadget.s_relation.enumerate_worlds();
        let answers: Vec<(PossibleWorld, f64)> = s_worlds
            .worlds()
            .iter()
            .map(|(w, p)| {
                let ans = gadget.query_answer(w);
                let alts: Vec<Alternative> = ans
                    .rows()
                    .iter()
                    .map(|row| Alternative::new(row[0] as u64, 1.0))
                    .collect();
                (PossibleWorld::new(alts).unwrap(), *p)
            })
            .collect();
        let answer_set = WorldSet::new_unchecked(answers).normalize();
        let (median, _) = median_world_from_worldset(&answer_set);
        // Every result tuple has probability 3/4 > 1/2, so the median answer
        // is the possible answer with the most tuples — the MAX-2-SAT optimum.
        assert_eq!(median.len(), optimum);
    }

    #[test]
    fn expected_symmetric_difference_counts_never_occurring_alternatives() {
        let marginals: HashMap<Alternative, f64> =
            [(Alternative::new(1, 1.0), 0.7)].into_iter().collect();
        let candidate =
            PossibleWorld::new(vec![Alternative::new(1, 1.0), Alternative::new(9, 9.0)]).unwrap();
        let d = expected_symmetric_difference(&candidate, &marginals);
        assert!((d - (0.3 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn mean_world_enumerated_agrees_with_closed_form() {
        let db = TupleIndependentDb::from_triples(&[(1, 1.0, 0.8), (2, 2.0, 0.3)]).unwrap();
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        assert_eq!(mean_world_enumerated(&db), mean_world(&tree));
    }
}
