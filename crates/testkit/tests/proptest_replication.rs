//! Property-based replication conformance: on randomly generated and/xor
//! trees, a seeded random delta sequence shipped to a follower under a
//! random single-fault schedule must leave the follower bit-identical to
//! the never-faulted primary at every verified epoch, via
//! [`cpdb_testkit::replication::check_replication_recovery`].

use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
use cpdb_testkit::replication::check_replication_recovery;
use proptest::prelude::*;

/// Strategy: a random two-level and/xor tree — a root ∧ node over blocks,
/// where each block is an ∨ node over either plain leaves or small ∧
/// bundles (the family the live-update proptest sweeps).
fn random_tree() -> impl Strategy<Value = AndXorTree> {
    prop::collection::vec(
        prop::collection::vec((1usize..=2, 0.05f64..1.0, 0usize..6), 1..3),
        1..4,
    )
    .prop_map(|blocks| {
        let mut b = AndXorTreeBuilder::new();
        let mut key = 0u64;
        let mut xors = Vec::new();
        for block in &blocks {
            let total: f64 = block.iter().map(|(_, w, _)| *w).sum::<f64>() * 1.25;
            let mut edges = Vec::new();
            for (bundle, w, score_bucket) in block {
                let leaves: Vec<_> = (0..*bundle)
                    .map(|_| {
                        key += 1;
                        b.leaf_parts(key, *score_bucket as f64)
                    })
                    .collect();
                let node = if leaves.len() == 1 {
                    leaves[0]
                } else {
                    b.and_node(leaves)
                };
                edges.push((node, w / total));
            }
            xors.push(b.xor_node(edges));
        }
        let root = b.and_node(xors);
        b.build(root)
            .expect("construction keeps keys disjoint and mass ≤ 1")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random trees × random delta sequences × random fault schedules:
    /// the follower never serves an unverified epoch, recovers once the
    /// outage ends, and converges bit-identically on the primary.
    #[test]
    fn replication_recovers_on_random_trees(
        tree in random_tree(),
        seed in 0u64..1024,
        schedule in 0u64..4096,
    ) {
        let checks = check_replication_recovery(&tree, seed, schedule);
        prop_assert!(checks > 0, "replication conformance performed no assertions");
    }
}
