//! Repo-wide source invariants, enforced as tests so a drive-by change
//! can't silently weaken them.

use std::path::PathBuf;

fn crates_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("crates")
}

/// Every crate in the workspace must carry `#![forbid(unsafe_code)]` at the
/// top of its library root: the whole reproduction — including the
/// cooperative model-checking scheduler in `cpdb_sync` — is safe Rust, and
/// a new crate must opt in to that standard before it can land.
#[test]
fn every_crate_forbids_unsafe_code() {
    let mut roots: Vec<PathBuf> = std::fs::read_dir(crates_dir())
        .expect("workspace crates directory exists")
        .filter_map(|entry| {
            let lib = entry.expect("readable dir entry").path().join("src/lib.rs");
            lib.exists().then_some(lib)
        })
        .collect();
    roots.sort();
    assert!(
        roots.len() >= 17,
        "expected the full workspace, found only {} crate roots",
        roots.len()
    );
    let mut missing = Vec::new();
    for lib in &roots {
        let src = std::fs::read_to_string(lib).expect("crate root is readable");
        if !src.contains("#![forbid(unsafe_code)]") {
            missing.push(lib.display().to_string());
        }
    }
    assert!(
        missing.is_empty(),
        "crate roots without #![forbid(unsafe_code)]: {missing:?}"
    );
}

/// The panic-freedom burn-down of the storage and serving layers is gated
/// by clippy lints; this pin keeps the gates themselves from regressing.
#[test]
fn store_and_live_keep_their_unwrap_gates() {
    for crate_name in ["store", "live", "replica", "obs"] {
        let lib = crates_dir().join(crate_name).join("src/lib.rs");
        let src = std::fs::read_to_string(&lib).expect("crate root is readable");
        assert!(
            src.contains("deny(clippy::unwrap_used, clippy::expect_used)"),
            "{} lost its unwrap/expect lint gate",
            lib.display()
        );
    }
}
