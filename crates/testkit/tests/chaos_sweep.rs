//! The chaos suite: seeded single-fault schedules swept over every I/O
//! call site of a durable live engine (see [`cpdb_testkit::chaos`]).
//!
//! Each schedule replays an identical recorded workload with one fault
//! armed — a transient `EINTR`, a persistent `ENOSPC`, a torn write, or a
//! power cut — at one operation index, and asserts that no corrupt answer
//! is ever served, refused writes touch no disk, recovery resumes exactly
//! where the engine left off, and the completed run is bit-identical to
//! the never-faulted reference.
//!
//! By default the sweep is strided so tier-1 `cargo test` stays fast; the
//! CI chaos job sets `CPDB_CHAOS_FULL=1` to run every operation index of
//! all 16 conformance seeds exhaustively.

use cpdb_testkit::chaos::check_fault_sweep;
use cpdb_testkit::fixtures;

fn full_sweep() -> bool {
    std::env::var("CPDB_CHAOS_FULL").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn fault_sweep_over_conformance_seeds() {
    let (seeds, stride) = if full_sweep() { (0..16, 1) } else { (0..2, 3) };
    let mut total_checks = 0;
    for seed in seeds {
        let mut checks = 0;
        checks += check_fault_sweep(&fixtures::small_bid_tree(seed), seed, stride);
        checks += check_fault_sweep(&fixtures::small_tuple_independent_tree(seed), seed, stride);
        assert!(
            checks >= 100,
            "seed {seed} performed only {checks} chaos checks — a sweep degenerated"
        );
        total_checks += checks;
    }
    assert!(
        total_checks >= 200,
        "chaos sweep shrank to {total_checks} total checks"
    );
}
