//! Property-based conformance for the live-update subsystem: on randomly
//! generated and/xor trees (nested ∧ bundles, multi-alternative blocks,
//! sub-unit block masses, score collisions), a seeded random delta sequence
//! applied through `cpdb_live::LiveEngine` must leave every epoch's answers
//! bit-identical to a from-scratch engine on the mutated tree, via
//! [`cpdb_testkit::conformance::check_live_updates`].

use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
use cpdb_testkit::conformance::check_live_updates;
use proptest::prelude::*;

/// Strategy: a random two-level and/xor tree — a root ∧ node over blocks,
/// where each block is an ∨ node over either plain leaves or small ∧ bundles
/// of leaves (the same family the batch-genfunc proptest sweeps), plus a
/// seed for the delta sequence.
fn random_tree() -> impl Strategy<Value = AndXorTree> {
    prop::collection::vec(
        prop::collection::vec((1usize..=2, 0.05f64..1.0, 0usize..6), 1..3),
        1..4,
    )
    .prop_map(|blocks| {
        let mut b = AndXorTreeBuilder::new();
        let mut key = 0u64;
        let mut xors = Vec::new();
        for block in &blocks {
            let total: f64 = block.iter().map(|(_, w, _)| *w).sum::<f64>() * 1.25;
            let mut edges = Vec::new();
            for (bundle, w, score_bucket) in block {
                let leaves: Vec<_> = (0..*bundle)
                    .map(|_| {
                        key += 1;
                        b.leaf_parts(key, *score_bucket as f64)
                    })
                    .collect();
                let node = if leaves.len() == 1 {
                    leaves[0]
                } else {
                    b.and_node(leaves)
                };
                edges.push((node, w / total));
            }
            xors.push(b.xor_node(edges));
        }
        let root = b.and_node(xors);
        b.build(root)
            .expect("construction keeps keys disjoint and mass ≤ 1")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Live epochs stay bit-identical to from-scratch engines across random
    /// trees × random delta sequences (all five delta kinds), and the
    /// single-∨ probability update keeps/patches artifacts selectively.
    #[test]
    fn live_updates_conform_on_random_trees(tree in random_tree(), seed in 0u64..1024) {
        let checks = check_live_updates(&tree, seed);
        prop_assert!(checks > 0, "conformance performed no assertions");
    }
}
