//! Property-based crash-recovery conformance for the persistence subsystem:
//! on randomly generated and/xor trees (the same family the live-update
//! proptest sweeps), a durable `cpdb_live::LiveEngine` absorbs a seeded
//! random delta sequence, and the write-ahead log is then truncated at
//! **every byte boundary of the final record** — simulating a crash at each
//! instant of the final append. Every crash point must recover to a valid
//! epoch whose answers are bit-identical to the engine that wrote the store
//! and to a from-scratch engine on the same tree, via
//! [`cpdb_testkit::conformance::check_crash_recovery`].
//!
//! A second property extends the sweep to **random fault schedules**: the
//! same random trees × random delta sequences, but with a randomly drawn
//! single-fault schedule (operation index × fault mode — transient,
//! persistent `ENOSPC`, torn write, or power cut) injected through the
//! store's [`cpdb_store::FaultVfs`], via
//! [`cpdb_testkit::chaos::check_fault_recovery`]: degraded engines must
//! keep serving the pre-fault epoch and recovery must land bit-identical
//! to the never-faulted reference run.

use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
use cpdb_testkit::chaos::check_fault_recovery;
use cpdb_testkit::conformance::check_crash_recovery;
use proptest::prelude::*;

/// Strategy: a random two-level and/xor tree — a root ∧ node over blocks,
/// where each block is an ∨ node over either plain leaves or small ∧ bundles
/// of leaves — plus a seed for the delta sequence.
fn random_tree() -> impl Strategy<Value = AndXorTree> {
    prop::collection::vec(
        prop::collection::vec((1usize..=2, 0.05f64..1.0, 0usize..6), 1..3),
        1..4,
    )
    .prop_map(|blocks| {
        let mut b = AndXorTreeBuilder::new();
        let mut key = 0u64;
        let mut xors = Vec::new();
        for block in &blocks {
            let total: f64 = block.iter().map(|(_, w, _)| *w).sum::<f64>() * 1.25;
            let mut edges = Vec::new();
            for (bundle, w, score_bucket) in block {
                let leaves: Vec<_> = (0..*bundle)
                    .map(|_| {
                        key += 1;
                        b.leaf_parts(key, *score_bucket as f64)
                    })
                    .collect();
                let node = if leaves.len() == 1 {
                    leaves[0]
                } else {
                    b.and_node(leaves)
                };
                edges.push((node, w / total));
            }
            xors.push(b.xor_node(edges));
        }
        let root = b.and_node(xors);
        b.build(root)
            .expect("construction keeps keys disjoint and mass ≤ 1")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every crash point inside the final WAL record of a random delta
    /// sequence recovers to the last acknowledged epoch, bit-identical to
    /// from-scratch engines.
    #[test]
    fn crash_recovery_conforms_on_random_trees(tree in random_tree(), seed in 0u64..1024) {
        let checks = check_crash_recovery(&tree, seed);
        prop_assert!(checks > 2, "crash sweep performed no cut assertions");
    }

    /// A randomly drawn single-fault schedule (operation index × mode) on
    /// a random tree and delta sequence: the engine degrades cleanly,
    /// keeps serving the pre-fault epoch, and recovers bit-identical to
    /// the never-faulted reference run.
    #[test]
    fn fault_recovery_conforms_on_random_trees(
        tree in random_tree(),
        seed in 0u64..1024,
        schedule in 0u64..4096,
    ) {
        let checks = check_fault_recovery(&tree, seed, schedule);
        prop_assert!(checks > 3, "fault schedule performed no assertions");
    }
}
