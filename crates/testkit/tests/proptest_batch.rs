//! Property-based conformance for the batch generating-function evaluator:
//! on randomly generated and/xor trees (exercising nested ∧ bundles under ∨
//! choices, multi-alternative blocks, and sub-unit block masses), the batch
//! paths must agree with the per-tuple reference functions within `1e-12`
//! and with the brute-force possible-worlds oracle via
//! [`cpdb_testkit::conformance::check_batch_genfunc`].

use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
use cpdb_testkit::conformance::check_batch_genfunc;
use proptest::prelude::*;

/// Strategy: a random two-level and/xor tree — a root ∧ node over blocks,
/// where each block is an ∨ node over either plain leaves or small ∧ bundles
/// of leaves, with scores drawn so that some collide across keys (equal-score
/// tie-breaks are exercised too).
fn random_tree() -> impl Strategy<Value = AndXorTree> {
    prop::collection::vec(
        prop::collection::vec((1usize..=2, 0.05f64..1.0, 0usize..6), 1..3),
        1..5,
    )
    .prop_map(|blocks| {
        let mut b = AndXorTreeBuilder::new();
        let mut key = 0u64;
        let mut xors = Vec::new();
        for block in &blocks {
            let total: f64 = block.iter().map(|(_, w, _)| *w).sum::<f64>() * 1.25;
            let mut edges = Vec::new();
            for (bundle, w, score_bucket) in block {
                let leaves: Vec<_> = (0..*bundle)
                    .map(|_| {
                        key += 1;
                        // A small score alphabet forces cross-key score
                        // collisions, exercising the key tie-break.
                        b.leaf_parts(key, *score_bucket as f64)
                    })
                    .collect();
                let node = if leaves.len() == 1 {
                    leaves[0]
                } else {
                    b.and_node(leaves)
                };
                edges.push((node, w / total));
            }
            xors.push(b.xor_node(edges));
        }
        let root = b.and_node(xors);
        b.build(root)
            .expect("construction keeps keys disjoint and mass ≤ 1")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch rank PMFs, pairwise order, and co-clustering weights match the
    /// per-tuple paths, the worlds oracle, and thread-count bit-identity on
    /// random trees.
    #[test]
    fn batch_genfunc_conforms_on_random_trees(tree in random_tree()) {
        let checks = check_batch_genfunc(&tree);
        prop_assert!(checks > 0, "conformance performed no assertions");
    }
}
