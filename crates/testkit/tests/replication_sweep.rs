//! The replication chaos suite: seeded single-fault schedules swept over
//! every I/O call site of a read replica's ship-fetch-verify-replay
//! pipeline, plus primary power cuts at every operation of a final ship
//! followed by follower promotion (see [`cpdb_testkit::replication`]).
//!
//! Each schedule replays an identical recorded primary/follower workload
//! with one fault armed — a transient `EINTR`, a persistent `ENOSPC`, a
//! torn write, or a power cut — on the follower's filesystem, and asserts
//! that the follower never serves an unverified epoch, recovers to the
//! shipped epoch once the outage ends, and passes the full divergence
//! check against the primary. The promotion sweep power-cuts the primary
//! mid-ship and asserts the promoted writer matches the never-faulted
//! reference while the revived old primary is fenced.
//!
//! By default the sweep is strided so tier-1 `cargo test` stays fast; the
//! CI chaos job sets `CPDB_CHAOS_FULL=1` to run every operation index of
//! all 16 conformance seeds exhaustively.

use cpdb_testkit::fixtures;
use cpdb_testkit::replication::{check_promotion_sweep, check_replication_sweep};

fn full_sweep() -> bool {
    std::env::var("CPDB_CHAOS_FULL").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn replication_fault_sweep_over_conformance_seeds() {
    let (seeds, stride) = if full_sweep() { (0..16, 1) } else { (0..2, 17) };
    let mut total_checks = 0;
    for seed in seeds {
        let mut checks = 0;
        checks += check_replication_sweep(&fixtures::small_bid_tree(seed), seed, stride);
        checks +=
            check_replication_sweep(&fixtures::small_tuple_independent_tree(seed), seed, stride);
        assert!(
            checks >= 100,
            "seed {seed} performed only {checks} replication chaos checks — a sweep degenerated"
        );
        total_checks += checks;
    }
    assert!(
        total_checks >= 200,
        "replication chaos sweep shrank to {total_checks} total checks"
    );
}

#[test]
fn promotion_sweep_over_conformance_seeds() {
    let (seeds, stride) = if full_sweep() { (0..16, 1) } else { (0..2, 5) };
    let mut total_checks = 0;
    for seed in seeds {
        let checks = check_promotion_sweep(&fixtures::small_bid_tree(seed), seed, stride);
        assert!(
            checks >= 10,
            "seed {seed} performed only {checks} promotion checks — the sweep degenerated"
        );
        total_checks += checks;
    }
    assert!(
        total_checks >= 20,
        "promotion sweep shrank to {total_checks} total checks"
    );
}
