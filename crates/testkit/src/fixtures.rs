//! Deterministic small-instance fixtures for oracle conformance tests.
//!
//! Every fixture is a pure function of its `seed`, built on the
//! [`cpdb_workloads`] generators, with sizes chosen so that the brute-force
//! oracles in [`cpdb_consensus::oracle`] (possible-world enumeration,
//! ordered Top-k candidate enumeration, set-partition enumeration) remain
//! comfortably cheap. Varying the seed varies both the drawn probabilities
//! *and* the instance shape, so a seed sweep covers a spread of sizes.

use cpdb_andxor::AndXorTree;
use cpdb_consensus::aggregate::GroupByInstance;
use cpdb_model::{BidDb, TupleIndependentDb};
use cpdb_workloads::distributions::{ProbabilityDistribution, ScoreDistribution};
use cpdb_workloads::generators::{
    random_bid_db, random_clustering_tree, random_groupby_instance, random_tuple_independent,
    BidConfig, ClusteringConfig, GroupByConfig, TupleIndependentConfig,
};

/// A small tuple-independent relation: 4–7 tuples, probabilities bounded
/// away from 0 and 1, distinct scores in `[0, 100)`.
pub fn small_tuple_independent(seed: u64) -> TupleIndependentDb {
    random_tuple_independent(&TupleIndependentConfig {
        num_tuples: 4 + (seed % 4) as usize,
        probabilities: ProbabilityDistribution::Uniform { lo: 0.05, hi: 0.95 },
        scores: ScoreDistribution::Uniform { lo: 0.0, hi: 100.0 },
        seed,
    })
}

/// A small BID relation: 2–4 blocks of 1–2 alternatives, with a substantial
/// fraction of "maybe" blocks so short worlds occur.
pub fn small_bid(seed: u64) -> BidDb {
    random_bid_db(&BidConfig {
        num_blocks: 2 + (seed % 3) as usize,
        alternatives_per_block: 1 + (seed % 2) as usize,
        maybe_fraction: 0.4,
        scores: ScoreDistribution::Uniform { lo: 0.0, hi: 100.0 },
        seed,
    })
}

/// The and/xor tree of [`small_bid`].
pub fn small_bid_tree(seed: u64) -> AndXorTree {
    cpdb_andxor::convert::from_bid(&small_bid(seed))
        .expect("generated BID relations satisfy the tree constraints")
}

/// The and/xor tree of [`small_tuple_independent`].
pub fn small_tuple_independent_tree(seed: u64) -> AndXorTree {
    cpdb_andxor::convert::from_tuple_independent(&small_tuple_independent(seed))
        .expect("tuple-independent relations always convert")
}

/// A small group-by count instance: 5–7 tuples over 2–3 groups, skewed.
pub fn small_groupby(seed: u64) -> GroupByInstance {
    let probs = random_groupby_instance(&GroupByConfig {
        num_tuples: 5 + (seed % 3) as usize,
        num_groups: 2 + (seed % 2) as usize,
        skew: 0.5 + (seed % 3) as f64 * 0.5,
        seed,
    });
    GroupByInstance::new(probs).expect("generated rows are normalised distributions")
}

/// A small clustering instance: 5–7 tuples over 2–3 latent values, with
/// absence, well inside the 10-key brute-force partition limit.
pub fn small_clustering_tree(seed: u64) -> AndXorTree {
    random_clustering_tree(&ClusteringConfig {
        num_tuples: 5 + (seed % 3) as usize,
        num_values: 2 + (seed % 2) as usize,
        cohesion: 0.55 + (seed % 4) as f64 * 0.1,
        absence: 0.15,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_model::WorldModel;

    #[test]
    fn fixtures_are_deterministic_per_seed() {
        for seed in 0..6 {
            assert_eq!(small_tuple_independent(seed), small_tuple_independent(seed));
            assert_eq!(small_bid(seed), small_bid(seed));
            assert_eq!(
                small_groupby(seed).probabilities(),
                small_groupby(seed).probabilities()
            );
        }
    }

    #[test]
    fn fixtures_stay_within_oracle_budgets() {
        for seed in 0..12 {
            assert!(small_tuple_independent(seed).len() <= 7);
            let bid_tree = small_bid_tree(seed);
            assert!(bid_tree.keys().len() <= 4);
            assert!(bid_tree.enumerate_worlds().len() <= 81);
            assert!(small_groupby(seed).num_tuples() <= 7);
            assert!(small_clustering_tree(seed).keys().len() <= 7);
        }
    }

    #[test]
    fn fixtures_vary_across_seeds() {
        assert_ne!(small_tuple_independent(1), small_tuple_independent(2));
        assert_ne!(
            small_groupby(1).probabilities(),
            small_groupby(2).probabilities()
        );
    }
}
