//! The oracle conformance runner.
//!
//! Each `check_*` function pits one consensus algorithm against its
//! brute-force definition on a small instance and panics with a labelled
//! message on divergence. Exact algorithms (Theorems 2–5, Lemmas 1–2) must
//! match the enumerated optimum to [`crate::TOL`]; approximation algorithms
//! (Υ_H, Kendall pivot/footrule, KwikCluster, the aggregate 4-approximation)
//! must respect their proven factor and never beat the enumerated optimum.
//! Every function returns the number of assertions it performed so suites
//! can report coverage.

use crate::fixtures;
use crate::TOL;
use cpdb_andxor::AndXorTree;
use cpdb_consensus::aggregate::GroupByInstance;
use cpdb_consensus::topk::{footrule, intersection, kendall, median_dp, sym_diff};
use cpdb_consensus::{baselines, clustering, jaccard, oracle, set_distance, TopKContext};
use cpdb_engine::{
    BaselineKind, ConsensusEngineBuilder, IntersectionStrategy, KendallStrategy, Query, SetMetric,
    TopKMetric, Variant,
};
use cpdb_model::{PossibleWorld, TupleIndependentDb, WorldModel};
use cpdb_rankagg::metrics::{footrule_distance, intersection_metric, kendall_tau_topk};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts `got ≈ oracle` to [`TOL`] with a labelled failure message.
fn assert_close(label: &str, got: f64, want: f64) {
    assert!(
        (got - want).abs() < TOL,
        "{label}: algorithm returned {got}, oracle computed {want} (|Δ| = {})",
        (got - want).abs()
    );
}

/// Asserts an approximation lies in `[opt − TOL, factor·opt + slack]`.
fn assert_within_factor(label: &str, cost: f64, opt: f64, factor: f64) {
    assert!(
        cost + TOL >= opt,
        "{label}: approximation cost {cost} beats the enumerated optimum {opt}"
    );
    assert!(
        cost <= factor * opt + 1e-6,
        "{label}: approximation cost {cost} exceeds {factor}× optimum {opt}"
    );
}

fn sym_diff_world(a: &PossibleWorld, b: &PossibleWorld) -> f64 {
    a.symmetric_difference(b) as f64
}

/// Theorem 2 / Corollary 1: the closed-form mean world under symmetric
/// difference matches enumeration and is the enumerated optimum; for and/xor
/// trees whose majority set is possible, it is also the median world.
pub fn check_set_consensus(tree: &AndXorTree) -> usize {
    let ws = tree.enumerate_worlds();
    let mean = set_distance::mean_world(tree);
    let closed = set_distance::expected_distance(tree, &mean);
    let direct = oracle::expected_world_distance(&mean, &ws, sym_diff_world);
    assert_close("set/sym-diff closed-form expected distance", closed, direct);

    let (_, brute_mean) = oracle::brute_force_mean_world(&ws, sym_diff_world);
    assert_close("set/sym-diff mean-world optimality", closed, brute_mean);

    let median = set_distance::median_world(tree);
    assert!(
        ws.worlds().iter().any(|(w, p)| *p > 0.0 && *w == median),
        "set/sym-diff median world {median} is not a possible world of the fixture"
    );
    let (_, brute_median) = oracle::brute_force_median_world(&ws, sym_diff_world);
    assert_close(
        "set/sym-diff median-world optimality (Corollary 1)",
        set_distance::expected_distance(tree, &median),
        brute_median,
    );
    4
}

/// Lemmas 1–2: the generating-function Jaccard expectation is exact for
/// arbitrary candidates, and the prefix-scan mean world is the enumerated
/// optimum.
pub fn check_jaccard(db: &TupleIndependentDb) -> usize {
    let tree = cpdb_andxor::convert::from_tuple_independent(db)
        .expect("tuple-independent relations always convert");
    let ws = db.enumerate_worlds();
    let n = db.len();
    let mut checks = 0;

    // Candidate worlds: empty, full, alternating, and a hash-spread subset.
    let masks = [0u64, (1 << n) - 1, 0x5555_5555 & ((1 << n) - 1), {
        let h = (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h & ((1 << n) - 1)
    }];
    for mask in masks {
        let chosen: Vec<_> = db
            .tuples()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, (a, _))| *a)
            .collect();
        let candidate = PossibleWorld::new(chosen).expect("distinct keys by construction");
        let exact = jaccard::expected_jaccard_distance(&tree, &candidate);
        let brute = oracle::expected_world_distance(&candidate, &ws, |a, b| a.jaccard_distance(b));
        assert_close("jaccard expectation (Lemma 1)", exact, brute);
        checks += 1;
    }

    let consensus = jaccard::mean_world_tuple_independent(db);
    let (_, brute) = oracle::brute_force_mean_world(&ws, |a, b| a.jaccard_distance(b));
    assert_close(
        "jaccard mean-world optimality (Lemma 2)",
        consensus.expected_distance,
        brute,
    );
    checks + 1
}

/// Theorem 3 / §5.3 / §5.4: the mean Top-k answers under symmetric
/// difference, the intersection metric, and the footrule metric all match
/// their closed-form expected distances and the enumerated optima; the Υ_H
/// heuristic respects its `1/H_k` guarantee.
pub fn check_topk_means(tree: &AndXorTree, k: usize) -> usize {
    let ws = tree.enumerate_worlds();
    let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
    let k = k.min(items.len());
    if k == 0 {
        return 0;
    }
    let ctx = TopKContext::new(tree, k);

    let mean = sym_diff::mean_topk_sym_diff(&ctx);
    let closed = sym_diff::expected_sym_diff_distance(&ctx, &mean);
    let fixed_k = |a: &_, b: &_| oracle::sym_diff_distance_fixed_k(k, a, b);
    let direct = oracle::expected_topk_distance(&mean, &ws, k, fixed_k);
    assert_close(
        "topk/sym-diff closed-form expected distance",
        closed,
        direct,
    );
    let (_, brute) = oracle::brute_force_mean_topk(&items, k, &ws, fixed_k);
    assert_close("topk/sym-diff mean optimality (Theorem 3)", closed, brute);

    let mean = intersection::mean_topk_intersection(&ctx);
    let closed = intersection::expected_intersection_distance(&ctx, &mean);
    let direct = oracle::expected_topk_distance(&mean, &ws, k, intersection_metric);
    assert_close(
        "topk/intersection closed-form expected distance",
        closed,
        direct,
    );
    let (_, brute) = oracle::brute_force_mean_topk(&items, k, &ws, intersection_metric);
    assert_close("topk/intersection mean optimality (§5.3)", closed, brute);

    let upsilon = intersection::mean_topk_upsilon_h(&ctx);
    let a_opt = intersection::objective_a(&ctx, &mean);
    let a_ups = intersection::objective_a(&ctx, &upsilon);
    assert!(
        a_ups + TOL >= a_opt / intersection::harmonic(k) && a_ups <= a_opt + TOL,
        "topk/intersection Υ_H objective {a_ups} violates [opt/H_k, opt] = [{}, {a_opt}]",
        a_opt / intersection::harmonic(k)
    );

    let mean = footrule::mean_topk_footrule(&ctx);
    let closed = footrule::expected_footrule_distance(&ctx, &mean);
    let direct = oracle::expected_topk_distance(&mean, &ws, k, footrule_distance);
    assert_close(
        "topk/footrule closed-form expected distance",
        closed,
        direct,
    );
    let (_, brute) = oracle::brute_force_mean_topk(&items, k, &ws, footrule_distance);
    assert_close("topk/footrule mean optimality (§5.4)", closed, brute);
    7
}

/// Theorem 4: the median-Top-k dynamic program under symmetric difference
/// reports an exact expected distance and attains the enumerated median
/// optimum.
pub fn check_topk_median_dp(tree: &AndXorTree, k: usize) -> usize {
    let ws = tree.enumerate_worlds();
    let k = k.min(tree.keys().len());
    if k == 0 {
        return 0;
    }
    let ctx = TopKContext::new(tree, k);
    let median = median_dp::median_topk_sym_diff(tree, &ctx);
    let fixed_k = |a: &_, b: &_| oracle::sym_diff_distance_fixed_k(k, a, b);
    let direct = oracle::expected_topk_distance(&median.answer, &ws, k, fixed_k);
    assert_close(
        "topk/median-dp closed-form expected distance",
        median.expected_distance,
        direct,
    );
    let (_, brute) = oracle::brute_force_median_topk(&ws, k, fixed_k);
    assert_close(
        "topk/median-dp optimality (Theorem 4)",
        median.expected_distance,
        brute,
    );
    2
}

/// §5.5: the Kendall consensus heuristics never beat the enumerated optimum
/// and stay within their factor-2 guarantee (footrule proxy by Diaconis–
/// Graham / Fagin et al.; pivot by the KwikSort expectation, taken best-of).
pub fn check_kendall(tree: &AndXorTree, k: usize, seed: u64) -> usize {
    let ws = tree.enumerate_worlds();
    let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
    let k = k.min(items.len());
    if k == 0 {
        return 0;
    }
    let ctx = TopKContext::new(tree, k);
    let (_, opt) = oracle::brute_force_mean_topk(&items, k, &ws, kendall_tau_topk);

    let via_footrule = kendall::mean_topk_kendall_via_footrule(&ctx);
    let cost_footrule = kendall::expected_kendall_distance_enumerated(tree, &ctx, &via_footrule);
    // The enumerated-expectation helper must agree with the generic oracle.
    assert_close(
        "topk/kendall enumerated expectation helper",
        cost_footrule,
        oracle::expected_topk_distance(&via_footrule, &ws, k, kendall_tau_topk),
    );
    assert_within_factor("topk/kendall via footrule", cost_footrule, opt, 2.0);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE_0FC4);
    let pivot = kendall::mean_topk_kendall_pivot(tree, &ctx, items.len(), 4, &mut rng);
    let cost_pivot = kendall::expected_kendall_distance_enumerated(tree, &ctx, &pivot);
    assert_within_factor("topk/kendall pivot", cost_pivot, opt, 2.0);
    5
}

/// §6.1 (Theorem 5 / Corollary 2): the mean aggregate is the exact
/// expectation, the closed-form expected squared distance matches
/// enumeration, the min-cost-flow answer is the closest *possible* answer,
/// and the flow answer 4-approximates the enumerated median.
pub fn check_aggregate(inst: &GroupByInstance) -> usize {
    let answers = inst.enumerate_answers();
    let total_mass: f64 = answers.iter().map(|(_, p)| *p).sum();
    assert_close("aggregate world-mass normalisation", total_mass, 1.0);

    let m = inst.num_groups();
    let mean = inst.mean_answer();
    for v in 0..m {
        let enumerated: f64 = answers.iter().map(|(c, p)| c[v] as f64 * p).sum();
        assert_close("aggregate mean answer (linearity)", mean[v], enumerated);
    }

    let brute_sq = |candidate: &[f64]| -> f64 {
        answers
            .iter()
            .map(|(c, p)| {
                p * c
                    .iter()
                    .enumerate()
                    .map(|(v, &x)| (candidate[v] - x as f64).powi(2))
                    .sum::<f64>()
            })
            .sum()
    };
    let floor_mean: Vec<f64> = mean.iter().map(|x| x.floor()).collect();
    let zeros = vec![0.0; m];
    let mut checks = 1 + m;
    for candidate in [&mean, &floor_mean, &zeros] {
        assert_close(
            "aggregate closed-form expected squared distance",
            inst.expected_squared_distance(candidate),
            brute_sq(candidate),
        );
        checks += 1;
    }

    let closest = inst
        .closest_possible_answer()
        .expect("flow construction succeeds on valid instances");
    let closest_f: Vec<f64> = closest.counts.iter().map(|&c| c as f64).collect();
    let closest_cost = inst.expected_squared_distance(&closest_f);
    assert!(
        answers
            .iter()
            .any(|(c, p)| *p > 0.0 && *c == closest.counts),
        "aggregate flow answer {:?} is not a possible count vector",
        closest.counts
    );
    let support_opt = answers
        .iter()
        .filter(|(_, p)| *p > 0.0)
        .map(|(c, _)| {
            let cf: Vec<f64> = c.iter().map(|&x| x as f64).collect();
            inst.expected_squared_distance(&cf)
        })
        .fold(f64::INFINITY, f64::min);
    assert_close(
        "aggregate closest-possible-answer optimality (Theorem 5)",
        closest_cost,
        support_opt,
    );

    let (_, median_cost) = inst.median_answer_brute_force();
    assert_within_factor(
        "aggregate median 4-approximation (Corollary 2)",
        closest_cost,
        median_cost,
        4.0,
    );
    checks + 4
}

/// §6.2: the generating-function co-clustering weights match enumeration
/// pair by pair, and best-of KwikCluster stays within its constant factor of
/// the enumerated optimal consensus clustering.
pub fn check_clustering(tree: &AndXorTree, seed: u64) -> usize {
    let ws = tree.enumerate_worlds();
    let weights = clustering::CoClusteringWeights::from_tree(tree);
    let keys = weights.keys().to_vec();
    let mut checks = 0;

    for (idx, &i) in keys.iter().enumerate() {
        for &j in keys.iter().skip(idx + 1) {
            let enumerated: f64 = ws
                .worlds()
                .iter()
                .map(|(w, p)| {
                    let together = match (w.value_of(i), w.value_of(j)) {
                        (Some(a), Some(b)) => a == b,
                        (None, None) => true, // the artificial "absent" cluster
                        _ => false,
                    };
                    if together {
                        *p
                    } else {
                        0.0
                    }
                })
                .sum();
            assert_close(
                "clustering co-occurrence weight w_ij",
                weights.weight(i, j),
                enumerated,
            );
            checks += 1;
        }
    }

    let (_, opt) = clustering::brute_force_clustering(&weights);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC105_7E12);
    let (_, cost) = clustering::pivot_clustering_best_of(&weights, 8, &mut rng);
    assert_within_factor("clustering best-of KwikCluster", cost, opt, 2.0);
    checks + 2
}

/// Batch ↔ per-tuple generating-function equivalence: the single-sweep batch
/// evaluator (`batch_rank_pmfs`, `batch_pairwise_order`,
/// `batch_cocluster_weights`) must agree with the per-tuple reference paths
/// within `1e-12`, with the brute-force possible-worlds oracle within
/// [`TOL`], and must be **bit-identical at any thread count**.
pub fn check_batch_genfunc(tree: &AndXorTree) -> usize {
    const BATCH_TOL: f64 = 1e-12;
    let ws = tree.enumerate_worlds();
    let keys = tree.keys();
    let n = keys.len();
    let mut checks = 0;

    // --- Rank PMFs: batch vs per-tuple vs enumeration, at k = 1 and k = n.
    for k in [1usize, n] {
        let batch = tree.batch_rank_pmfs(k, 1);
        for &key in &keys {
            let per_tuple = tree.rank_pmf(key, k);
            for i in 0..k {
                assert!(
                    (batch[&key][i] - per_tuple[i]).abs() < BATCH_TOL,
                    "batch rank pmf diverges from per-tuple: key {key:?} rank {} ({} vs {})",
                    i + 1,
                    batch[&key][i],
                    per_tuple[i]
                );
                let brute: f64 = ws
                    .worlds()
                    .iter()
                    .filter(|(w, _)| w.rank_of(key) == Some(i + 1))
                    .map(|(_, p)| *p)
                    .sum();
                assert_close("batch rank pmf vs worlds oracle", batch[&key][i], brute);
                checks += 2;
            }
        }
        // Thread-count invariance is bit-exact, not just within tolerance.
        let threaded = tree.batch_rank_pmfs(k, 3);
        for &key in &keys {
            for i in 0..k {
                assert_eq!(
                    batch[&key][i].to_bits(),
                    threaded[&key][i].to_bits(),
                    "batch rank pmf depends on the thread count (key {key:?}, rank {})",
                    i + 1
                );
            }
        }
        checks += 1;
    }

    // --- Pairwise order: batch vs per-pair vs enumeration.
    let batch = tree.batch_pairwise_order(&keys, 1);
    let threaded = tree.batch_pairwise_order(&keys, 3);
    for (x, y) in batch.iter().zip(&threaded) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "batch pairwise order depends on the thread count"
        );
    }
    checks += 1;
    for (i, &a) in keys.iter().enumerate() {
        for (j, &b) in keys.iter().enumerate() {
            if i == j {
                continue;
            }
            let got = batch[i * n + j];
            let per_pair = tree.pairwise_order_probability(a, b);
            assert!(
                (got - per_pair).abs() < BATCH_TOL,
                "batch pairwise order diverges from per-pair: Pr(r({a:?}) < r({b:?})) \
                 {got} vs {per_pair}"
            );
            let brute = ws.expectation(|w| match (w.rank_of(a), w.rank_of(b)) {
                (Some(ra), Some(rb)) => f64::from(ra < rb),
                (Some(_), None) => 1.0,
                _ => 0.0,
            });
            assert_close("batch pairwise order vs worlds oracle", got, brute);
            checks += 2;
        }
    }

    // --- Co-clustering weights: batch vs per-pair reference vs enumeration.
    let batch = clustering::CoClusteringWeights::from_tree_with_parallelism(tree, 1);
    let per_pair = clustering::CoClusteringWeights::from_tree_per_pair(tree);
    let threaded = clustering::CoClusteringWeights::from_tree_with_parallelism(tree, 3);
    for (idx, &i) in keys.iter().enumerate() {
        for &j in keys.iter().skip(idx + 1) {
            assert!(
                (batch.weight(i, j) - per_pair.weight(i, j)).abs() < BATCH_TOL,
                "batch cocluster weight diverges from per-pair: w({i:?},{j:?}) {} vs {}",
                batch.weight(i, j),
                per_pair.weight(i, j)
            );
            assert_eq!(
                batch.weight(i, j).to_bits(),
                threaded.weight(i, j).to_bits(),
                "batch cocluster weight depends on the thread count"
            );
            let brute = ws.expectation(|w| match (w.value_of(i), w.value_of(j)) {
                (Some(a), Some(b)) => f64::from(a == b),
                (None, None) => 1.0,
                _ => 0.0,
            });
            assert_close(
                "batch cocluster weight vs worlds oracle",
                batch.weight(i, j),
                brute,
            );
            checks += 3;
        }
    }
    checks
}

/// Engine ↔ direct equivalence: every [`Query`] variant executed through a
/// [`cpdb_engine::ConsensusEngine`] must return **bit-identical** results to
/// the free functions it unifies (replaying the engine's per-query RNG stream
/// for the randomised paths), and the exact answers must still attain the
/// enumerated oracle optimum. Exercises `run_batch` so the cached-artifact
/// path is what gets checked, and asserts the rank-probability PMFs were
/// built once per distinct `k` rather than once per query.
pub fn check_engine(tree: &AndXorTree, groupby: &GroupByInstance, seed: u64) -> usize {
    const KENDALL_SAMPLES: usize = 256;
    const BASELINE_SAMPLES: usize = 500;
    let engine = ConsensusEngineBuilder::new(tree.clone())
        .seed(seed)
        .kendall_distance_samples(KENDALL_SAMPLES)
        .groupby(groupby.clone())
        .build()
        .expect("default engine configuration is valid");
    let n = tree.keys().len();
    let ws = tree.enumerate_worlds();
    let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
    let mut checks = 0;

    // --- Top-k: the whole metric × variant grid through one batch. ---
    let ks: Vec<usize> = (1..=n.min(3)).collect();
    let mut queries = Vec::new();
    for &k in &ks {
        for metric in [
            TopKMetric::SymmetricDifference,
            TopKMetric::Intersection,
            TopKMetric::Footrule,
            TopKMetric::Kendall,
        ] {
            queries.push(Query::TopK {
                k,
                metric,
                variant: Variant::Mean,
            });
        }
        queries.push(Query::TopK {
            k,
            metric: TopKMetric::SymmetricDifference,
            variant: Variant::Median,
        });
    }
    let answers = engine.run_batch(&queries);
    for (query, answer) in queries.iter().zip(answers) {
        let answer = answer.expect("every grid query is supported");
        let Query::TopK { k, metric, variant } = query else {
            unreachable!()
        };
        let ctx = TopKContext::new(tree, *k);
        let got = answer.value.as_topk().expect("Top-k queries return lists");
        let (direct, direct_distance) = match (metric, variant) {
            (TopKMetric::SymmetricDifference, Variant::Mean) => {
                let list = sym_diff::mean_topk_sym_diff(&ctx);
                let d = sym_diff::expected_sym_diff_distance(&ctx, &list);
                // Exact: must also attain the enumerated optimum.
                let fixed_k = |a: &_, b: &_| oracle::sym_diff_distance_fixed_k(*k, a, b);
                let (_, brute) = oracle::brute_force_mean_topk(&items, *k, &ws, fixed_k);
                assert_close("engine topk/sym-diff vs oracle", d, brute);
                checks += 1;
                (list, d)
            }
            (TopKMetric::SymmetricDifference, Variant::Median) => {
                let median = median_dp::median_topk_sym_diff(tree, &ctx);
                let fixed_k = |a: &_, b: &_| oracle::sym_diff_distance_fixed_k(*k, a, b);
                let (_, brute) = oracle::brute_force_median_topk(&ws, *k, fixed_k);
                assert_close(
                    "engine topk/median-dp vs oracle",
                    median.expected_distance,
                    brute,
                );
                checks += 1;
                (median.answer, median.expected_distance)
            }
            (TopKMetric::Intersection, Variant::Mean) => {
                let list = intersection::mean_topk_intersection(&ctx);
                let d = intersection::expected_intersection_distance(&ctx, &list);
                let (_, brute) =
                    oracle::brute_force_mean_topk(&items, *k, &ws, intersection_metric);
                assert_close("engine topk/intersection vs oracle", d, brute);
                checks += 1;
                (list, d)
            }
            (TopKMetric::Footrule, Variant::Mean) => {
                let list = footrule::mean_topk_footrule(&ctx);
                let d = footrule::expected_footrule_distance(&ctx, &list);
                let (_, brute) = oracle::brute_force_mean_topk(&items, *k, &ws, footrule_distance);
                assert_close("engine topk/footrule vs oracle", d, brute);
                checks += 1;
                (list, d)
            }
            (TopKMetric::Kendall, Variant::Mean) => {
                // Replay the engine's owned RNG stream through the free
                // function (pool = all keys, 8 trials: the default knobs).
                let mut rng = engine.query_rng(query);
                let list = kendall::mean_topk_kendall_pivot(tree, &ctx, n, 8, &mut rng);
                let d = kendall::expected_kendall_distance_sampled(
                    tree,
                    &ctx,
                    &list,
                    KENDALL_SAMPLES,
                    &mut rng,
                );
                (list, d)
            }
            _ => unreachable!("grid only contains supported combinations"),
        };
        assert_eq!(
            *got, direct,
            "engine Top-k answer diverges from the free function for {query:?}"
        );
        assert_eq!(
            answer.expected_distance.to_bits(),
            direct_distance.to_bits(),
            "engine expected distance not bit-identical for {query:?}"
        );
        checks += 2;
    }
    // Rank PMFs must have been built once per distinct k, not once per query.
    let stats = engine.cache_stats();
    assert_eq!(
        stats.rank_context_builds,
        ks.len(),
        "engine rebuilt rank PMFs within a batch: {stats:?}"
    );
    checks += 1;

    // --- Approximation-knob strategies. ---
    let k = n.clamp(1, 2);
    let ctx = TopKContext::new(tree, k);
    let harmonic_engine = ConsensusEngineBuilder::new(tree.clone())
        .seed(seed)
        .intersection_strategy(IntersectionStrategy::Harmonic)
        .build()
        .expect("valid configuration");
    let got = harmonic_engine
        .run(&Query::TopK {
            k,
            metric: TopKMetric::Intersection,
            variant: Variant::Mean,
        })
        .expect("supported");
    assert_eq!(
        got.value.as_topk().expect("list"),
        &intersection::mean_topk_upsilon_h(&ctx),
        "engine Υ_H strategy diverges"
    );
    let proxy_engine = ConsensusEngineBuilder::new(tree.clone())
        .seed(seed)
        .kendall_strategy(KendallStrategy::FootruleProxy)
        .kendall_distance_samples(KENDALL_SAMPLES)
        .build()
        .expect("valid configuration");
    let q = Query::TopK {
        k,
        metric: TopKMetric::Kendall,
        variant: Variant::Mean,
    };
    let got = proxy_engine.run(&q).expect("supported");
    assert_eq!(
        got.value.as_topk().expect("list"),
        &kendall::mean_topk_kendall_via_footrule(&ctx),
        "engine footrule-proxy strategy diverges"
    );
    checks += 2;

    // --- Set consensus. ---
    let set_mean = engine
        .run(&Query::SetConsensus {
            metric: SetMetric::SymmetricDifference,
            variant: Variant::Mean,
        })
        .expect("supported");
    let direct_world = set_distance::mean_world(tree);
    assert_eq!(set_mean.value.as_world().expect("world"), &direct_world);
    let (_, brute) = oracle::brute_force_mean_world(&ws, |a, b| a.symmetric_difference(b) as f64);
    assert_close(
        "engine set/sym-diff vs oracle",
        set_mean.expected_distance,
        brute,
    );
    let jac = engine
        .run(&Query::SetConsensus {
            metric: SetMetric::Jaccard,
            variant: Variant::Mean,
        })
        .expect("supported");
    let direct_jac = jaccard::best_prefix_world(tree, &jaccard::prefix_candidates(tree));
    assert_eq!(jac.value.as_world().expect("world"), &direct_jac.world);
    assert_eq!(
        jac.expected_distance.to_bits(),
        direct_jac.expected_distance.to_bits(),
        "engine Jaccard distance not bit-identical"
    );
    checks += 3;

    // --- Clustering. ---
    let q = Query::Clustering { restarts: 8 };
    let got = engine.run(&q).expect("supported");
    let weights = clustering::CoClusteringWeights::from_tree(tree);
    let mut rng = engine.query_rng(&q);
    let (direct, direct_cost) = clustering::pivot_clustering_best_of(&weights, 8, &mut rng);
    assert_eq!(got.value.as_clustering().expect("clustering"), &direct);
    assert_eq!(got.expected_distance.to_bits(), direct_cost.to_bits());
    checks += 2;

    // --- Aggregates. ---
    let mean = engine
        .run(&Query::Aggregate {
            variant: Variant::Mean,
        })
        .expect("supported");
    assert_eq!(
        mean.value.as_counts().expect("counts"),
        groupby.mean_answer()
    );
    let median = engine
        .run(&Query::Aggregate {
            variant: Variant::Median,
        })
        .expect("supported");
    let direct = groupby.median_answer_4approx().expect("valid instance");
    let got_counts = median.value.as_counts().expect("counts");
    let direct_counts: Vec<f64> = direct.counts.iter().map(|&c| c as f64).collect();
    assert_eq!(got_counts, direct_counts);
    checks += 2;

    // --- Baselines. ---
    for kind in [
        BaselineKind::ExpectedScore { k },
        BaselineKind::ExpectedRank {
            k,
            samples: BASELINE_SAMPLES,
        },
        BaselineKind::UTopK {
            k,
            samples: BASELINE_SAMPLES,
        },
        BaselineKind::UTopKExact { k },
        BaselineKind::GlobalTopK { k },
        BaselineKind::ProbabilisticThreshold { k, threshold: 0.5 },
    ] {
        let q = Query::Baseline { kind };
        let got = engine.run(&q).expect("supported");
        let mut rng = engine.query_rng(&q);
        let direct = match kind {
            BaselineKind::ExpectedScore { k } => baselines::expected_score_topk(tree, k),
            BaselineKind::ExpectedRank { k, samples } => {
                baselines::expected_rank_topk(tree, k, samples, &mut rng)
            }
            BaselineKind::UTopK { k, samples } => baselines::u_topk(tree, k, samples, &mut rng),
            BaselineKind::UTopKExact { k } => baselines::u_topk_enumerated(tree, k),
            BaselineKind::GlobalTopK { .. } => baselines::global_topk(&ctx),
            BaselineKind::ProbabilisticThreshold { threshold, .. } => {
                baselines::ptk_answer(&ctx, threshold)
            }
            _ => unreachable!("fixed list above"),
        };
        assert_eq!(
            got.value.as_topk().expect("list"),
            &direct,
            "engine baseline diverges for {kind:?}"
        );
        checks += 1;
    }

    checks
}

/// Concurrent ↔ serial engine equivalence: a mixed batch covering every
/// query family, executed through the parallel two-phase
/// [`cpdb_engine::ConsensusEngine::run_batch`] at several thread counts and
/// through a shared-engine multi-thread `run` loop, must be **bit-identical**
/// to the serial reference loop — including the errors — and the concurrent
/// traffic must build each shared artifact exactly once.
pub fn check_engine_concurrency(tree: &AndXorTree, groupby: &GroupByInstance, seed: u64) -> usize {
    const KENDALL_SAMPLES: usize = 128;
    let n = tree.keys().len();
    let build = |threads: usize| {
        ConsensusEngineBuilder::new(tree.clone())
            .seed(seed)
            .kendall_distance_samples(KENDALL_SAMPLES)
            .groupby(groupby.clone())
            .threads(threads)
            .build()
            .expect("default engine configuration is valid")
    };
    let mut queries = Vec::new();
    for k in 1..=n.min(3) {
        for metric in [
            TopKMetric::SymmetricDifference,
            TopKMetric::Intersection,
            TopKMetric::Footrule,
            TopKMetric::Kendall,
        ] {
            queries.push(Query::TopK {
                k,
                metric,
                variant: Variant::Mean,
            });
        }
        queries.push(Query::TopK {
            k,
            metric: TopKMetric::SymmetricDifference,
            variant: Variant::Median,
        });
    }
    queries.push(Query::SetConsensus {
        metric: SetMetric::SymmetricDifference,
        variant: Variant::Mean,
    });
    queries.push(Query::SetConsensus {
        metric: SetMetric::Jaccard,
        variant: Variant::Mean,
    });
    queries.push(Query::Clustering { restarts: 8 });
    queries.push(Query::Aggregate {
        variant: Variant::Mean,
    });
    queries.push(Query::Baseline {
        kind: BaselineKind::GlobalTopK { k: 1 },
    });
    queries.push(Query::TopK {
        k: n + 5,
        metric: TopKMetric::Footrule,
        variant: Variant::Mean, // out of range: errors must round-trip too
    });

    let serial = build(1).run_batch_serial(&queries);
    let mut checks = 0;

    // Parallel run_batch at several thread counts, fresh engine each time.
    for threads in [1usize, 2, 3, 8] {
        let engine = build(threads);
        let parallel = engine.run_batch(&queries);
        assert_eq!(
            serial, parallel,
            "parallel run_batch diverges from the serial loop at {threads} threads"
        );
        let stats = engine.cache_stats();
        assert_eq!(
            stats.rank_context_builds,
            n.min(3),
            "run_batch rebuilt a rank context at {threads} threads: {stats:?}"
        );
        assert_eq!(
            stats.preference_builds, 1,
            "run_batch rebuilt the tournament at {threads} threads: {stats:?}"
        );
        assert_eq!(stats.coclustering_builds, 1, "{stats:?}");
        assert_eq!(stats.marginal_builds, 1, "{stats:?}");
        checks += 5;
    }

    // A shared engine hammered by raw `run` calls from several threads, each
    // walking the query list in a different rotation.
    let engine = build(2);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let (engine, queries, serial) = (&engine, &queries, &serial);
                scope.spawn(move || {
                    for i in 0..queries.len() {
                        let at = (i + t * 7) % queries.len();
                        assert_eq!(
                            engine.run(&queries[at]),
                            serial[at],
                            "shared-engine thread {t} diverges on {:?}",
                            queries[at]
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("hammer thread panicked");
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(
        stats.rank_context_builds,
        n.min(3),
        "shared-engine traffic rebuilt a rank context: {stats:?}"
    );
    assert_eq!(stats.preference_builds, 1, "{stats:?}");
    checks + 2
}

/// The probe batch for the live-update checks: every query family the
/// engine can serve without a group-by instance, at the given `k`s.
pub(crate) fn live_probe(ks: &[usize]) -> Vec<Query> {
    let mut probe = Vec::new();
    for &k in ks {
        for metric in [
            TopKMetric::SymmetricDifference,
            TopKMetric::Intersection,
            TopKMetric::Footrule,
            TopKMetric::Kendall,
        ] {
            probe.push(Query::TopK {
                k,
                metric,
                variant: Variant::Mean,
            });
        }
        probe.push(Query::TopK {
            k,
            metric: TopKMetric::SymmetricDifference,
            variant: Variant::Median,
        });
        probe.push(Query::Baseline {
            kind: BaselineKind::GlobalTopK { k },
        });
    }
    probe.push(Query::SetConsensus {
        metric: SetMetric::SymmetricDifference,
        variant: Variant::Mean,
    });
    probe.push(Query::SetConsensus {
        metric: SetMetric::Jaccard,
        variant: Variant::Mean,
    });
    probe.push(Query::Clustering { restarts: 8 });
    probe
}

/// A single-∨-edge probability update whose dependency footprint is a
/// *strict* subset of the keys (`None` when every ∨ edge covers all keys —
/// e.g. a one-block tree — and selective maintenance cannot be observed).
fn selective_probability_delta<R: rand::Rng + ?Sized>(
    tree: &AndXorTree,
    rng: &mut R,
) -> Option<cpdb_live::TreeDelta> {
    let n = tree.keys().len();
    tree.xor_nodes().into_iter().find_map(|xor| {
        let children = tree.children(xor);
        children.iter().find_map(|&(child, p)| {
            if tree.subtree_keys(child).len() >= n {
                return None;
            }
            let others: f64 = children.iter().map(|(_, w)| *w).sum::<f64>() - p;
            let available = (1.0 - others).max(0.0);
            Some(cpdb_live::TreeDelta::XorEdgeProbability {
                xor,
                child,
                probability: available * rng.gen_range(0.05..0.95),
            })
        })
    })
}

/// A valid single-∨-edge probability update drawn at random: the new
/// probability is scaled into the block's available mass.
fn random_probability_delta<R: rand::Rng + ?Sized>(
    tree: &AndXorTree,
    rng: &mut R,
) -> cpdb_live::TreeDelta {
    let xors = tree.xor_nodes();
    let xor = xors[rng.gen_range(0..xors.len())];
    let children = tree.children(xor);
    let (child, p) = children[rng.gen_range(0..children.len())];
    let others: f64 = children.iter().map(|(_, w)| *w).sum::<f64>() - p;
    let available = (1.0 - others).max(0.0);
    cpdb_live::TreeDelta::XorEdgeProbability {
        xor,
        child,
        probability: available * rng.gen_range(0.05..0.95),
    }
}

/// A valid random delta of the kind selected by `step` (falling back to a
/// probability update when the tree offers no target of that kind).
pub(crate) fn random_live_delta<R: rand::Rng + ?Sized>(
    tree: &AndXorTree,
    step: usize,
    rng: &mut R,
) -> cpdb_live::TreeDelta {
    use cpdb_live::TreeDelta;
    match step % 5 {
        // A leaf value update (roughly half of them order-preserving).
        1 => {
            let leaves = tree.leaf_nodes();
            let leaf = leaves[rng.gen_range(0..leaves.len())];
            TreeDelta::LeafValue {
                leaf,
                value: rng.gen_range(0.0..100.0),
            }
        }
        // Insert an alternative next to an existing leaf of some block.
        2 => {
            let candidate = tree.xor_nodes().into_iter().find_map(|xor| {
                let children = tree.children(xor);
                let leaf_key = children
                    .iter()
                    .find_map(|&(c, _)| tree.leaf_alternative(c))?
                    .key;
                let available = 1.0 - children.iter().map(|(_, w)| *w).sum::<f64>();
                (available > 0.02).then_some((xor, leaf_key, available))
            });
            match candidate {
                Some((xor, key, available)) => TreeDelta::InsertAlternative {
                    xor,
                    key: key.0,
                    value: rng.gen_range(0.0..100.0),
                    probability: available * 0.5,
                },
                None => random_probability_delta(tree, rng),
            }
        }
        // Remove a leaf alternative from a multi-child block.
        3 => {
            let candidate = tree.xor_nodes().into_iter().find_map(|xor| {
                let children = tree.children(xor);
                if children.len() < 2 {
                    return None;
                }
                children
                    .iter()
                    .find(|&&(c, _)| tree.leaf_alternative(c).is_some())
                    .map(|&(leaf, _)| (xor, leaf))
            });
            match candidate {
                Some((xor, leaf)) => TreeDelta::RemoveAlternative { xor, leaf },
                None => random_probability_delta(tree, rng),
            }
        }
        // Add a whole new tuple block under the root ∧.
        4 => {
            let root = tree.root();
            if tree.node_kind(root) == Some(cpdb_andxor::NodeKind::And) {
                let key = tree.keys().iter().map(|k| k.0).max().unwrap_or(0) + 7;
                TreeDelta::InsertTupleBlock {
                    under: root,
                    key,
                    alternatives: vec![
                        (rng.gen_range(0.0..100.0), rng.gen_range(0.05..0.5)),
                        (rng.gen_range(0.0..100.0), rng.gen_range(0.05..0.4)),
                    ],
                }
            } else {
                random_probability_delta(tree, rng)
            }
        }
        // Probability updates (also the fallback above).
        _ => random_probability_delta(tree, rng),
    }
}

/// `cpdb_live` end-to-end conformance: a [`cpdb_live::LiveEngine`] absorbs a
/// seeded random delta sequence covering every [`cpdb_live::TreeDelta`]
/// kind; after **every** delta, the patched engine's answers over a probe
/// batch spanning every query family must equal — bit for bit, including
/// the expected distances — those of a **from-scratch engine** built from
/// the mutated tree with the same knobs. Additionally pins the selective-
/// invalidation contract: a single-∨ probability update against a warm
/// engine must *keep* at least one artifact and *patch* at least one (no
/// blanket full rebuild), and pinned pre-delta snapshots keep answering
/// from their own epoch.
pub fn check_live_updates(tree: &AndXorTree, seed: u64) -> usize {
    use cpdb_live::LiveEngine;
    const KENDALL_SAMPLES: usize = 64;
    const STEPS: usize = 6;
    let n = tree.keys().len();
    let k_range = 1..=n.max(1);
    let build = |t: &AndXorTree| {
        ConsensusEngineBuilder::new(t.clone())
            .seed(seed)
            .kendall_distance_samples(KENDALL_SAMPLES)
            .k_range(k_range.clone())
            .build()
            .expect("live conformance configuration is valid")
    };
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11FE_C0DE);
    let live = LiveEngine::new(build(tree));
    let mut checks = 0;

    // Selective invalidation on a warm engine (the acceptance criterion).
    // Only observable when some ∨ edge covers a strict subset of the keys;
    // a delta touching every key legitimately invalidates everything.
    for answer in live.snapshot().run_batch_serial(&probe) {
        answer.expect("probe queries are all supported");
    }
    let pinned = live.snapshot();
    let pinned_answers = pinned.run_batch_serial(&probe);
    if let Some(delta) = selective_probability_delta(pinned.tree(), &mut rng) {
        let outcome = live.apply(&delta).expect("generated delta is valid");
        assert!(
            outcome.report.kept() >= 1,
            "single-∨ probability update kept no artifact: {:?}",
            outcome.report
        );
        assert!(
            outcome.report.patched() >= 1,
            "single-∨ probability update patched no artifact: {:?}",
            outcome.report
        );
        checks += 2;
    }
    // Snapshot isolation: the pinned pre-delta epoch still answers as before.
    assert_eq!(
        pinned.run_batch_serial(&probe),
        pinned_answers,
        "pinned snapshot changed answers after an epoch swap"
    );
    checks += 1;

    // Random delta sequence: every kind, fresh-engine equality after each.
    for step in 0..STEPS {
        let snap = live.snapshot();
        // Warm the current epoch so the maintenance has artifacts to manage.
        for answer in snap.run_batch_serial(&probe) {
            answer.expect("probe queries are all supported");
        }
        let delta = random_live_delta(snap.tree(), step, &mut rng);
        live.apply(&delta).expect("generated deltas are valid");
        let now = live.snapshot();
        let fresh = build(now.tree());
        let live_answers = now.run_batch_serial(&probe);
        let fresh_answers = fresh.run_batch_serial(&probe);
        assert_eq!(
            live_answers,
            fresh_answers,
            "live epoch {} diverges from a from-scratch engine after {delta:?}",
            now.epoch()
        );
        checks += probe.len();
    }
    checks
}

/// `cpdb_store` end-to-end conformance: a durable
/// [`cpdb_live::LiveEngine`] absorbs a seeded random delta sequence (with a
/// compacting snapshot mid-way), is dropped, and is **warm-started** from
/// its store directory. The recovered engine must report the exact
/// pre-shutdown epoch and answer a probe batch spanning every query family
/// bit-for-bit like (a) the engine that wrote the store and (b) a
/// from-scratch engine built from the final tree. A crash is then simulated
/// by tearing the final WAL record (truncating the file mid-record):
/// recovery must come back at the last acknowledged epoch with unchanged
/// answers.
pub fn check_persistence(tree: &AndXorTree, seed: u64) -> usize {
    use cpdb_live::LiveEngine;
    use std::sync::atomic::{AtomicU64, Ordering};
    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    const KENDALL_SAMPLES: usize = 64;
    const STEPS: usize = 6;

    let n = tree.keys().len();
    let k_range = 1..=n.max(1);
    let build = |t: &AndXorTree| {
        ConsensusEngineBuilder::new(t.clone())
            .seed(seed)
            .kendall_distance_samples(KENDALL_SAMPLES)
            .k_range(k_range.clone())
            .build()
            .expect("persistence conformance configuration is valid")
    };
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5707_ED0A);
    let dir = std::env::temp_dir().join(format!(
        "cpdb_persistence_conformance_{}_{}_{}",
        std::process::id(),
        seed,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut checks = 0;

    let live =
        LiveEngine::new_durable(build(tree), &dir).expect("fresh store directory is creatable");
    for step in 0..STEPS {
        let snap = live.snapshot();
        // Warm the epoch so snapshots carry built artifacts.
        for answer in snap.run_batch_serial(&probe) {
            answer.expect("probe queries are all supported");
        }
        let delta = random_live_delta(snap.tree(), step, &mut rng);
        live.apply(&delta).expect("generated deltas are valid");
        if step == STEPS / 2 {
            // Mid-sequence compacting snapshot: recovery below exercises
            // snapshot + WAL-suffix replay, not WAL-only replay.
            live.persist_snapshot().expect("snapshot write succeeds");
        }
    }
    let final_epoch = live.epoch();
    let expected = live.snapshot().run_batch_serial(&probe);
    let final_tree = live.snapshot().tree().clone();
    drop(live);

    // Clean warm start: exact epoch, bit-identical to the writer and to a
    // from-scratch engine over the same tree.
    let reopened = LiveEngine::open(&dir).expect("store recovers after clean shutdown");
    assert_eq!(reopened.epoch(), final_epoch, "recovered epoch diverged");
    let warm_answers = reopened.snapshot().run_batch_serial(&probe);
    assert_eq!(
        warm_answers, expected,
        "warm start diverged from the engine that wrote the store"
    );
    assert_eq!(
        warm_answers,
        build(&final_tree).run_batch_serial(&probe),
        "warm start diverged from a from-scratch engine"
    );
    checks += 2 * probe.len() + 1;

    // Crash simulation: apply one more delta, then tear its WAL record by
    // truncating the file one byte short. Recovery must drop the torn
    // record and come back at the last acknowledged epoch.
    let snap = reopened.snapshot();
    let extra = random_live_delta(snap.tree(), 0, &mut rng);
    reopened.apply(&extra).expect("generated deltas are valid");
    drop(reopened);
    let wal = dir.join("wal.cpdb");
    let bytes = std::fs::read(&wal).expect("wal file exists");
    std::fs::write(&wal, &bytes[..bytes.len() - 1]).expect("wal is truncatable");
    let recovered = LiveEngine::open(&dir).expect("store recovers from a torn tail");
    assert_eq!(
        recovered.epoch(),
        final_epoch,
        "torn-tail recovery did not return to the last acknowledged epoch"
    );
    assert_eq!(
        recovered.snapshot().run_batch_serial(&probe),
        expected,
        "torn-tail recovery changed answers"
    );
    checks += probe.len() + 1;

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    checks
}

/// Exhaustive crash-point sweep: a durable [`cpdb_live::LiveEngine`]
/// absorbs a seeded random delta sequence, then the WAL is truncated at
/// **every byte boundary of the final record** — simulating a crash at each
/// instant of the final append — and recovered. Every cut must yield a
/// valid engine at the last fully-acknowledged epoch (the full length
/// recovers the final epoch; every shorter cut recovers the previous one),
/// answering bit-for-bit like the engine that wrote the store and like a
/// from-scratch engine on the same tree.
pub fn check_crash_recovery(tree: &AndXorTree, seed: u64) -> usize {
    use cpdb_live::LiveEngine;
    use std::sync::atomic::{AtomicU64, Ordering};
    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    const KENDALL_SAMPLES: usize = 64;
    const STEPS: usize = 3;

    let n = tree.keys().len();
    let k_range = 1..=n.max(1);
    let build = |t: &AndXorTree| {
        ConsensusEngineBuilder::new(t.clone())
            .seed(seed)
            .kendall_distance_samples(KENDALL_SAMPLES)
            .k_range(k_range.clone())
            .build()
            .expect("crash-recovery conformance configuration is valid")
    };
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5_11ED);
    let dir = std::env::temp_dir().join(format!(
        "cpdb_crash_recovery_{}_{}_{}",
        std::process::id(),
        seed,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_path = dir.join("wal.cpdb");

    let live =
        LiveEngine::new_durable(build(tree), &dir).expect("fresh store directory is creatable");
    let mut final_record_start = 0;
    let mut expected_prev = Vec::new();
    let mut prev_tree = tree.clone();
    for step in 0..STEPS {
        let snap = live.snapshot();
        if step == STEPS - 1 {
            // The crash window under test: everything from here on is the
            // final record's bytes.
            final_record_start =
                std::fs::metadata(&wal_path).expect("wal file exists").len() as usize;
            expected_prev = snap.run_batch_serial(&probe);
            prev_tree = snap.tree().clone();
        }
        let delta = random_live_delta(snap.tree(), step, &mut rng);
        live.apply(&delta).expect("generated deltas are valid");
    }
    let expected_full = live.snapshot().run_batch_serial(&probe);
    let final_tree = live.snapshot().tree().clone();
    drop(live);

    // The writer's answers must themselves match from-scratch engines —
    // anchors the bit-for-bit comparisons below to an independent oracle.
    assert_eq!(expected_prev, build(&prev_tree).run_batch_serial(&probe));
    assert_eq!(expected_full, build(&final_tree).run_batch_serial(&probe));
    let mut checks = 2;

    let full = std::fs::read(&wal_path).expect("wal file exists");
    assert!(final_record_start < full.len());
    for cut in final_record_start..=full.len() {
        std::fs::write(&wal_path, &full[..cut]).expect("wal is rewritable");
        let recovered =
            LiveEngine::open(&dir).unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let (want_epoch, want_answers) = if cut == full.len() {
            (STEPS as u64, &expected_full)
        } else {
            (STEPS as u64 - 1, &expected_prev)
        };
        assert_eq!(
            recovered.epoch(),
            want_epoch,
            "cut at byte {cut} of {} recovered the wrong epoch",
            full.len()
        );
        assert_eq!(
            &recovered.snapshot().run_batch_serial(&probe),
            want_answers,
            "cut at byte {cut} changed answers"
        );
        checks += 2;
    }

    let _ = std::fs::remove_dir_all(&dir);
    checks
}

/// `cpdb_sync` facade transparency: on a normal (non-`cpdb_check`) build
/// the synchronization facades must be invisible — the always-compiled
/// instrumented primitives behave exactly like their `std` counterparts
/// outside an exploration, and the facade-routed engine/live paths answer
/// **bit-identically** whether driven serially, through concurrent
/// `cpdb_sync::thread` traffic, or compared against a from-scratch engine
/// after an `ArcCell` epoch swap.
pub fn check_sync_shims(tree: &AndXorTree, seed: u64) -> usize {
    use cpdb_live::LiveEngine;
    use cpdb_sync::atomic::Ordering;
    use cpdb_sync::{checked, Arc, ArcCell};
    let mut checks = 0;

    // The instrumented primitives are plain std wrappers when no
    // exploration is active (exactly the state tier-1 tests run in).
    let m = checked::Mutex::new(1u32);
    *m.lock().expect("fresh mutex") += 1;
    assert_eq!(*m.lock().expect("fresh mutex"), 2, "checked Mutex diverged");
    let rw = checked::RwLock::new(3u32);
    *rw.write().expect("fresh rwlock") += 1;
    assert_eq!(
        *rw.read().expect("fresh rwlock"),
        4,
        "checked RwLock diverged"
    );
    let once = checked::OnceLock::new();
    assert_eq!(*once.get_or_init(|| 5u32), 5, "checked OnceLock diverged");
    assert_eq!(once.get(), Some(&5), "checked OnceLock lost its value");
    let counter = checked::AtomicUsize::new(6);
    assert_eq!(counter.fetch_add(1, Ordering::Relaxed), 6);
    assert_eq!(
        counter.load(Ordering::Relaxed),
        7,
        "checked atomic diverged"
    );
    let cell = ArcCell::new(Arc::new(8u64));
    let pinned = cell.load();
    cell.store(Arc::new(9));
    assert_eq!(
        (*pinned, *cell.load()),
        (8, 9),
        "ArcCell swap disturbed a pinned clone"
    );
    checks += 6;

    // The facade-routed engine under concurrent `cpdb_sync::thread`
    // traffic answers bit-identically to its own serial loop.
    let n = tree.keys().len();
    let engine = ConsensusEngineBuilder::new(tree.clone())
        .seed(seed)
        .kendall_distance_samples(64)
        .k_range(1..=n.max(1))
        .build()
        .expect("sync-shim conformance configuration is valid");
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let serial = engine.run_batch_serial(&probe);
    cpdb_sync::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let (engine, probe, serial) = (&engine, &probe, &serial);
                scope.spawn(move || {
                    for i in 0..probe.len() {
                        let at = (i + t * 5) % probe.len();
                        assert_eq!(
                            engine.run(&probe[at]),
                            serial[at],
                            "facade-routed engine diverges on {:?}",
                            probe[at]
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("shim conformance thread panicked");
        }
    });
    checks += 2 * probe.len();

    // An epoch published through the facade `ArcCell` swap and read from a
    // facade-spawned thread matches a from-scratch engine on the new tree.
    let live = Arc::new(LiveEngine::new(
        ConsensusEngineBuilder::new(tree.clone())
            .seed(seed)
            .kendall_distance_samples(64)
            .k_range(1..=n.max(1))
            .build()
            .expect("sync-shim conformance configuration is valid"),
    ));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51AC_517F);
    let delta = random_probability_delta(live.snapshot().tree(), &mut rng);
    live.apply(&delta).expect("generated delta is valid");
    let live2 = Arc::clone(&live);
    let probe2 = probe.clone();
    let published = cpdb_sync::thread::spawn(move || {
        let snap = live2.snapshot();
        (snap.epoch(), snap.run_batch_serial(&probe2))
    })
    .join()
    .expect("facade reader thread panicked");
    let fresh = ConsensusEngineBuilder::new(live.snapshot().tree().clone())
        .seed(seed)
        .kendall_distance_samples(64)
        .k_range(1..=n.max(1))
        .build()
        .expect("sync-shim conformance configuration is valid");
    assert_eq!(published.0, 1, "facade reader missed the published epoch");
    assert_eq!(
        published.1,
        fresh.run_batch_serial(&probe),
        "facade-published epoch diverges from a from-scratch engine"
    );
    checks + probe.len() + 1
}

/// Outcome of a full conformance sweep for one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceSummary {
    /// The fixture seed that was swept.
    pub seed: u64,
    /// Total number of oracle assertions that passed.
    pub checks: usize,
}

/// Runs every conformance check against the full fixture family for one
/// seed: set consensus and Jaccard on tuple-independent instances, all Top-k
/// algorithms on BID trees (k = 1..3) and tuple-independent trees, aggregates
/// on group-by instances, clustering on attribute-uncertainty trees, the
/// batch ↔ per-tuple generating-function equivalence on all three tree
/// families, the engine ↔ free-function equivalence sweep on both ranked
/// tree families, the concurrent ↔ serial engine equivalence check
/// (parallel `run_batch` and multi-thread shared-engine traffic bit-identical
/// to the serial loop), the live-update conformance (delta-patched
/// epochs ≡ from-scratch engines after every mutation, with selective
/// artifact invalidation), and the `cpdb_sync` facade-transparency check
/// (the synchronization shims are bit-invisible on normal builds).
pub fn run_seed(seed: u64) -> ConformanceSummary {
    let ti_db = fixtures::small_tuple_independent(seed);
    let ti_tree = fixtures::small_tuple_independent_tree(seed);
    let bid_tree = fixtures::small_bid_tree(seed);

    let mut checks = 0;
    checks += check_set_consensus(&ti_tree);
    checks += check_set_consensus(&bid_tree);
    checks += check_jaccard(&ti_db);
    for k in 1..=3 {
        checks += check_topk_means(&bid_tree, k);
        checks += check_topk_median_dp(&bid_tree, k);
    }
    checks += check_topk_means(&ti_tree, 2);
    checks += check_topk_median_dp(&ti_tree, 2);
    checks += check_kendall(&bid_tree, 2, seed);
    checks += check_kendall(&ti_tree, 2, seed);
    checks += check_aggregate(&fixtures::small_groupby(seed));
    checks += check_clustering(&fixtures::small_clustering_tree(seed), seed);
    checks += check_batch_genfunc(&ti_tree);
    checks += check_batch_genfunc(&bid_tree);
    checks += check_batch_genfunc(&fixtures::small_clustering_tree(seed));
    let groupby = fixtures::small_groupby(seed);
    checks += check_engine(&bid_tree, &groupby, seed);
    checks += check_engine(&ti_tree, &groupby, seed);
    checks += check_engine_concurrency(&bid_tree, &groupby, seed);
    checks += check_live_updates(&bid_tree, seed);
    checks += check_live_updates(&ti_tree, seed);
    checks += check_persistence(&bid_tree, seed);
    checks += check_persistence(&ti_tree, seed);
    checks += check_sync_shims(&bid_tree, seed);
    checks += crate::replication::check_replication(&bid_tree, seed);
    checks += crate::observability::check_observability(&bid_tree, seed);
    ConformanceSummary { seed, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seed_reports_all_checks() {
        let summary = run_seed(0);
        assert!(
            summary.checks > 40,
            "expected a full sweep, got {summary:?}"
        );
    }

    #[test]
    fn assert_close_accepts_rounding_noise() {
        assert_close("noise", 1.0, 1.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "oracle computed")]
    fn assert_close_rejects_real_divergence() {
        assert_close("divergence", 1.0, 1.1);
    }

    #[test]
    #[should_panic(expected = "beats the enumerated optimum")]
    fn approximations_may_not_beat_the_oracle() {
        assert_within_factor("impossible", 0.5, 1.0, 2.0);
    }
}
