//! Replication chaos: seeded fault schedules swept over every I/O call
//! site of a read replica's ship-fetch-verify-replay pipeline.
//!
//! The protocol mirrors [`crate::chaos`]: a **reference run** drives a
//! fault-free primary/follower pair over two in-memory
//! [`FaultVfs`] filesystems (the primary's store and
//! outbox on one, the follower's inbox and local store on the other),
//! recording the delta sequence, the probe answers published at every
//! epoch, and the follower-side operation-trace length. The **fault
//! sweep** replays the identical workload once per (follower operation
//! index × fault mode) and asserts the replication robustness contract:
//!
//! * **The follower never serves an unverified epoch.** At every
//!   observation point its answers are bit-identical to the reference
//!   answers for its applied epoch — a corrupt, torn, or missing ship
//!   degrades the link but never the served state.
//! * **Recovery restores replication.** When the outage ends (or after a
//!   follower power cut and restart) the follower catches back up to the
//!   shipped epoch and passes the full divergence check against the
//!   primary.
//! * **Failover is fenced.** [`check_promotion_sweep`] power-cuts the
//!   primary at every operation of its final ship: the follower promotes,
//!   the promoted writer is bit-identical to the never-faulted reference
//!   at its epoch and can finish the workload, and a revived old primary
//!   is refused with [`ReplicaError::Fenced`].

use crate::chaos::{FaultMode, FAULT_MODES};
use crate::conformance::{live_probe, random_live_delta};
use cpdb_andxor::{AndXorTree, TreeDelta};
use cpdb_engine::{Answer, ConsensusEngine, ConsensusEngineBuilder, EngineError, Query};
use cpdb_live::LiveEngine;
use cpdb_replica::{check_divergence, Follower, Primary, ReplicaError, Transport};
use cpdb_store::{FaultVfs, RetryPolicy, StoreOptions, Vfs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Deltas applied (and shipped) per run, each publishing one epoch.
const STEPS: usize = 3;
/// The step shipped via [`Primary::rotate_anchor`] instead of a plain
/// segment ship, so every sweep also covers the rebase-and-rebootstrap
/// pipeline.
const ROTATE_AFTER: usize = 1;
const KENDALL_SAMPLES: usize = 64;
const P_STORE: &str = "/p/store";
const OUTBOX: &str = "/p/outbox";
const INBOX: &str = "/f/inbox";
const F_STORE: &str = "/f/store";

/// The recorded fault-free workload the sweeps replay.
struct Reference {
    deltas: Vec<TreeDelta>,
    /// `answers[e]` = probe answers published at epoch `e`.
    answers: Vec<Vec<Result<Answer, EngineError>>>,
    /// Filesystem operations the follower side performs fault-free.
    follower_ops: u64,
}

fn build_engine(tree: &AndXorTree, seed: u64) -> ConsensusEngine {
    let n = tree.keys().len();
    ConsensusEngineBuilder::new(tree.clone())
        .seed(seed)
        .kendall_distance_samples(KENDALL_SAMPLES)
        .k_range(1..=n.max(1))
        .build()
        .expect("replication conformance configuration is valid")
}

fn options(vfs: &FaultVfs) -> StoreOptions {
    StoreOptions {
        vfs: Arc::new(vfs.clone()),
        retry: RetryPolicy::no_delay(3),
        ..StoreOptions::default()
    }
}

fn arc(vfs: &FaultVfs) -> Arc<dyn Vfs> {
    Arc::new(vfs.clone())
}

/// A durable primary attached to its outbox, with the epoch-0 anchor
/// already shipped.
fn start_primary(tree: &AndXorTree, seed: u64, pvfs: &FaultVfs) -> Primary {
    let live =
        LiveEngine::new_durable_with(build_engine(tree, seed), Path::new(P_STORE), options(pvfs))
            .expect("fresh in-memory primary store is creatable");
    let primary =
        Primary::attach(live, arc(pvfs), Path::new(OUTBOX)).expect("fresh outbox is claimable");
    primary.ship().expect("fault-free anchor ship succeeds");
    primary
}

fn open_follower(pvfs: &FaultVfs, rvfs: &FaultVfs) -> Result<Follower, ReplicaError> {
    let transport = Transport::new(arc(pvfs), Path::new(OUTBOX), arc(rvfs), Path::new(INBOX))?;
    Follower::open(transport, Path::new(F_STORE), options(rvfs))
}

/// The follower must only ever serve a verified epoch: its answers are
/// bit-identical to the reference answers at its applied epoch.
fn assert_serves_reference(
    follower: &Follower,
    probe: &[Query],
    reference: &Reference,
    context: &str,
) {
    let epoch = follower.applied_epoch() as usize;
    assert!(
        epoch < reference.answers.len(),
        "{context}: follower applied epoch {epoch} beyond the reference run"
    );
    assert_eq!(
        follower.snapshot().run_batch_serial(probe),
        reference.answers[epoch],
        "{context}: follower at epoch {epoch} served answers that differ from the reference"
    );
}

/// Drives the fault-free primary/follower pair, recording the workload and
/// asserting epoch-for-epoch bit-identity plus the full divergence check
/// at every ship. Returns the recording and the number of checks.
fn reference_run(tree: &AndXorTree, seed: u64, probe: &[Query]) -> (Reference, usize) {
    let pvfs = FaultVfs::new();
    let rvfs = FaultVfs::new();
    let primary = start_primary(tree, seed, &pvfs);
    let mut follower = open_follower(&pvfs, &rvfs).expect("fault-free follower opens");
    assert_eq!(follower.sync().expect("fault-free sync succeeds"), 0);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x05E6_6E27);
    let mut deltas = Vec::new();
    let mut answers = vec![primary.snapshot().run_batch_serial(probe)];
    let mut checks = 1;
    for step in 0..STEPS {
        let delta = random_live_delta(primary.snapshot().tree(), step, &mut rng);
        primary.apply(&delta).expect("generated deltas are valid");
        deltas.push(delta);
        answers.push(primary.snapshot().run_batch_serial(probe));
        if step == ROTATE_AFTER {
            primary
                .rotate_anchor()
                .expect("fault-free rotation succeeds");
        } else {
            primary.ship().expect("fault-free ship succeeds");
        }
        assert_eq!(
            follower.sync().expect("fault-free sync succeeds"),
            step as u64 + 1,
            "fault-free follower failed to reach the shipped epoch"
        );
        assert_eq!(
            follower.snapshot().run_batch_serial(probe),
            answers[step + 1],
            "fault-free follower diverged from the primary at epoch {}",
            step + 1
        );
        check_divergence(&primary.snapshot(), &follower.snapshot(), probe)
            .expect("fault-free follower passes the divergence check");
        assert_eq!(follower.lag(), 0);
        checks += 4;
    }
    let follower_ops = rvfs.op_count();
    (
        Reference {
            deltas,
            answers,
            follower_ops,
        },
        checks,
    )
}

/// Replays the recorded workload with one fault armed on the follower's
/// filesystem (inbox + local store) at operation `at_op`; the primary
/// side stays fault-free. Returns the number of checks performed.
fn faulted_follower_run(
    tree: &AndXorTree,
    seed: u64,
    probe: &[Query],
    reference: &Reference,
    mode: FaultMode,
    at_op: u64,
) -> usize {
    let pvfs = FaultVfs::new();
    let rvfs = FaultVfs::new();
    match mode {
        FaultMode::TransientOnce => rvfs.fail_at(at_op, io::ErrorKind::Interrupted, false),
        FaultMode::Permanent => rvfs.fail_at(at_op, io::ErrorKind::StorageFull, true),
        FaultMode::TornWrite => rvfs.short_write_at(at_op, io::ErrorKind::StorageFull),
        FaultMode::PowerCut => rvfs.halt_at(at_op),
    }
    let primary = start_primary(tree, seed, &pvfs);
    let mut checks = 0;
    let mut follower = open_follower(&pvfs, &rvfs).ok();

    for (step, delta) in reference.deltas.iter().enumerate() {
        primary
            .apply(delta)
            .expect("the fault-free primary applies");
        if step == ROTATE_AFTER {
            primary
                .rotate_anchor()
                .expect("the fault-free primary rotates");
        } else {
            primary.ship().expect("the fault-free primary ships");
        }
        let shipped = step as u64 + 1;

        let synced = match follower.as_mut() {
            Some(f) => match f.sync() {
                Ok(epoch) => {
                    assert_eq!(epoch, shipped, "a clean sync stopped short of the ship");
                    checks += 1;
                    true
                }
                Err(e) => {
                    assert!(
                        !matches!(e, ReplicaError::Engine(_)),
                        "fault injection surfaced as an engine error: {e}"
                    );
                    // The failed sync must not have poisoned the served
                    // state, and the health endpoint must show the outage.
                    assert_serves_reference(f, probe, reference, "after a failed sync");
                    assert!(
                        f.health().replication.is_none_or(|r| !r.link.is_healthy()),
                        "a failed sync left the replication link green"
                    );
                    checks += 3;
                    false
                }
            },
            None => false,
        };

        if !synced {
            // End the outage the mode's way, then the follower must catch
            // back up to the shipped epoch exactly.
            if mode == FaultMode::PowerCut {
                drop(follower.take());
                rvfs.crash();
            } else {
                rvfs.clear_faults();
                drop(follower.take());
            }
            let mut reopened =
                open_follower(&pvfs, &rvfs).expect("the follower reopens once the outage ends");
            assert_serves_reference(&reopened, probe, reference, "after reopening");
            assert_eq!(
                reopened.sync().expect("sync succeeds once the outage ends"),
                shipped,
                "the recovered follower failed to catch up"
            );
            checks += 2;
            follower = Some(reopened);
        }

        let f = follower.as_ref().expect("follower is live after recovery");
        assert_serves_reference(f, probe, reference, "at the shipped epoch");
        checks += 1;
    }

    // The completed replica is bit-identical to the never-faulted primary.
    let f = follower.as_ref().expect("follower is live at the end");
    check_divergence(&primary.snapshot(), &f.snapshot(), probe)
        .expect("the recovered follower passes the divergence check");
    checks + 1
}

/// Strided sweep of every fault mode over the follower's operation trace,
/// phase-shifted by `seed`. `stride` = 1 is exhaustive. Returns the number
/// of assertions performed.
pub fn check_replication_sweep(tree: &AndXorTree, seed: u64, stride: usize) -> usize {
    let n = tree.keys().len();
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let (reference, mut checks) = reference_run(tree, seed, &probe);
    let stride = stride.max(1) as u64;
    let mut at_op = seed % stride;
    while at_op < reference.follower_ops {
        for mode in FAULT_MODES {
            checks += faulted_follower_run(tree, seed, &probe, &reference, mode, at_op);
        }
        at_op += stride;
    }
    checks
}

/// One follower fault schedule drawn from `schedule`, for property-based
/// sweeps over random trees and random ship schedules. Returns the number
/// of assertions performed.
pub fn check_replication_recovery(tree: &AndXorTree, seed: u64, schedule: u64) -> usize {
    let n = tree.keys().len();
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let (reference, checks) = reference_run(tree, seed, &probe);
    let at_op = schedule % reference.follower_ops;
    let mode = FAULT_MODES[(schedule / reference.follower_ops) as usize % FAULT_MODES.len()];
    checks + faulted_follower_run(tree, seed, &probe, &reference, mode, at_op)
}

/// The fault-free epoch-for-epoch replication conformance check used by
/// the main oracle sweep: ship, replay, and divergence-check a follower on
/// every conformance seed. Returns the number of assertions performed.
pub fn check_replication(tree: &AndXorTree, seed: u64) -> usize {
    let n = tree.keys().len();
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    reference_run(tree, seed, &probe).1
}

/// Power-cuts the primary at every `stride`-th filesystem operation of its
/// final ship, then promotes the follower and asserts the failover
/// contract: the promoted writer serves a verified reference epoch,
/// finishes the workload bit-identically to the never-faulted reference,
/// and the revived old primary is refused with a typed fencing error.
/// Returns the number of assertions performed.
pub fn check_promotion_sweep(tree: &AndXorTree, seed: u64, stride: usize) -> usize {
    let n = tree.keys().len();
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let (reference, mut checks) = reference_run(tree, seed, &probe);

    // Dry run to measure the primary-side operation window of the final
    // ship (the replays are trace-identical up to that point).
    let (window_start, window_end) = {
        let pvfs = FaultVfs::new();
        let rvfs = FaultVfs::new();
        let primary = start_primary(tree, seed, &pvfs);
        let mut follower = open_follower(&pvfs, &rvfs).expect("dry-run follower opens");
        follower.sync().expect("dry-run sync succeeds");
        for (step, delta) in reference.deltas.iter().enumerate() {
            primary.apply(delta).expect("dry-run apply succeeds");
            if step + 1 < reference.deltas.len() {
                if step == ROTATE_AFTER {
                    primary.rotate_anchor().expect("dry-run rotation succeeds");
                } else {
                    primary.ship().expect("dry-run ship succeeds");
                }
                follower.sync().expect("dry-run sync succeeds");
            }
        }
        let start = pvfs.op_count();
        primary.ship().expect("dry-run final ship succeeds");
        (start, pvfs.op_count())
    };

    let stride = stride.max(1) as u64;
    let mut at_op = window_start + seed % stride;
    // One schedule past the window covers the power cut landing after the
    // ship fully committed.
    while at_op <= window_end {
        checks += promotion_run(tree, seed, &probe, &reference, at_op);
        at_op += stride;
    }
    checks
}

/// One promotion schedule: the primary loses power at operation `at_op`
/// during (or just after) its final ship.
fn promotion_run(
    tree: &AndXorTree,
    seed: u64,
    probe: &[Query],
    reference: &Reference,
    at_op: u64,
) -> usize {
    let pvfs = FaultVfs::new();
    let rvfs = FaultVfs::new();
    let primary = start_primary(tree, seed, &pvfs);
    let mut follower = open_follower(&pvfs, &rvfs).expect("follower opens");
    follower.sync().expect("initial sync succeeds");
    for (step, delta) in reference.deltas.iter().enumerate() {
        primary.apply(delta).expect("apply before the cut succeeds");
        if step + 1 < reference.deltas.len() {
            if step == ROTATE_AFTER {
                primary
                    .rotate_anchor()
                    .expect("rotation before the cut succeeds");
            } else {
                primary.ship().expect("ship before the cut succeeds");
            }
            follower.sync().expect("sync before the cut succeeds");
        }
    }
    let mut checks = 0;

    // Power fails at `at_op` somewhere inside the final ship; the primary
    // host is dead from here on.
    pvfs.halt_at(at_op);
    let _ = primary.ship();
    drop(primary);
    pvfs.crash();

    // The follower sees either the old manifest or the fully committed new
    // one — never a torn intermediate — and serves only verified epochs.
    let last = STEPS as u64;
    match follower.sync() {
        Ok(epoch) => assert!(
            epoch == last - 1 || epoch == last,
            "sync after the cut landed on unshipped epoch {epoch}"
        ),
        Err(_) => assert_serves_reference(&follower, probe, reference, "after the primary died"),
    }
    assert_serves_reference(&follower, probe, reference, "before promotion");
    checks += 2;

    let applied = follower.applied_epoch();
    let new_primary = follower.promote().expect("promotion succeeds");
    assert_eq!(new_primary.epoch(), applied, "promotion moved the epoch");
    assert_eq!(
        new_primary.snapshot().run_batch_serial(probe),
        reference.answers[applied as usize],
        "the promoted writer serves answers that differ from the reference"
    );
    checks += 2;

    // The promoted writer finishes the workload and matches the
    // never-faulted reference bit-for-bit.
    for delta in &reference.deltas[applied as usize..] {
        new_primary
            .apply(delta)
            .expect("the promoted writer applies");
    }
    assert_eq!(new_primary.epoch(), last);
    assert_eq!(
        new_primary.snapshot().run_batch_serial(probe),
        reference.answers[last as usize],
        "the promoted writer finished the workload with different answers"
    );
    new_primary.ship().expect("the promoted writer ships");
    checks += 2;

    // A revived old primary holds a stale fencing token and is refused
    // with the typed error before it can split the brain.
    let revived = LiveEngine::open_with(Path::new(P_STORE), options(&pvfs))
        .expect("the old primary's store reopens after the power cut");
    match Primary::attach(revived, arc(&pvfs), Path::new(OUTBOX)) {
        Err(ReplicaError::Fenced { held, manifest }) => {
            assert!(
                manifest > held,
                "fencing refused without a newer manifest token ({held} vs {manifest})"
            );
        }
        Err(e) => panic!("revived old primary failed with the wrong error: {e}"),
        Ok(_) => panic!("revived old primary was allowed to reattach"),
    }
    checks + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn replication_sweep_covers_every_mode_on_one_fixture() {
        // A coarse stride keeps this unit test fast; the dedicated
        // replication_sweep suite runs the fine-grained sweep.
        let checks = check_replication_sweep(&fixtures::small_bid_tree(0), 0, 29);
        assert!(checks > 50, "sweep performed only {checks} checks");
    }

    #[test]
    fn promotion_sweep_fences_on_one_fixture() {
        let checks = check_promotion_sweep(&fixtures::small_tuple_independent_tree(1), 1, 7);
        assert!(
            checks > 20,
            "promotion sweep performed only {checks} checks"
        );
    }

    #[test]
    fn single_replication_schedule_runs() {
        let checks = check_replication_recovery(&fixtures::small_bid_tree(2), 2, 137);
        assert!(checks > 5, "single schedule performed only {checks} checks");
    }
}
