//! Observability conformance: the instrumentation must be *transparent*
//! (bit-identical answers with the sink on or off), *conserved* (the
//! unified snapshot agrees with the layer surfaces it folds in, and every
//! recorded build/query left exactly one trace), and *honest about health*
//! (degraded/recovered transitions land in the flight recorder under a
//! chaos fault schedule).
//!
//! Three checks, summed into [`check_observability`] and run on every
//! conformance seed by [`crate::conformance::run_seed`]:
//!
//! * **Bit-transparency** — the identical delta/probe workload runs once
//!   with a live sink threaded through engine, store, and live layers and
//!   once fully disabled; every answer at every epoch must be
//!   bit-identical.
//! * **Counter conservation** — on the instrumented run, the
//!   `engine.cache.*` entries of the unified snapshot equal the
//!   [`CacheStats`](cpdb_engine::CacheStats) surface they fold in; each
//!   artifact's build counter equals its build-latency histogram count;
//!   query-latency histogram counts sum to the queries issued; and the
//!   flight recorder holds matching query start/finish event counts.
//! * **Health transitions** — one permanent-outage fault schedule drives
//!   the engine into degraded mode and back; the flight recorder must show
//!   the `Degraded` event (and `Recovered` after the outage ends) without
//!   perturbing the served answers.

use crate::conformance::{live_probe, random_live_delta};
use cpdb_andxor::AndXorTree;
use cpdb_engine::{Answer, ConsensusEngine, ConsensusEngineBuilder, EngineError, Query};
use cpdb_live::LiveEngine;
use cpdb_obs::{EventKind, MetricsSnapshot, Obs};
use cpdb_store::{FaultVfs, RetryPolicy, StoreOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Deltas applied per run (each publishing one epoch).
const STEPS: usize = 3;
const KENDALL_SAMPLES: usize = 64;
const DIR: &str = "/obs/store";
/// Large enough that no event of the workload is evicted, so event counts
/// can be compared exactly.
const EVENT_CAPACITY: usize = 1 << 14;

fn build_engine(tree: &AndXorTree, seed: u64, obs: Obs) -> ConsensusEngine {
    let n = tree.keys().len();
    ConsensusEngineBuilder::new(tree.clone())
        .seed(seed)
        .kendall_distance_samples(KENDALL_SAMPLES)
        .k_range(1..=n.max(1))
        .obs(obs)
        .build()
        .expect("observability conformance configuration is valid")
}

fn options(vfs: &FaultVfs, obs: Obs) -> StoreOptions {
    StoreOptions {
        vfs: Arc::new(vfs.clone()),
        retry: RetryPolicy::no_delay(3),
        obs,
    }
}

/// One fully instrumented (or fully uninstrumented) run of the standard
/// delta workload: per-epoch probe answers plus the finished engine.
struct Run {
    answers: Vec<Vec<Result<Answer, EngineError>>>,
    live: LiveEngine,
    queries_issued: u64,
}

fn run_workload(tree: &AndXorTree, seed: u64, probe: &[Query], obs: &Obs) -> Run {
    let vfs = FaultVfs::new();
    let live = LiveEngine::new_durable_with(
        build_engine(tree, seed, obs.clone()),
        Path::new(DIR),
        options(&vfs, obs.clone()),
    )
    .expect("fresh in-memory store is creatable");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E_55ED);
    let mut answers = vec![live.snapshot().run_batch_serial(probe)];
    for step in 0..STEPS {
        let delta = random_live_delta(live.snapshot().tree(), step, &mut rng);
        live.apply(&delta).expect("generated deltas are valid");
        answers.push(live.snapshot().run_batch_serial(probe));
    }
    Run {
        answers,
        live,
        queries_issued: ((STEPS + 1) * probe.len()) as u64,
    }
}

/// Instrumentation must not change a single bit of any answer: the same
/// workload with the sink attached and detached, compared epoch-for-epoch.
fn check_bit_transparency(instrumented: &Run, plain: &Run) -> usize {
    assert_eq!(
        instrumented.answers, plain.answers,
        "attaching the observability sink changed an answer"
    );
    assert!(
        plain.live.obs().snapshot().is_empty(),
        "a disabled sink registered metrics"
    );
    2
}

/// The histogram count for `engine.artifact.<name>` must equal the build
/// counter folded in from [`cpdb_engine::CacheStats`]: every build was
/// spanned exactly once.
fn assert_builds_spanned(snapshot: &MetricsSnapshot, artifact: &str, counter: &str) {
    let hist = snapshot
        .histogram(&format!("engine.artifact.{artifact}"))
        .unwrap_or_else(|| panic!("engine.artifact.{artifact} is not registered"));
    let builds = snapshot
        .counter(&format!("engine.cache.{counter}"))
        .unwrap_or_else(|| panic!("engine.cache.{counter} was not folded in"));
    assert_eq!(
        hist.count, builds,
        "engine.artifact.{artifact} recorded {} spans for {builds} builds",
        hist.count
    );
}

/// The unified snapshot must agree with the layer surfaces it folds in,
/// and every query/build must leave exactly one trace.
fn check_counter_conservation(run: &Run, obs: &Obs) -> usize {
    let snapshot = run.live.metrics_snapshot();
    let stats = run.live.snapshot().engine().cache_stats();
    let mut checks = 0;

    // The folded engine.cache.* counters mirror the CacheStats surface.
    for (name, value) in [
        ("rank_context_builds", stats.rank_context_builds),
        ("rank_context_hits", stats.rank_context_hits),
        ("preference_builds", stats.preference_builds),
        ("preference_hits", stats.preference_hits),
        ("coclustering_builds", stats.coclustering_builds),
        ("coclustering_hits", stats.coclustering_hits),
        ("marginal_builds", stats.marginal_builds),
        ("marginal_hits", stats.marginal_hits),
        ("key_index_builds", stats.key_index_builds),
        ("key_index_hits", stats.key_index_hits),
    ] {
        assert_eq!(
            snapshot.counter(&format!("engine.cache.{name}")),
            Some(value as u64),
            "unified snapshot disagrees with CacheStats on {name}"
        );
        checks += 1;
    }

    // Every from-scratch build recorded exactly one latency span.
    for (artifact, counter) in [
        ("rank_context", "rank_context_builds"),
        ("preference_matrix", "preference_builds"),
        ("coclustering", "coclustering_builds"),
        ("marginals", "marginal_builds"),
        ("key_index", "key_index_builds"),
    ] {
        assert_builds_spanned(&snapshot, artifact, counter);
        checks += 1;
    }

    // Every query recorded exactly one latency sample, whatever its kind.
    let recorded: u64 = [
        "set_consensus",
        "topk",
        "aggregate",
        "clustering",
        "baseline",
    ]
    .iter()
    .filter_map(|kind| snapshot.histogram(&format!("engine.query.{kind}")))
    .map(|h| h.count)
    .sum();
    assert_eq!(
        recorded, run.queries_issued,
        "query-latency histograms disagree with the number of queries issued"
    );

    // ... and a matching start/finish event pair in the flight recorder.
    let events = obs.drain_events();
    assert!(
        obs.events_recorded() <= EVENT_CAPACITY as u64,
        "workload overflowed the flight recorder; event counts are unreliable"
    );
    let count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(count(EventKind::QueryStart), run.queries_issued);
    assert_eq!(count(EventKind::QueryFinish), run.queries_issued);
    assert_eq!(
        count(EventKind::EpochPublish),
        STEPS as u64,
        "each applied delta must publish exactly one epoch event"
    );
    assert_eq!(
        count(EventKind::WalAppend),
        STEPS as u64,
        "each applied delta must append exactly one WAL record"
    );

    // The live gauges folded from Health agree with the epoch reached.
    assert_eq!(snapshot.gauge("live.epoch"), Some(STEPS as u64));
    checks + 6
}

/// One chaos fault schedule: a permanent outage degrades the engine (the
/// transition lands in the flight recorder), clearing it recovers (ditto),
/// and the served answers never waver from the reference.
fn check_health_transitions(tree: &AndXorTree, seed: u64, probe: &[Query], plain: &Run) -> usize {
    let vfs = FaultVfs::new();
    let obs = Obs::with_event_capacity(EVENT_CAPACITY);
    let live = LiveEngine::new_durable_with(
        build_engine(tree, seed, obs.clone()),
        Path::new(DIR),
        options(&vfs, obs.clone()),
    )
    .expect("fresh in-memory store is creatable");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E_55ED);
    let delta = random_live_delta(live.snapshot().tree(), 0, &mut rng);

    // Lights out: every filesystem operation fails until further notice.
    vfs.fail_at(vfs.op_count(), io::ErrorKind::StorageFull, true);
    let _ = obs.drain_events();
    assert!(
        live.apply(&delta).is_err(),
        "a write during a permanent outage was acknowledged"
    );
    let events = obs.drain_events();
    assert!(
        events.iter().any(|e| e.kind == EventKind::Degraded),
        "entering degraded mode left no flight-recorder event: {events:?}"
    );
    assert_eq!(
        live.snapshot().run_batch_serial(probe),
        plain.answers[0],
        "a degraded engine served different answers"
    );

    // The outage ends; recovery must leave its own trace.
    vfs.clear_faults();
    let health = live
        .try_recover()
        .expect("recovery succeeds once the outage ends");
    assert!(health.is_healthy(), "recovery left the engine degraded");
    let events = obs.drain_events();
    assert!(
        events.iter().any(|e| e.kind == EventKind::Recovered),
        "recovering left no flight-recorder event: {events:?}"
    );
    5
}

/// The full observability conformance suite for one seed. Returns the
/// number of assertions performed.
pub fn check_observability(tree: &AndXorTree, seed: u64) -> usize {
    let n = tree.keys().len();
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let obs = Obs::with_event_capacity(EVENT_CAPACITY);
    let instrumented = run_workload(tree, seed, &probe, &obs);
    let plain = run_workload(tree, seed, &probe, &Obs::disabled());
    let mut checks = check_bit_transparency(&instrumented, &plain);
    checks += check_counter_conservation(&instrumented, &obs);
    checks += check_health_transitions(tree, seed, &probe, &plain);
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn observability_conformance_holds_on_one_fixture() {
        let checks = check_observability(&fixtures::small_bid_tree(3), 3);
        assert!(checks > 20, "performed only {checks} checks");
    }
}
