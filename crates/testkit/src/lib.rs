//! Conformance-testing toolkit for the consensus-pdb workspace.
//!
//! The paper's value proposition is that each polynomial-time consensus
//! algorithm computes something *definitional*: the answer minimising the
//! expected distance to the answers of the possible worlds. That definition
//! is directly executable — exponentially — by enumerating worlds and
//! candidate answers. This crate packages:
//!
//! * [`fixtures`] — deterministic families of small probabilistic databases
//!   (tuple-independent, BID, group-by, clustering), sized so exhaustive
//!   enumeration stays cheap, parameterised by a single seed;
//! * [`conformance`] — an oracle runner that cross-checks every consensus
//!   algorithm (set symmetric-difference, Jaccard, Top-k under
//!   symmetric-difference / intersection / footrule / Kendall, group-by
//!   aggregates, and clustering) against brute-force enumeration.
//!
//! The root-level `tests/conformance_oracle.rs` suite sweeps these checks
//! over many seeds and is the repo's standing conformance gate: any future
//! refactor or optimisation of a consensus algorithm must keep it green.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod conformance;
pub mod fixtures;
pub mod observability;
pub mod replication;

/// Absolute tolerance used by all exact-equality conformance checks.
///
/// The algorithms and the oracles accumulate floating-point error through
/// different summation orders, so exact closed forms and brute-force
/// enumerations agree only up to rounding.
pub const TOL: f64 = 1e-9;
