//! The chaos harness: seeded fault schedules swept over every I/O call
//! site of a durable [`cpdb_live::LiveEngine`].
//!
//! The protocol mirrors the other conformance checks: a **reference run**
//! first drives a fault-free engine over a [`cpdb_store::FaultVfs`],
//! recording the delta sequence, the probe answers published at every
//! epoch, and the total number of filesystem operations the workload
//! performs. The **fault sweep** then replays the identical workload once
//! per (operation index × fault mode), arming a single fault at that
//! index, and asserts the full robustness contract at every divergence
//! point:
//!
//! * **No corrupt answer is ever served.** At every observation point the
//!   served answers are bit-identical to the reference answers for the
//!   served epoch — degraded engines keep serving the last published
//!   epoch, never a torn one.
//! * **Degraded writes touch no disk.** Once degraded, a refused write
//!   performs zero filesystem operations.
//! * **Recovery restores service.** When the outage ends
//!   ([`FaultVfs::clear_faults`](cpdb_store::FaultVfs::clear_faults) /
//!   [`crash`](cpdb_store::FaultVfs::crash)),
//!   [`try_recover`](cpdb_live::LiveEngine::try_recover) (or a reopen)
//!   resumes exactly where the engine left off, and the completed run is
//!   bit-identical to the never-faulted reference — including after a
//!   final simulated power cut, which also proves no orphan WAL record or
//!   half-renamed snapshot survives.
//!
//! [`check_fault_sweep`] is the strided exhaustive sweep used by the
//! `chaos_sweep` suite; [`check_fault_recovery`] runs one schedule and is
//! the entry point for property-based tests.

use crate::conformance::{live_probe, random_live_delta};
use cpdb_andxor::{AndXorTree, TreeDelta};
use cpdb_engine::{Answer, ConsensusEngine, ConsensusEngineBuilder, EngineError, Query};
use cpdb_live::{LiveEngine, LiveError};
use cpdb_store::{FaultVfs, RetryPolicy, StoreOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Deltas applied per run (each publishing one epoch).
const STEPS: usize = 3;
/// The delta index after which every run takes a compacting snapshot, so
/// the sweep covers the snapshot-write and WAL-compaction pipelines, not
/// just appends.
const PERSIST_AFTER: usize = 1;
const KENDALL_SAMPLES: usize = 64;
/// Store directory inside the in-memory [`FaultVfs`] (each run gets a
/// fresh filesystem, so the fixed path never collides).
const DIR: &str = "/chaos/live";

/// One single-fault schedule injected into a replayed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// A one-shot `EINTR`-style failure. The bounded retry in
    /// [`cpdb_store::RetryPolicy`] must absorb it invisibly on every
    /// retried path; unretried paths must still recover like any other
    /// fault.
    TransientOnce,
    /// A persistent `ENOSPC`-style outage: the faulted operation and every
    /// later one fail until the schedule is cleared.
    Permanent,
    /// A torn write followed by a persistent outage: the first faulted
    /// write persists half its buffer, modelling an in-page tear.
    TornWrite,
    /// Simulated power loss: every operation from the index on fails, then
    /// the machine reboots ([`FaultVfs::crash`](cpdb_store::FaultVfs::crash))
    /// and the store is reopened.
    PowerCut,
}

/// Every fault mode, in sweep order.
pub const FAULT_MODES: [FaultMode; 4] = [
    FaultMode::TransientOnce,
    FaultMode::Permanent,
    FaultMode::TornWrite,
    FaultMode::PowerCut,
];

/// The recorded fault-free workload the sweep replays.
struct Reference {
    deltas: Vec<TreeDelta>,
    /// `answers[e]` = probe answers published at epoch `e` (index 0 is the
    /// freshly created engine).
    answers: Vec<Vec<Result<Answer, EngineError>>>,
    total_ops: u64,
}

fn build_engine(tree: &AndXorTree, seed: u64) -> ConsensusEngine {
    let n = tree.keys().len();
    ConsensusEngineBuilder::new(tree.clone())
        .seed(seed)
        .kendall_distance_samples(KENDALL_SAMPLES)
        .k_range(1..=n.max(1))
        .build()
        .expect("chaos conformance configuration is valid")
}

fn options(vfs: &FaultVfs) -> StoreOptions {
    StoreOptions {
        vfs: Arc::new(vfs.clone()),
        retry: RetryPolicy::no_delay(3),
        ..StoreOptions::default()
    }
}

/// Drives the fault-free workload, recording deltas, per-epoch answers and
/// the operation-trace length, then proves the never-faulted store itself
/// survives a power cut (the baseline the faulted runs are held to).
fn reference_run(tree: &AndXorTree, seed: u64, probe: &[Query]) -> Reference {
    let vfs = FaultVfs::new();
    let dir = Path::new(DIR);
    let live = LiveEngine::new_durable_with(build_engine(tree, seed), dir, options(&vfs))
        .expect("fresh in-memory store is creatable");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5EED);
    let mut deltas = Vec::new();
    let mut answers = vec![live.snapshot().run_batch_serial(probe)];
    for step in 0..STEPS {
        let delta = random_live_delta(live.snapshot().tree(), step, &mut rng);
        live.apply(&delta).expect("generated deltas are valid");
        deltas.push(delta);
        answers.push(live.snapshot().run_batch_serial(probe));
        if step == PERSIST_AFTER {
            live.persist_snapshot()
                .expect("fault-free snapshot write succeeds");
        }
    }
    assert_eq!(live.epoch(), STEPS as u64);
    drop(live);
    let total_ops = vfs.op_count();

    vfs.crash();
    let reopened = LiveEngine::open_with(dir, options(&vfs))
        .expect("the never-faulted store reopens after a power cut");
    assert_eq!(
        reopened.epoch(),
        STEPS as u64,
        "the never-faulted store lost an acknowledged epoch across a power cut"
    );
    assert_eq!(
        reopened.snapshot().run_batch_serial(probe),
        answers[STEPS],
        "the never-faulted store changed answers across a power cut"
    );

    Reference {
        deltas,
        answers,
        total_ops,
    }
}

/// Final act of a power-cut run: the served epoch must survive the reboot
/// bit-identically. Returns the number of checks performed.
fn power_cut_epilogue(
    live: LiveEngine,
    vfs: &FaultVfs,
    probe: &[Query],
    reference: &Reference,
    served_epoch: usize,
) -> usize {
    assert_eq!(live.epoch(), served_epoch as u64);
    drop(live);
    vfs.crash();
    let reopened = LiveEngine::open_with(Path::new(DIR), options(vfs))
        .expect("reopening after a power cut succeeds");
    assert_eq!(
        reopened.epoch(),
        served_epoch as u64,
        "power-cut recovery lost an acknowledged epoch"
    );
    assert_eq!(
        reopened.snapshot().run_batch_serial(probe),
        reference.answers[served_epoch],
        "power-cut recovery changed answers"
    );
    3
}

/// Removes every file in the store directory and makes the removals
/// durable — the reset used when a fault interrupted creation so early
/// that nothing coherent survived.
fn wipe(vfs: &FaultVfs, dir: &Path) {
    let v: Arc<dyn cpdb_store::Vfs> = Arc::new(vfs.clone());
    if let Ok(names) = v.read_dir_names(dir) {
        for name in names {
            let _ = v.remove_file(&dir.join(name));
        }
    }
    let _ = v.sync_dir(dir);
}

/// Replays the recorded workload with one fault armed at operation
/// `at_op`, asserting the robustness contract at every divergence point.
/// Returns the number of checks performed.
fn faulted_run(
    tree: &AndXorTree,
    seed: u64,
    probe: &[Query],
    reference: &Reference,
    mode: FaultMode,
    at_op: u64,
) -> usize {
    let vfs = FaultVfs::new();
    match mode {
        FaultMode::TransientOnce => vfs.fail_at(at_op, io::ErrorKind::Interrupted, false),
        FaultMode::Permanent => vfs.fail_at(at_op, io::ErrorKind::StorageFull, true),
        FaultMode::TornWrite => vfs.short_write_at(at_op, io::ErrorKind::StorageFull),
        FaultMode::PowerCut => vfs.halt_at(at_op),
    }
    let dir = Path::new(DIR);
    let mut checks = 0;

    // Creation phase. A fault here may abort the constructor; the outage
    // then ends and the store must either reopen at epoch 0 (the epoch-0
    // snapshot became durable) or refuse cleanly, in which case nothing
    // coherent survived and a fresh creation must succeed.
    let live = match LiveEngine::new_durable_with(build_engine(tree, seed), dir, options(&vfs)) {
        Ok(live) => live,
        Err(e) => {
            assert!(
                !matches!(e, LiveError::Engine(_)),
                "fault injection surfaced as an engine error during creation: {e}"
            );
            checks += 1;
            if mode == FaultMode::PowerCut {
                vfs.crash();
            } else {
                vfs.clear_faults();
            }
            match LiveEngine::open_with(dir, options(&vfs)) {
                Ok(live) => {
                    assert_eq!(
                        live.epoch(),
                        0,
                        "a partially created store reopened at a non-zero epoch"
                    );
                    assert_eq!(
                        live.snapshot().run_batch_serial(probe),
                        reference.answers[0],
                        "a partially created store reopened with wrong answers"
                    );
                    checks += 2;
                    live
                }
                Err(_) => {
                    wipe(&vfs, dir);
                    checks += 1;
                    LiveEngine::new_durable_with(build_engine(tree, seed), dir, options(&vfs))
                        .expect("re-creation succeeds once the fault cleared")
                }
            }
        }
    };

    for (step, delta) in reference.deltas.iter().enumerate() {
        let mut recovered_once = false;
        loop {
            match live.apply(delta) {
                Ok(applied) => {
                    assert_eq!(
                        applied.epoch,
                        step as u64 + 1,
                        "replayed delta published the wrong epoch"
                    );
                    break;
                }
                Err(LiveError::Degraded(_)) if !recovered_once => {
                    recovered_once = true;
                    assert!(
                        mode != FaultMode::TransientOnce,
                        "a one-shot transient fault on the append path escaped the retry net"
                    );
                    // Readers keep serving the last published epoch,
                    // bit-identically to the fault-free reference.
                    assert_eq!(
                        live.epoch(),
                        step as u64,
                        "a failed delta still advanced the published epoch"
                    );
                    assert_eq!(
                        live.snapshot().run_batch_serial(probe),
                        reference.answers[step],
                        "a degraded engine served corrupt answers"
                    );
                    assert!(
                        !live.health().is_healthy(),
                        "health() stayed green while writes were refused"
                    );
                    // Refused writes must touch no disk.
                    let ops_before = vfs.op_count();
                    assert!(
                        matches!(live.apply(delta), Err(LiveError::Degraded(_))),
                        "a second write on a degraded engine was not refused"
                    );
                    assert_eq!(
                        vfs.op_count(),
                        ops_before,
                        "a refused degraded write still performed I/O"
                    );
                    checks += 5;
                    if mode == FaultMode::PowerCut {
                        return checks + power_cut_epilogue(live, &vfs, probe, reference, step);
                    }
                    vfs.clear_faults();
                    let health = live
                        .try_recover()
                        .expect("recovery succeeds once the outage ends");
                    assert!(
                        health.is_healthy(),
                        "try_recover reported success but health stayed degraded"
                    );
                    checks += 1;
                    // Loop around: the same delta is retried and must land.
                }
                Err(e) => panic!("unexpected error applying step {step}: {e}"),
            }
        }
        assert_eq!(
            live.snapshot().run_batch_serial(probe),
            reference.answers[step + 1],
            "answers diverged from the fault-free reference at epoch {}",
            step + 1
        );
        checks += 1;

        if step == PERSIST_AFTER {
            match live.persist_snapshot() {
                Ok(persisted) => assert_eq!(
                    persisted,
                    Some(step as u64 + 1),
                    "snapshot persisted the wrong epoch"
                ),
                Err(_) if mode == FaultMode::PowerCut => {
                    return checks + power_cut_epilogue(live, &vfs, probe, reference, step + 1);
                }
                Err(_) => {
                    // A failed compaction parks in health without touching
                    // the write path; once the outage ends a retry lands.
                    assert!(
                        !live.health().is_healthy(),
                        "a failed compaction left health() green"
                    );
                    assert!(
                        live.take_compaction_error().is_some(),
                        "a failed compaction parked no error"
                    );
                    vfs.clear_faults();
                    live.persist_snapshot()
                        .expect("snapshot retry succeeds once the outage ends");
                    checks += 2;
                }
            }
            checks += 1;
        }
    }

    // The full sequence landed; the post-recovery store must be
    // bit-identical to the never-faulted reference — including across one
    // final power cut, which also proves no orphan WAL record or
    // half-renamed snapshot survived the faults.
    assert_eq!(live.epoch(), STEPS as u64);
    checks + power_cut_epilogue(live, &vfs, probe, reference, STEPS)
}

/// Strided sweep of every fault mode over the workload's operation trace:
/// replay the recorded workload once per (operation index × mode), with
/// the sweep phase-shifted by `seed` so different seeds cover different
/// residues. `stride` = 1 is exhaustive. Returns the number of
/// assertions performed.
pub fn check_fault_sweep(tree: &AndXorTree, seed: u64, stride: usize) -> usize {
    let n = tree.keys().len();
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let reference = reference_run(tree, seed, &probe);
    let stride = stride.max(1) as u64;
    let mut checks = 3; // the reference run's own power-cut parity checks
    let mut at_op = seed % stride;
    while at_op < reference.total_ops {
        for mode in FAULT_MODES {
            checks += faulted_run(tree, seed, &probe, &reference, mode, at_op);
        }
        at_op += stride;
    }
    checks
}

/// One fault schedule drawn from `schedule` (operation index and mode),
/// for property-based sweeps over random trees. Returns the number of
/// assertions performed.
pub fn check_fault_recovery(tree: &AndXorTree, seed: u64, schedule: u64) -> usize {
    let n = tree.keys().len();
    let probe = live_probe(&[1, 2.min(n.max(1))]);
    let reference = reference_run(tree, seed, &probe);
    let at_op = schedule % reference.total_ops;
    let mode = FAULT_MODES[(schedule / reference.total_ops) as usize % FAULT_MODES.len()];
    3 + faulted_run(tree, seed, &probe, &reference, mode, at_op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn sweep_covers_every_mode_on_one_fixture() {
        // A coarse stride keeps this unit test fast; the dedicated
        // chaos_sweep suite runs the fine-grained sweep.
        let checks = check_fault_sweep(&fixtures::small_bid_tree(0), 0, 11);
        assert!(checks > 50, "sweep performed only {checks} checks");
    }

    #[test]
    fn single_schedule_check_runs() {
        let checks = check_fault_recovery(&fixtures::small_tuple_independent_tree(1), 1, 97);
        assert!(checks > 3, "single schedule performed only {checks} checks");
    }
}
