//! # cpdb-obs — unified observability for the consensus-pdb stack
//!
//! One crate unifies the stack's telemetry: a **metrics registry** of named
//! atomic counters, gauges, and fixed-bucket log-scale latency histograms
//! (lock-free recording through pre-registered handles), **tracing spans**
//! with monotonic timing, and a bounded ring-buffer **flight recorder** of
//! recent events — drainable for post-mortem dumps when a component reports
//! degraded health.
//!
//! The entry point is [`Obs`], a cheaply cloneable handle that is **disabled
//! by default**: a disabled handle hands out inert [`Counter`] / [`Gauge`] /
//! [`Histogram`] handles whose record paths are a single `Option` branch, so
//! instrumented code costs (nearly) nothing when no sink is attached — the
//! `observability` bench gates the instrumented hot query path at ≤ 2% of
//! the uninstrumented baseline. Instrumentation is **bit-transparent**: it
//! observes timing and counts only, never the values a computation produces,
//! so answers are identical with the recorder on or off (pinned by
//! `cpdb_testkit`'s `check_observability` across all conformance seeds).
//!
//! Components pre-register their handles once at attach time
//! ([`Obs::counter`] / [`Obs::gauge`] / [`Obs::histogram`]) and then record
//! without any name lookup; [`Obs::snapshot`] produces a cloneable
//! [`MetricsSnapshot`] with a stable, hand-rolled JSON emitter (same idiom
//! as the `BENCH_*.json` emitters). [`Span`]s time a region and optionally
//! leave start/finish events in the recorder.
//!
//! The crate is a leaf: it depends only on `cpdb_sync`, so every layer —
//! engine, live, store, replica — can carry an [`Obs`] without dependency
//! cycles, and the atomics route through the same facade the model checker
//! instruments under `--cfg cpdb_check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod metrics;
mod recorder;
mod snapshot;
mod span;

pub use metrics::{Counter, Gauge, Histogram};
pub use recorder::{Event, EventKind};
pub use snapshot::{HistogramSnapshot, MetricValue, MetricsSnapshot};
pub use span::Span;

use cpdb_sync::Arc;
use metrics::Registry;
use recorder::FlightRecorder;

/// Default flight-recorder capacity (events retained before the oldest is
/// overwritten).
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// The shared observability sink: a metrics registry plus a flight recorder.
///
/// `Obs` is a handle (`Clone` is an `Arc` bump); a `Default`-constructed or
/// [`disabled`](Obs::disabled) handle has **no sink attached** — every
/// registration returns an inert handle and every record call is a single
/// branch. Attach one [`enabled`](Obs::enabled) handle at construction time
/// and clone it into each layer.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

#[derive(Debug)]
struct ObsInner {
    registry: Registry,
    recorder: FlightRecorder,
}

impl Obs {
    /// A handle with no sink attached: registrations return inert handles,
    /// records are no-ops. Identical to `Obs::default()`.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A live sink with the [`DEFAULT_EVENT_CAPACITY`] flight recorder.
    pub fn enabled() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A live sink whose flight recorder retains the last `capacity` events
    /// (a capacity of `0` is clamped to `1`).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::new(),
                recorder: FlightRecorder::new(capacity.max(1)),
            })),
        }
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) the counter `name`. On a disabled handle the
    /// returned counter is inert.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// Registers (or retrieves) the gauge `name`. On a disabled handle the
    /// returned gauge is inert.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Registers (or retrieves) the log-scale latency histogram `name`. On a
    /// disabled handle the returned histogram is inert.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Histogram::default(),
        }
    }

    /// Records a flight-recorder event with a pre-built detail string.
    /// Prefer [`event_with`](Self::event_with) when building the detail
    /// requires formatting — it skips the formatting entirely on a disabled
    /// handle.
    pub fn event(&self, kind: EventKind, detail: impl Into<String>) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(kind, detail.into());
        }
    }

    /// Records a flight-recorder event, building the detail string lazily so
    /// a disabled handle pays nothing for it.
    pub fn event_with(&self, kind: EventKind, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(kind, detail());
        }
    }

    /// Opens a [`Span`] that records its elapsed time into `histogram` when
    /// dropped. Inert on a disabled handle.
    pub fn span(&self, histogram: &Histogram) -> Span {
        Span::timing(self, histogram)
    }

    /// Opens a [`Span`] that records a `start` event now, and on drop records
    /// its elapsed time into `histogram` plus a `finish` event carrying
    /// `detail` and the duration. Inert on a disabled handle.
    pub fn span_with_events(
        &self,
        histogram: &Histogram,
        start: EventKind,
        finish: EventKind,
        detail: impl FnOnce() -> String,
    ) -> Span {
        Span::with_events(self, histogram, start, finish, detail)
    }

    /// Opens a [`Span`] that, on drop, records its elapsed time into
    /// `histogram` and a single `finish` event carrying `detail` and the
    /// duration (no start event — the shape artifact builds want). Inert on
    /// a disabled handle.
    pub fn span_finishing(
        &self,
        histogram: &Histogram,
        finish: EventKind,
        detail: impl FnOnce() -> String,
    ) -> Span {
        Span::finishing(self, histogram, finish, detail)
    }

    /// A consistent, cloneable snapshot of every registered metric, sorted by
    /// name. Empty on a disabled handle.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// The most recent `n` flight-recorder events, oldest first (the ring
    /// buffer is left untouched). Empty on a disabled handle.
    pub fn recent_events(&self, n: usize) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.recorder.recent(n),
            None => Vec::new(),
        }
    }

    /// Drains the flight recorder for a post-mortem dump: every retained
    /// event, oldest first, leaving the buffer empty.
    pub fn drain_events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.recorder.drain(),
            None => Vec::new(),
        }
    }

    /// Total number of events ever recorded (including ones the ring has
    /// since evicted).
    pub fn events_recorded(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.recorder.recorded(),
            None => 0,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_handles_are_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("x");
        c.incr();
        assert_eq!(c.get(), 0);
        let g = obs.gauge("y");
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = obs.histogram("z");
        h.record(Duration::from_micros(3));
        assert_eq!(h.count(), 0);
        obs.event(EventKind::EpochPublish, "epoch 1");
        assert!(obs.recent_events(10).is_empty());
        assert!(obs.snapshot().is_empty());
        assert_eq!(obs.events_recorded(), 0);
    }

    #[test]
    fn counters_and_gauges_register_once() {
        let obs = Obs::enabled();
        let a = obs.counter("layer.ops");
        let b = obs.counter("layer.ops");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        let g = obs.gauge("layer.lag");
        g.set(11);
        assert_eq!(obs.gauge("layer.lag").get(), 11);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("layer.ops"), Some(4));
        assert_eq!(snap.gauge("layer.lag"), Some(11));
    }

    #[test]
    fn histograms_bucket_on_a_log_scale() {
        let obs = Obs::enabled();
        let h = obs.histogram("lat");
        for us in [1u64, 10, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 4);
        let snap = obs.snapshot();
        let hs = snap.histogram("lat").expect("registered");
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum_ns, 1_111_000);
        // The p100 upper bound covers the largest sample.
        assert!(hs.quantile_ns(1.0) >= 1_000_000);
        // The p25 bound is no larger than the smallest bucket's bound.
        assert!(hs.quantile_ns(0.25) < 2_048);
    }

    #[test]
    fn spans_time_into_histograms_and_leave_events() {
        let obs = Obs::enabled();
        let h = obs.histogram("span.lat");
        {
            let _s =
                obs.span_with_events(&h, EventKind::QueryStart, EventKind::QueryFinish, || {
                    "topk".to_string()
                });
        }
        assert_eq!(h.count(), 1);
        let events = obs.recent_events(10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::QueryStart);
        assert_eq!(events[1].kind, EventKind::QueryFinish);
        assert!(events[1].detail.contains("topk"));
    }

    #[test]
    fn recorder_is_bounded_and_drainable() {
        let obs = Obs::with_event_capacity(4);
        for i in 0..10 {
            obs.event(EventKind::WalAppend, format!("epoch {i}"));
        }
        let recent = obs.recent_events(100);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].detail, "epoch 6");
        assert_eq!(recent[3].detail, "epoch 9");
        assert_eq!(obs.events_recorded(), 10);
        // Sequence numbers keep counting across evictions.
        assert_eq!(recent[3].seq, 9);
        let drained = obs.drain_events();
        assert_eq!(drained.len(), 4);
        assert!(obs.recent_events(100).is_empty());
    }

    #[test]
    fn snapshot_json_is_stable_and_sorted() {
        let obs = Obs::enabled();
        obs.counter("b.count").add(2);
        obs.gauge("a.gauge").set(5);
        let json = obs.snapshot().to_json();
        let a = json.find("a.gauge").expect("gauge present");
        let b = json.find("b.count").expect("counter present");
        assert!(a < b, "entries must be sorted by name:\n{json}");
        assert_eq!(json, obs.snapshot().to_json(), "emitter must be stable");
    }
}
