//! The metrics registry and its lock-free recording handles.
//!
//! Registration takes a short-lived lock on the name table; recording never
//! does — every handle is an `Arc` straight to the metric's atomics, so hot
//! paths pre-register once and then record with relaxed atomic ops (or a
//! single `Option` branch when no sink is attached).

use crate::snapshot::{HistogramSnapshot, MetricValue, MetricsSnapshot};
use cpdb_sync::atomic::{AtomicU64, Ordering::Relaxed};
use cpdb_sync::{Arc, Mutex};
use std::collections::BTreeMap;
use std::sync::PoisonError;
use std::time::Duration;

/// A monotonically increasing counter. Inert when obtained from a disabled
/// [`crate::Obs`] handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Relaxed);
        }
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count (`0` on an inert handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Relaxed))
    }
}

/// A last-value-wins gauge. Inert when obtained from a disabled
/// [`crate::Obs`] handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Publishes a new value.
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Relaxed);
        }
    }

    /// The current value (`0` on an inert handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Relaxed))
    }
}

/// Number of histogram buckets: bucket `0` holds zero-duration samples,
/// bucket `i ∈ 1..=64` holds samples with `⌊log₂ ns⌋ = i − 1`, i.e. the
/// nanosecond range `[2^(i−1), 2^i)`. Fixed and log-scale, so recording is
/// one `leading_zeros` plus two relaxed `fetch_add`s — no allocation, no
/// comparison ladder.
pub(crate) const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, cell) in self.buckets.iter().enumerate() {
            let count = cell.load(Relaxed);
            if count > 0 {
                buckets.push((bucket_upper_ns(i), count));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Relaxed),
            sum_ns: self.sum_ns.load(Relaxed),
            buckets,
        }
    }
}

/// The inclusive upper bound (in nanoseconds) of bucket `i`.
pub(crate) fn bucket_upper_ns(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// The bucket index for a sample of `ns` nanoseconds.
fn bucket_index(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

/// A fixed-bucket log-scale latency histogram. Recording is lock-free
/// (relaxed atomics on pre-sized buckets); inert when obtained from a
/// disabled [`crate::Obs`] handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// Records one duration sample.
    pub fn record(&self, elapsed: Duration) {
        if let Some(cells) = &self.0 {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            cells.buckets[bucket_index(ns)].fetch_add(1, Relaxed);
            cells.count.fetch_add(1, Relaxed);
            cells.sum_ns.fetch_add(ns, Relaxed);
        }
    }

    /// Number of samples recorded (`0` on an inert handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count.load(Relaxed))
    }

    /// Whether this handle actually records (i.e. came from an enabled
    /// sink).
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCells>),
}

/// The name table. Held briefly for registration and snapshotting only —
/// recording goes straight through the `Arc` handles.
#[derive(Debug)]
pub(crate) struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn table(&self) -> cpdb_sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned registry cannot be torn: every critical section is a
        // map insert or read.
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut table = self.table();
        match table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
        {
            Metric::Counter(cell) => Counter(Some(Arc::clone(cell))),
            // Name already taken by another kind: hand out a detached
            // counter rather than corrupting the registered metric.
            _ => Counter(Some(Arc::new(AtomicU64::new(0)))),
        }
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        let mut table = self.table();
        match table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Metric::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            _ => Gauge(Some(Arc::new(AtomicU64::new(0)))),
        }
    }

    pub(crate) fn histogram(&self, name: &str) -> Histogram {
        let mut table = self.table();
        match table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCells::new())))
        {
            Metric::Histogram(cells) => Histogram(Some(Arc::clone(cells))),
            _ => Histogram(Some(Arc::new(HistogramCells::new()))),
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let table = self.table();
        let entries = table
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(cell) => MetricValue::Counter(cell.load(Relaxed)),
                    Metric::Gauge(cell) => MetricValue::Gauge(cell.load(Relaxed)),
                    Metric::Histogram(cells) => MetricValue::Histogram(cells.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_their_ranges() {
        for ns in [0u64, 1, 7, 1000, 123_456_789, u64::MAX] {
            let i = bucket_index(ns);
            assert!(
                ns <= bucket_upper_ns(i),
                "ns {ns} above bound of bucket {i}"
            );
            if i > 0 {
                assert!(ns > bucket_upper_ns(i - 1));
            }
        }
    }

    #[test]
    fn kind_mismatch_hands_out_detached_handles() {
        let registry = Registry::new();
        let counter = registry.counter("m");
        counter.add(2);
        let gauge = registry.gauge("m");
        gauge.set(9);
        // The registered counter is unharmed; the mismatched gauge floats.
        assert_eq!(registry.counter("m").get(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("m"), Some(2));
        assert_eq!(snap.gauge("m"), None);
    }
}
