//! The flight recorder: a bounded ring buffer of recent events.
//!
//! Events are rare relative to metric records (epoch publishes, WAL
//! appends, retries, health transitions — not per-sample timings), so a
//! short-lived mutex around a `VecDeque` is cheap; the `observability`
//! bench reports its throughput so a regression here is visible.

use cpdb_sync::atomic::{AtomicU64, Ordering::Relaxed};
use cpdb_sync::Mutex;
use std::collections::VecDeque;
use std::sync::PoisonError;
use std::time::Instant;

/// What happened. The variants cover the stack's layer transitions: query
/// lifecycle and artifact builds (engine), epoch/compaction/health (live),
/// WAL and retry traffic (store), and replication (primary/follower).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A query entered the engine.
    QueryStart,
    /// A query left the engine (detail carries the elapsed time).
    QueryFinish,
    /// A shared artifact was built from scratch.
    ArtifactBuild,
    /// A new epoch became the serving snapshot.
    EpochPublish,
    /// A delta record was appended to the WAL.
    WalAppend,
    /// The WAL was fsynced.
    WalFsync,
    /// A snapshot was written (compaction or explicit persist).
    SnapshotWrite,
    /// A background compaction failed (detail carries the failing epoch).
    CompactionFailed,
    /// A transient store failure was retried.
    RetryAttempt,
    /// The live engine entered degraded mode.
    Degraded,
    /// The live engine recovered from degraded mode.
    Recovered,
    /// The primary shipped WAL segments to the outbox.
    Ship,
    /// A follower synced from the outbox.
    Sync,
    /// A follower was promoted to primary.
    Promote,
    /// A follower quarantined a corrupt outbox artifact.
    Quarantine,
}

impl EventKind {
    /// A stable lowercase name for dumps and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::QueryStart => "query_start",
            EventKind::QueryFinish => "query_finish",
            EventKind::ArtifactBuild => "artifact_build",
            EventKind::EpochPublish => "epoch_publish",
            EventKind::WalAppend => "wal_append",
            EventKind::WalFsync => "wal_fsync",
            EventKind::SnapshotWrite => "snapshot_write",
            EventKind::CompactionFailed => "compaction_failed",
            EventKind::RetryAttempt => "retry_attempt",
            EventKind::Degraded => "degraded",
            EventKind::Recovered => "recovered",
            EventKind::Ship => "ship",
            EventKind::Sync => "sync",
            EventKind::Promote => "promote",
            EventKind::Quarantine => "quarantine",
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (counts every event ever recorded, so gaps
    /// in a drained dump reveal ring evictions).
    pub seq: u64,
    /// Microseconds since the recorder was created (monotonic clock).
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context: the epoch, the artifact name, the error, …
    pub detail: String,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>6}] +{:>10}µs {:<17} {}",
            self.seq, self.at_us, self.kind, self.detail
        )
    }
}

#[derive(Debug)]
pub(crate) struct FlightRecorder {
    start: Instant,
    capacity: usize,
    recorded: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> Self {
        FlightRecorder {
            start: Instant::now(),
            capacity,
            recorded: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    fn lock(&self) -> cpdb_sync::MutexGuard<'_, VecDeque<Event>> {
        // A poisoned ring cannot be torn: every critical section is a
        // push/pop pair or a clone.
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn record(&self, kind: EventKind, detail: String) {
        let at_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let seq = self.recorded.fetch_add(1, Relaxed);
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(Event {
            seq,
            at_us,
            kind,
            detail,
        });
    }

    pub(crate) fn recent(&self, n: usize) -> Vec<Event> {
        let ring = self.lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    pub(crate) fn drain(&self) -> Vec<Event> {
        self.lock().drain(..).collect()
    }

    pub(crate) fn recorded(&self) -> u64 {
        self.recorded.load(Relaxed)
    }
}
