//! The cloneable metrics snapshot and its stable text emitters.

use crate::metrics::bucket_upper_ns;

/// A point-in-time copy of one histogram: total count, total nanoseconds,
/// and the non-empty log-scale buckets as `(inclusive upper bound ns,
/// count)` pairs, ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (`0.0` when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile in nanoseconds (the bound of the
    /// first bucket whose cumulative count reaches `q · count`; `0` when
    /// empty). `q` is clamped to `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(upper, count) in &self.buckets {
            seen += count;
            if seen >= target {
                return upper;
            }
        }
        bucket_upper_ns(crate::metrics::HISTOGRAM_BUCKETS - 1)
    }
}

/// The value of one registered metric inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-value-wins gauge.
    Gauge(u64),
    /// A latency histogram.
    Histogram(HistogramSnapshot),
}

/// A consistent, cloneable snapshot of every registered metric, sorted by
/// name. The one coherent read path for the stack's telemetry: layer
/// surfaces that predate `cpdb_obs` (`CacheStats`, `Health`,
/// `ReplicationStatus`) fold their values in as namespaced entries via
/// [`push_counter`](Self::push_counter) / [`push_gauge`](Self::push_gauge).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub(crate) entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(name, value)` entries, ascending by name.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// The counter `name`, if registered (or folded in).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The gauge `name`, if registered (or folded in).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// Folds a counter value in under `name` (replacing an existing entry of
    /// that name), keeping the snapshot sorted.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.push(name, MetricValue::Counter(value));
    }

    /// Folds a gauge value in under `name` (replacing an existing entry of
    /// that name), keeping the snapshot sorted.
    pub fn push_gauge(&mut self, name: &str, value: u64) {
        self.push(name, MetricValue::Gauge(value));
    }

    fn push(&mut self, name: &str, value: MetricValue) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(at) => self.entries[at].1 = value,
            Err(at) => self.entries.insert(at, (name.to_string(), value)),
        }
    }

    /// The stable JSON text form (hand-rolled, sorted by name): an object
    /// mapping each metric name to `{"type": …, …}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": {\n");
        let body: Vec<String> = self
            .entries
            .iter()
            .map(|(name, value)| {
                let payload = match value {
                    MetricValue::Counter(c) => {
                        format!("{{\"type\": \"counter\", \"value\": {c}}}")
                    }
                    MetricValue::Gauge(g) => format!("{{\"type\": \"gauge\", \"value\": {g}}}"),
                    MetricValue::Histogram(h) => {
                        let buckets: Vec<String> = h
                            .buckets
                            .iter()
                            .map(|(upper, count)| format!("[{upper}, {count}]"))
                            .collect();
                        format!(
                            "{{\"type\": \"histogram\", \"count\": {}, \"sum_ns\": {}, \
                             \"buckets\": [{}]}}",
                            h.count,
                            h.sum_ns,
                            buckets.join(", ")
                        )
                    }
                };
                format!("    \"{name}\": {payload}")
            })
            .collect();
        out.push_str(&body.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }

    /// A human-readable dump: one line per metric, histograms summarised as
    /// count / mean / p50 / p99 in microseconds.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("counter    {name:<44} {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("gauge      {name:<44} {g}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "histogram  {name:<44} count={} mean={:.1}µs p50≤{:.1}µs p99≤{:.1}µs\n",
                        h.count,
                        h.mean_ns() / 1_000.0,
                        h.quantile_ns(0.5) as f64 / 1_000.0,
                        h.quantile_ns(0.99) as f64 / 1_000.0,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_entries_sorted_and_replaces() {
        let mut snap = MetricsSnapshot::default();
        snap.push_counter("b", 1);
        snap.push_gauge("a", 2);
        snap.push_counter("c", 3);
        snap.push_counter("b", 9);
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(snap.counter("b"), Some(9));
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let h = HistogramSnapshot {
            count: 10,
            sum_ns: 0,
            buckets: vec![(127, 9), (1023, 1)],
        };
        assert_eq!(h.quantile_ns(0.5), 127);
        assert_eq!(h.quantile_ns(0.9), 127);
        assert_eq!(h.quantile_ns(0.99), 1023);
        assert_eq!(h.quantile_ns(1.0), 1023);
    }

    #[test]
    fn json_contains_every_metric_kind() {
        let mut snap = MetricsSnapshot::default();
        snap.push_counter("ops", 4);
        snap.push_gauge("lag", 2);
        snap.entries.push((
            "zlat".to_string(),
            MetricValue::Histogram(HistogramSnapshot {
                count: 1,
                sum_ns: 500,
                buckets: vec![(511, 1)],
            }),
        ));
        let json = snap.to_json();
        assert!(json.contains("\"ops\": {\"type\": \"counter\", \"value\": 4}"));
        assert!(json.contains("\"lag\": {\"type\": \"gauge\", \"value\": 2}"));
        assert!(json.contains("\"buckets\": [[511, 1]]"));
        assert!(!snap.to_text().is_empty());
    }
}
