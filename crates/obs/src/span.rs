//! Lightweight tracing spans: monotonic timing guards that record into a
//! histogram (and optionally the flight recorder) on drop.

use crate::metrics::Histogram;
use crate::recorder::EventKind;
use crate::Obs;
use std::time::Instant;

/// A timing guard. Created via [`Obs::span`] /
/// [`Obs::span_with_events`]; on drop it records the elapsed time into its
/// histogram and, when configured, a finish event in the flight recorder.
/// Inert (a no-op on creation *and* drop) when the [`Obs`] handle is
/// disabled, so spans can wrap hot paths unconditionally.
#[derive(Debug, Default)]
pub struct Span {
    state: Option<SpanState>,
}

#[derive(Debug)]
struct SpanState {
    start: Instant,
    histogram: Histogram,
    finish: Option<(Obs, EventKind, String)>,
}

impl Span {
    /// An inert span (what disabled handles produce).
    pub fn inert() -> Self {
        Span { state: None }
    }

    pub(crate) fn timing(obs: &Obs, histogram: &Histogram) -> Self {
        if !obs.is_enabled() || !histogram.is_live() {
            return Span::inert();
        }
        Span {
            state: Some(SpanState {
                start: Instant::now(),
                histogram: histogram.clone(),
                finish: None,
            }),
        }
    }

    pub(crate) fn finishing(
        obs: &Obs,
        histogram: &Histogram,
        finish: EventKind,
        detail: impl FnOnce() -> String,
    ) -> Self {
        if !obs.is_enabled() {
            return Span::inert();
        }
        Span {
            state: Some(SpanState {
                start: Instant::now(),
                histogram: histogram.clone(),
                finish: Some((obs.clone(), finish, detail())),
            }),
        }
    }

    pub(crate) fn with_events(
        obs: &Obs,
        histogram: &Histogram,
        start: EventKind,
        finish: EventKind,
        detail: impl FnOnce() -> String,
    ) -> Self {
        if !obs.is_enabled() {
            return Span::inert();
        }
        let detail = detail();
        obs.event(start, detail.clone());
        Span {
            state: Some(SpanState {
                start: Instant::now(),
                histogram: histogram.clone(),
                finish: Some((obs.clone(), finish, detail)),
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let elapsed = state.start.elapsed();
            state.histogram.record(elapsed);
            if let Some((obs, kind, detail)) = state.finish {
                obs.event(
                    kind,
                    format!("{detail} ({:.1}µs)", elapsed.as_nanos() as f64 / 1_000.0),
                );
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn inert_spans_do_nothing() {
        let obs = Obs::disabled();
        let h = obs.histogram("x");
        drop(obs.span(&h));
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn timing_spans_record_once_on_drop() {
        let obs = Obs::enabled();
        let h = obs.histogram("x");
        {
            let _span = obs.span(&h);
            assert_eq!(h.count(), 0, "span must record on drop, not creation");
        }
        assert_eq!(h.count(), 1);
        assert!(
            obs.recent_events(10).is_empty(),
            "plain spans leave no events"
        );
    }
}
