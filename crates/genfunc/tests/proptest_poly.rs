//! Property-based tests for the polynomial engine.

use cpdb_genfunc::{approx_eq_eps, Poly1, Poly2, Truncation};
use proptest::prelude::*;

fn small_coeffs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 1..8)
}

proptest! {
    /// Multiplication is commutative.
    #[test]
    fn poly1_mul_commutative(a in small_coeffs(), b in small_coeffs()) {
        let pa = Poly1::from_coeffs(a);
        let pb = Poly1::from_coeffs(b);
        let ab = pa.mul_full(&pb);
        let ba = pb.mul_full(&pa);
        for i in 0..ab.len().max(ba.len()) {
            prop_assert!(approx_eq_eps(ab.coeff(i), ba.coeff(i), 1e-9));
        }
    }

    /// Multiplication distributes over addition.
    #[test]
    fn poly1_mul_distributes(a in small_coeffs(), b in small_coeffs(), c in small_coeffs()) {
        let pa = Poly1::from_coeffs(a);
        let pb = Poly1::from_coeffs(b);
        let pc = Poly1::from_coeffs(c);
        let lhs = pa.mul_full(&(&pb + &pc));
        let mut rhs = pa.mul_full(&pb);
        rhs.add_scaled_assign(&pa.mul_full(&pc), 1.0);
        for i in 0..lhs.len().max(rhs.len()) {
            prop_assert!(approx_eq_eps(lhs.coeff(i), rhs.coeff(i), 1e-9));
        }
    }

    /// Evaluation is a ring homomorphism: (p*q)(x) = p(x)*q(x).
    #[test]
    fn poly1_eval_homomorphism(a in small_coeffs(), b in small_coeffs(), x in 0.0f64..2.0) {
        let pa = Poly1::from_coeffs(a);
        let pb = Poly1::from_coeffs(b);
        let prod = pa.mul_full(&pb);
        prop_assert!(approx_eq_eps(prod.eval(x), pa.eval(x) * pb.eval(x), 1e-6));
    }

    /// Truncated products agree with the prefix of the full product.
    #[test]
    fn poly1_truncation_is_prefix(a in small_coeffs(), b in small_coeffs(), k in 0usize..6) {
        let pa = Poly1::from_coeffs(a);
        let pb = Poly1::from_coeffs(b);
        let full = pa.mul_full(&pb);
        let trunc = pa.mul_truncated(&pb, Truncation::Degree(k));
        for i in 0..=k {
            prop_assert!(approx_eq_eps(full.coeff(i), trunc.coeff(i), 1e-9));
        }
        prop_assert!(trunc.len() <= k + 1);
    }

    /// A product of Bernoulli leaves with probabilities in [0,1] is itself a
    /// probability distribution over degrees: non-negative coefficients that
    /// sum to 1.
    #[test]
    fn poly1_bernoulli_products_are_distributions(ps in prop::collection::vec(0.0f64..=1.0, 1..12)) {
        let mut acc = Poly1::constant(1.0);
        for p in &ps {
            acc.mul_bernoulli_assign(1.0 - p, *p, Truncation::None);
        }
        prop_assert!(approx_eq_eps(acc.total_mass(), 1.0, 1e-9));
        for i in 0..acc.len() {
            prop_assert!(acc.coeff(i) >= -1e-12);
        }
        // Expected degree is the sum of the probabilities (linearity).
        let expect: f64 = ps.iter().sum();
        prop_assert!(approx_eq_eps(acc.expectation(), expect, 1e-9));
    }

    /// Bivariate evaluation is a homomorphism too.
    #[test]
    fn poly2_eval_homomorphism(
        a in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 1..4), 1..4),
        b in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 1..4), 1..4),
        x in 0.0f64..1.5,
        y in 0.0f64..1.5,
    ) {
        let pa = Poly2::from_matrix(a);
        let pb = Poly2::from_matrix(b);
        let prod = pa.mul_full(&pb);
        prop_assert!(approx_eq_eps(prod.eval(x, y), pa.eval(x, y) * pb.eval(x, y), 1e-6));
    }

    /// Marginalising a product of x-leaves and y-leaves over y gives the same
    /// polynomial as multiplying only the x-leaves.
    #[test]
    fn poly2_marginal_consistency(
        xs in prop::collection::vec(0.0f64..=1.0, 1..6),
        ys in prop::collection::vec(0.0f64..=1.0, 1..6),
    ) {
        let mut biv = Poly2::constant(1.0);
        for p in &xs {
            biv.mul_linear_assign(1.0 - p, *p, 0.0, Truncation::None, Truncation::None);
        }
        for p in &ys {
            biv.mul_linear_assign(1.0 - p, 0.0, *p, Truncation::None, Truncation::None);
        }
        let mut uni = Poly1::constant(1.0);
        for p in &xs {
            uni.mul_bernoulli_assign(1.0 - p, *p, Truncation::None);
        }
        let marg = biv.marginal_x();
        for i in 0..uni.len() {
            prop_assert!(approx_eq_eps(marg.coeff(i), uni.coeff(i), 1e-9));
        }
    }
}
