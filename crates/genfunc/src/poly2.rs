//! Dense bivariate polynomials over `f64`.
//!
//! [`Poly2`] represents `Σ_{i,j} c_{i,j} x^i y^j` as a row-major matrix of
//! coefficients. It backs the two-variable generating functions of the paper:
//!
//! * Example 3 — `Pr(r(t) = i)` is the coefficient of `x^{i-1} y` when leaves
//!   scoring above `t` map to `x` and the alternative of `t` itself maps to
//!   `y`;
//! * Lemma 1 — the expected Jaccard distance between a candidate world `W` and
//!   the random world is `Σ_{i,j} c_{i,j} (|W| - i + j) / (|W| + j)` where
//!   members of `W` map to `x` and non-members to `y`;
//! * §5.4 — the Υ-statistics used by the Spearman-footrule consensus answer.

use crate::Truncation;
use std::fmt;

/// A dense bivariate polynomial with `x`-degree `< rows` and `y`-degree `< cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct Poly2 {
    rows: usize,
    cols: usize,
    /// Row-major: `data[i * cols + j]` is the coefficient of `x^i y^j`.
    data: Vec<f64>,
}

impl Poly2 {
    /// The zero polynomial (a single zero coefficient).
    pub fn zero() -> Self {
        Poly2 {
            rows: 1,
            cols: 1,
            data: vec![0.0],
        }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Poly2 {
            rows: 1,
            cols: 1,
            data: vec![c],
        }
    }

    /// The polynomial `x`.
    pub fn x() -> Self {
        Poly2 {
            rows: 2,
            cols: 1,
            data: vec![0.0, 1.0],
        }
    }

    /// The polynomial `y`.
    pub fn y() -> Self {
        Poly2 {
            rows: 1,
            cols: 2,
            data: vec![0.0, 1.0],
        }
    }

    /// The leaf polynomial `q + p·x`.
    pub fn bernoulli_x(q: f64, p: f64) -> Self {
        Poly2 {
            rows: 2,
            cols: 1,
            data: vec![q, p],
        }
    }

    /// The leaf polynomial `q + p·y`.
    pub fn bernoulli_y(q: f64, p: f64) -> Self {
        Poly2 {
            rows: 1,
            cols: 2,
            data: vec![q, p],
        }
    }

    /// Builds a polynomial from a dense coefficient matrix
    /// (`matrix[i][j]` = coefficient of `x^i y^j`). Rows may have differing
    /// lengths; missing entries are zero. An empty matrix yields zero.
    pub fn from_matrix(matrix: Vec<Vec<f64>>) -> Self {
        if matrix.is_empty() {
            return Self::zero();
        }
        let rows = matrix.len();
        let cols = matrix.iter().map(|r| r.len()).max().unwrap_or(1).max(1);
        let mut data = vec![0.0; rows * cols];
        for (i, row) in matrix.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                data[i * cols + j] = c;
            }
        }
        Poly2 { rows, cols, data }
    }

    /// Number of stored `x`-degrees (max x-degree + 1).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of stored `y`-degrees (max y-degree + 1).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The coefficient of `x^i y^j` (zero outside the stored range).
    #[inline]
    pub fn coeff(&self, i: usize, j: usize) -> f64 {
        if i < self.rows && j < self.cols {
            self.data[i * self.cols + j]
        } else {
            0.0
        }
    }

    /// Sum of all coefficients (`eval(1, 1)`), the total probability mass.
    pub fn total_mass(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Evaluates the polynomial at `(x, y)`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let mut acc = 0.0;
        for i in (0..self.rows).rev() {
            let mut row_acc = 0.0;
            for j in (0..self.cols).rev() {
                row_acc = row_acc * y + self.data[i * self.cols + j];
            }
            acc = acc * x + row_acc;
        }
        acc
    }

    /// Weighted sum `Σ_{i,j} c_{i,j} · w(i, j)` — the expectation of `w` under
    /// the joint distribution encoded by the coefficients. This is exactly the
    /// `||C_F ⊗ M||` Hadamard-product expression used in Lemmas 1–2.
    pub fn expectation_with<W>(&self, mut w: W) -> f64
    where
        W: FnMut(usize, usize) -> f64,
    {
        let mut acc = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                let c = self.data[i * self.cols + j];
                if c != 0.0 {
                    acc += c * w(i, j);
                }
            }
        }
        acc
    }

    /// Marginal over `y`: collapses the polynomial to a univariate polynomial
    /// in `x` by summing every row (i.e. substituting `y = 1`).
    pub fn marginal_x(&self) -> crate::Poly1 {
        let coeffs: Vec<f64> = self
            .data
            .chunks(self.cols)
            .map(|row| row.iter().sum())
            .collect();
        crate::Poly1::from_coeffs(coeffs)
    }

    /// Marginal over `x` (substituting `x = 1`), a univariate polynomial in `y`.
    pub fn marginal_y(&self) -> crate::Poly1 {
        let mut coeffs = vec![0.0; self.cols];
        for row in self.data.chunks(self.cols) {
            for (acc, &c) in coeffs.iter_mut().zip(row) {
                *acc += c;
            }
        }
        crate::Poly1::from_coeffs(coeffs)
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Self {
        Poly2 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&c| c * s).collect(),
        }
    }

    /// Adds `other` scaled by `s` in place, growing the coefficient matrix as
    /// needed.
    pub fn add_scaled_assign(&mut self, other: &Poly2, s: f64) {
        let rows = self.rows.max(other.rows);
        let cols = self.cols.max(other.cols);
        if rows != self.rows || cols != self.cols {
            let mut data = vec![0.0; rows * cols];
            for i in 0..self.rows {
                for j in 0..self.cols {
                    data[i * cols + j] = self.data[i * self.cols + j];
                }
            }
            self.rows = rows;
            self.cols = cols;
            self.data = data;
        }
        for i in 0..other.rows {
            for j in 0..other.cols {
                self.data[i * self.cols + j] += s * other.coeff(i, j);
            }
        }
    }

    /// Adds a constant to the constant coefficient in place.
    pub fn add_constant_assign(&mut self, c: f64) {
        self.data[0] += c;
    }

    /// Full product of two bivariate polynomials.
    pub fn mul_full(&self, other: &Poly2) -> Self {
        self.mul_truncated(other, Truncation::None, Truncation::None)
    }

    /// Product keeping only coefficients with `x`-degree within `trunc_x` and
    /// `y`-degree within `trunc_y`.
    pub fn mul_truncated(&self, other: &Poly2, trunc_x: Truncation, trunc_y: Truncation) -> Self {
        let mut out = Poly2::zero();
        self.mul_truncated_into(other, trunc_x, trunc_y, &mut out);
        out
    }

    /// Truncated product written into a reusable output polynomial: `out`'s
    /// coefficient buffer is cleared and resized in place, so repeated
    /// products (the ∧-node accumulation of a tree sweep) stop allocating
    /// once the buffer has grown to its steady-state size. The coefficient
    /// arithmetic and its order are identical to [`Poly2::mul_truncated`],
    /// so results are bit-identical to the allocating path.
    pub fn mul_truncated_into(
        &self,
        other: &Poly2,
        trunc_x: Truncation,
        trunc_y: Truncation,
        out: &mut Poly2,
    ) {
        let natural_x = self.rows + other.rows - 2;
        let natural_y = self.cols + other.cols - 2;
        let cap_x = trunc_x.cap(natural_x);
        let cap_y = trunc_y.cap(natural_y);
        let rows = cap_x + 1;
        let cols = cap_y + 1;
        out.rows = rows;
        out.cols = cols;
        out.data.clear();
        out.data.resize(rows * cols, 0.0);
        for ai in 0..self.rows {
            if ai > cap_x {
                break;
            }
            for aj in 0..self.cols {
                if aj > cap_y {
                    break;
                }
                let a = self.data[ai * self.cols + aj];
                if a == 0.0 {
                    continue;
                }
                let bi_max = (cap_x - ai).min(other.rows - 1);
                let bj_max = (cap_y - aj).min(other.cols - 1);
                for bi in 0..=bi_max {
                    let base = (ai + bi) * cols + aj;
                    for bj in 0..=bj_max {
                        out.data[base + bj] += a * other.data[bi * other.cols + bj];
                    }
                }
            }
        }
        out.debug_assert_invariants();
    }

    /// Debug-build invariant check: the coefficient matrix is exactly
    /// `rows × cols`, non-degenerate, and every coefficient is finite.
    #[inline]
    pub fn debug_assert_invariants(&self) {
        debug_assert!(
            self.rows >= 1 && self.cols >= 1,
            "Poly2 invariant violated: degenerate shape {}×{}",
            self.rows,
            self.cols
        );
        debug_assert_eq!(
            self.data.len(),
            self.rows * self.cols,
            "Poly2 invariant violated: buffer does not match shape"
        );
        debug_assert!(
            self.data.iter().all(|c| c.is_finite()),
            "Poly2 invariant violated: non-finite coefficient"
        );
    }

    /// Multiplies in place by the linear leaf polynomial
    /// `c + px·x + py·y` (any of the three terms may be zero), truncated.
    ///
    /// Every leaf polynomial used by the paper's constructions has this shape,
    /// so tree evaluation over thousands of independent leaves never allocates
    /// a full temporary product.
    pub fn mul_linear_assign(
        &mut self,
        c: f64,
        px: f64,
        py: f64,
        trunc_x: Truncation,
        trunc_y: Truncation,
    ) {
        let natural_x = self.rows - 1 + usize::from(px != 0.0);
        let natural_y = self.cols - 1 + usize::from(py != 0.0);
        let cap_x = trunc_x.cap(natural_x);
        let cap_y = trunc_y.cap(natural_y);
        let rows = cap_x + 1;
        let cols = cap_y + 1;
        let mut data = vec![0.0; rows * cols];
        for i in 0..self.rows.min(rows) {
            for j in 0..self.cols.min(cols) {
                let a = self.data[i * self.cols + j];
                if a == 0.0 {
                    continue;
                }
                data[i * cols + j] += c * a;
                if px != 0.0 && i + 1 < rows {
                    data[(i + 1) * cols + j] += px * a;
                }
                if py != 0.0 && j + 1 < cols {
                    data[i * cols + j + 1] += py * a;
                }
            }
        }
        self.rows = rows;
        self.cols = cols;
        self.data = data;
    }

    /// Probability-weighted mixture at a ∨ (xor) node: each child taken with
    /// its weight, leftover mass contributing the constant 1.
    pub fn xor_combine(children: &[(f64, Poly2)]) -> Self {
        let leftover: f64 = 1.0 - children.iter().map(|(w, _)| *w).sum::<f64>();
        let mut out = Poly2::constant(leftover);
        for (w, p) in children {
            out.add_scaled_assign(p, *w);
        }
        out
    }
}

impl Default for Poly2 {
    fn default() -> Self {
        Self::zero()
    }
}

impl fmt::Display for Poly2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for i in 0..self.rows {
            for j in 0..self.cols {
                let c = self.coeff(i, j);
                if c == 0.0 {
                    continue;
                }
                if !first {
                    write!(f, " + ")?;
                }
                first = false;
                write!(f, "{c}")?;
                match i {
                    0 => {}
                    1 => write!(f, "·x")?,
                    _ => write!(f, "·x^{i}")?,
                }
                match j {
                    0 => {}
                    1 => write!(f, "·y")?,
                    _ => write!(f, "·y^{j}")?,
                }
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    #[test]
    fn constants_and_variables() {
        assert!(approx_eq(Poly2::constant(0.7).coeff(0, 0), 0.7));
        assert!(approx_eq(Poly2::x().coeff(1, 0), 1.0));
        assert!(approx_eq(Poly2::y().coeff(0, 1), 1.0));
        assert!(approx_eq(Poly2::zero().total_mass(), 0.0));
    }

    #[test]
    fn product_of_x_and_y_leaves() {
        // (0.5 + 0.5x)(0.4 + 0.6y) = 0.2 + 0.2x + 0.3y + 0.3xy
        let a = Poly2::bernoulli_x(0.5, 0.5);
        let b = Poly2::bernoulli_y(0.4, 0.6);
        let p = a.mul_full(&b);
        assert!(approx_eq(p.coeff(0, 0), 0.2));
        assert!(approx_eq(p.coeff(1, 0), 0.2));
        assert!(approx_eq(p.coeff(0, 1), 0.3));
        assert!(approx_eq(p.coeff(1, 1), 0.3));
        assert!(approx_eq(p.total_mass(), 1.0));
    }

    #[test]
    fn mul_linear_assign_matches_mul_full() {
        let mut acc = Poly2::from_matrix(vec![vec![0.25, 0.25], vec![0.25, 0.25]]);
        let expect = acc.mul_full(&Poly2::from_matrix(vec![vec![0.3, 0.5], vec![0.2, 0.0]]));
        acc.mul_linear_assign(0.3, 0.2, 0.5, Truncation::None, Truncation::None);
        for i in 0..expect.rows() {
            for j in 0..expect.cols() {
                assert!(
                    approx_eq(acc.coeff(i, j), expect.coeff(i, j)),
                    "({i},{j}): {} vs {}",
                    acc.coeff(i, j),
                    expect.coeff(i, j)
                );
            }
        }
    }

    #[test]
    fn truncated_product_matches_prefix() {
        let a = Poly2::from_matrix(vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
        let b = Poly2::from_matrix(vec![vec![0.5, 0.1], vec![0.2, 0.2]]);
        let full = a.mul_full(&b);
        let t = a.mul_truncated(&b, Truncation::Degree(1), Truncation::Degree(1));
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(full.coeff(i, j), t.coeff(i, j)));
            }
        }
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
    }

    #[test]
    fn mul_truncated_into_reuses_buffer_and_bit_matches() {
        let a = Poly2::from_matrix(vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
        let b = Poly2::from_matrix(vec![vec![0.5, 0.1], vec![0.2, 0.2]]);
        let mut out = Poly2::from_matrix(vec![vec![9.0; 5]; 5]); // stale junk
        for (tx, ty) in [
            (Truncation::None, Truncation::None),
            (Truncation::Degree(1), Truncation::Degree(1)),
            (Truncation::Degree(0), Truncation::None),
        ] {
            let expected = a.mul_truncated(&b, tx, ty);
            a.mul_truncated_into(&b, tx, ty, &mut out);
            assert_eq!(out.rows(), expected.rows());
            assert_eq!(out.cols(), expected.cols());
            for i in 0..expected.rows() {
                for j in 0..expected.cols() {
                    assert_eq!(
                        out.coeff(i, j).to_bits(),
                        expected.coeff(i, j).to_bits(),
                        "({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_and_marginals() {
        let p = Poly2::from_matrix(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        // p(x,y) = 1 + 2y + 3x + 4xy ; p(2, 3) = 1 + 6 + 6 + 24 = 37
        assert!(approx_eq(p.eval(2.0, 3.0), 37.0));
        let mx = p.marginal_x();
        assert!(approx_eq(mx.coeff(0), 3.0));
        assert!(approx_eq(mx.coeff(1), 7.0));
        let my = p.marginal_y();
        assert!(approx_eq(my.coeff(0), 4.0));
        assert!(approx_eq(my.coeff(1), 6.0));
    }

    #[test]
    fn expectation_with_weights() {
        let p = Poly2::from_matrix(vec![vec![0.2, 0.3], vec![0.4, 0.1]]);
        let e = p.expectation_with(|i, j| (i + 2 * j) as f64);
        // 0.2*0 + 0.3*2 + 0.4*1 + 0.1*3 = 1.3
        assert!(approx_eq(e, 1.3));
    }

    #[test]
    fn xor_combine_two_children() {
        let children = vec![(0.3, Poly2::x()), (0.4, Poly2::y())];
        let c = Poly2::xor_combine(&children);
        assert!(approx_eq(c.coeff(0, 0), 0.3));
        assert!(approx_eq(c.coeff(1, 0), 0.3));
        assert!(approx_eq(c.coeff(0, 1), 0.4));
        assert!(approx_eq(c.total_mass(), 1.0));
    }

    #[test]
    fn add_scaled_grows_matrix() {
        let mut a = Poly2::constant(0.5);
        a.add_scaled_assign(
            &Poly2::from_matrix(vec![vec![0.0, 0.0], vec![0.0, 1.0]]),
            0.5,
        );
        assert!(approx_eq(a.coeff(0, 0), 0.5));
        assert!(approx_eq(a.coeff(1, 1), 0.5));
    }

    #[test]
    fn display_contains_terms() {
        let p = Poly2::from_matrix(vec![vec![0.0, 0.3], vec![0.7, 0.0]]);
        let s = format!("{p}");
        assert!(s.contains("0.3·y"));
        assert!(s.contains("0.7·x"));
    }
}
