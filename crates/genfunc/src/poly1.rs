//! Dense univariate polynomials over `f64`.
//!
//! [`Poly1`] represents `Σ_i c_i x^i` as a coefficient vector. It is the
//! workhorse for the single-variable generating functions of the paper's
//! Examples 1 and 2: assigning `x` to a subset of leaves of an and/xor tree
//! and `1` to the rest yields a polynomial whose `i`-th coefficient is
//! `Pr(|pw ∩ S| = i)`.

use crate::Truncation;
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// A dense univariate polynomial `c_0 + c_1 x + c_2 x^2 + …` over `f64`.
///
/// Invariant: `coeffs` is non-empty (the zero polynomial is `[0.0]`). Trailing
/// zero coefficients may be present; use [`Poly1::trim`] to drop them or
/// [`Poly1::degree`] which ignores them.
#[derive(Debug, Clone, PartialEq)]
pub struct Poly1 {
    coeffs: Vec<f64>,
}

impl Poly1 {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly1 { coeffs: vec![0.0] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Poly1 { coeffs: vec![c] }
    }

    /// The polynomial `x`.
    pub fn x() -> Self {
        Poly1 {
            coeffs: vec![0.0, 1.0],
        }
    }

    /// The "Bernoulli leaf" polynomial `q + p·x`.
    ///
    /// This is the generating function of a single independent tuple that is
    /// present (contributing one `x`) with probability `p` and absent with
    /// probability `q` (callers normally pass `q = 1 - p`).
    pub fn bernoulli(q: f64, p: f64) -> Self {
        Poly1 { coeffs: vec![q, p] }
    }

    /// Builds a polynomial from a coefficient vector (`coeffs[i]` is the
    /// coefficient of `x^i`). An empty vector yields the zero polynomial.
    pub fn from_coeffs(coeffs: Vec<f64>) -> Self {
        let poly = if coeffs.is_empty() {
            Self::zero()
        } else {
            Poly1 { coeffs }
        };
        poly.debug_assert_invariants();
        poly
    }

    /// The coefficient of `x^i` (zero when `i` exceeds the stored degree).
    #[inline]
    pub fn coeff(&self, i: usize) -> f64 {
        self.coeffs.get(i).copied().unwrap_or(0.0)
    }

    /// Borrow the raw coefficient slice (index `i` ↦ coefficient of `x^i`).
    #[inline]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The degree of the polynomial, ignoring trailing (near-)zero
    /// coefficients. The zero polynomial has degree 0 by convention.
    pub fn degree(&self) -> usize {
        self.coeffs.iter().rposition(|&c| c != 0.0).unwrap_or(0)
    }

    /// Number of stored coefficients (degree bound + 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when no coefficients are stored beyond the constant term and it is
    /// zero.
    pub fn is_empty(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    /// Overwrites `self` with a copy of `other`, reusing the existing
    /// coefficient buffer (no allocation once the buffer is large enough).
    pub fn copy_from(&mut self, other: &Poly1) {
        self.coeffs.clear();
        self.coeffs.extend_from_slice(&other.coeffs);
    }

    /// Removes trailing exactly-zero coefficients (keeps at least one).
    pub fn trim(&mut self) {
        while self.coeffs.len() > 1 && *self.coeffs.last().unwrap() == 0.0 {
            self.coeffs.pop();
        }
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Sum of all coefficients — equivalently `eval(1.0)`. For a probability
    /// generating function this is the total probability mass (≈ 1).
    pub fn total_mass(&self) -> f64 {
        self.coeffs.iter().sum()
    }

    /// Expected degree `Σ i·c_i` — for a world-size generating function this
    /// is the expected possible-world size.
    pub fn expectation(&self) -> f64 {
        self.coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| i as f64 * c)
            .sum()
    }

    /// Sum of coefficients with index `≤ k` — for a rank generating function
    /// `Σ_{i ≤ k} Pr(X = i)` = `Pr(X ≤ k)`.
    pub fn prefix_mass(&self, k: usize) -> f64 {
        self.coeffs.iter().take(k + 1).sum()
    }

    /// Multiplies every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Self {
        Poly1 {
            coeffs: self.coeffs.iter().map(|&c| c * s).collect(),
        }
    }

    /// Adds `other` scaled by `s` into `self` in place (`self += s·other`).
    pub fn add_scaled_assign(&mut self, other: &Poly1, s: f64) {
        if other.coeffs.len() > self.coeffs.len() {
            self.coeffs.resize(other.coeffs.len(), 0.0);
        }
        for (a, &b) in self.coeffs.iter_mut().zip(other.coeffs.iter()) {
            *a += s * b;
        }
    }

    /// Adds a constant to the constant term in place.
    pub fn add_constant_assign(&mut self, c: f64) {
        self.coeffs[0] += c;
    }

    /// Full product of two polynomials (no truncation).
    pub fn mul_full(&self, other: &Poly1) -> Self {
        self.mul_truncated(other, Truncation::None)
    }

    /// Product of two polynomials, keeping only coefficients of degree at most
    /// the truncation cap. Truncated products are the key to `O(n·k)` Top-k
    /// computations: every intermediate product drops terms that can never be
    /// read.
    pub fn mul_truncated(&self, other: &Poly1, trunc: Truncation) -> Self {
        let natural = self.coeffs.len() + other.coeffs.len() - 2;
        let cap = trunc.cap(natural);
        let mut out = vec![0.0; cap + 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if i > cap || a == 0.0 {
                continue;
            }
            let jmax = (cap - i).min(other.coeffs.len() - 1);
            for (j, &b) in other.coeffs.iter().enumerate().take(jmax + 1) {
                out[i + j] += a * b;
            }
        }
        Poly1 { coeffs: out }
    }

    /// In-place truncated product `self ← self · other` through a caller-
    /// provided scratch buffer, so hot batch loops never allocate per
    /// multiply: the product is written into `scratch` (cleared and resized
    /// as needed) and swapped into `self`. The coefficient arithmetic and its
    /// order are identical to [`Poly1::mul_truncated`], so the results are
    /// bit-identical to the allocating path.
    pub fn mul_assign_truncated(
        &mut self,
        other: &Poly1,
        trunc: Truncation,
        scratch: &mut Vec<f64>,
    ) {
        let natural = self.coeffs.len() + other.coeffs.len() - 2;
        let cap = trunc.cap(natural);
        scratch.clear();
        scratch.resize(cap + 1, 0.0);
        for (i, &a) in self.coeffs.iter().enumerate() {
            if i > cap || a == 0.0 {
                continue;
            }
            let jmax = (cap - i).min(other.coeffs.len() - 1);
            for (j, &b) in other.coeffs.iter().enumerate().take(jmax + 1) {
                scratch[i + j] += a * b;
            }
        }
        std::mem::swap(&mut self.coeffs, scratch);
        self.debug_assert_invariants();
    }

    /// Debug-build invariant check: the coefficient vector is never empty and
    /// every coefficient is finite. Probability-valued generating functions
    /// additionally keep coefficients in `[-ε, 1 + ε]`; that stronger check
    /// lives at the call sites that know they hold probabilities (see
    /// [`crate::clamp_probability`]).
    #[inline]
    pub fn debug_assert_invariants(&self) {
        debug_assert!(
            !self.coeffs.is_empty(),
            "Poly1 invariant violated: empty coefficient vector"
        );
        debug_assert!(
            self.coeffs.iter().all(|c| c.is_finite()),
            "Poly1 invariant violated: non-finite coefficient in {:?}",
            self.coeffs
        );
    }

    /// Multiplies by the Bernoulli leaf `q + p·x` in place, truncated.
    ///
    /// This is the hot path when evaluating a generating function over a tree
    /// with thousands of independent leaves: instead of allocating a fresh
    /// polynomial per leaf we update the accumulator in place.
    pub fn mul_bernoulli_assign(&mut self, q: f64, p: f64, trunc: Truncation) {
        let natural = self.coeffs.len(); // degree grows by exactly one
        let cap = trunc.cap(natural);
        let old_len = self.coeffs.len();
        if cap + 1 > old_len {
            self.coeffs.resize(cap + 1, 0.0);
        } else if cap + 1 < old_len {
            self.coeffs.truncate(cap + 1);
        }
        // Process from the highest degree downwards so each old coefficient is
        // read before being overwritten.
        for i in (0..self.coeffs.len()).rev() {
            let lower = if i < old_len { self.coeffs[i] } else { 0.0 };
            let from_below = if i > 0 { self.coeffs[i - 1] } else { 0.0 };
            self.coeffs[i] = q * lower + p * from_below;
        }
    }

    /// Truncate in place to degree `k` (drop all higher coefficients).
    pub fn truncate_degree(&mut self, k: usize) {
        self.coeffs.truncate(k + 1);
        if self.coeffs.is_empty() {
            self.coeffs.push(0.0);
        }
    }

    /// In-place ∨-node **mixture delta** for a changed child polynomial:
    /// with `A_∨ = leftover + Σ w_i·A_i`, replacing child `j`'s polynomial is
    /// the linear update `A_∨ += w_j·(A_j' − A_j)`. Performs exactly the two
    /// [`Poly1::add_scaled_assign`] calls (new child first), so callers that
    /// previously inlined them (the batch rank-PMF sweep) stay bit-identical.
    pub fn mixture_delta_assign(&mut self, new_child: &Poly1, old_child: &Poly1, w: f64) {
        self.add_scaled_assign(new_child, w);
        self.add_scaled_assign(old_child, -w);
    }

    /// In-place ∨-node **edge-probability patch**: with
    /// `A_∨ = (1 − Σ w_i) + Σ w_i·A_i`, changing one edge's probability
    /// `w_j → w_j'` is the linear update `A_∨ += (w_j' − w_j)·(A_j − 1)` —
    /// the child's polynomial gains weight and the leftover ("nothing
    /// materialises") constant loses exactly that weight. This is the
    /// polynomial-level statement of what a `cpdb_live` single-∨
    /// probability delta does to a node's generating function, pinned by
    /// the mutation tests against a from-scratch [`Poly1::xor_combine`] on
    /// the patched weights. Note the serving engine does **not** patch
    /// cached rank polynomials through it (patched summation orders would
    /// break the bit-identity contract with fresh builds); it rebuilds rank
    /// contexts and keeps this identity as the documented, tested algebra
    /// for callers maintaining their own ∨ mixtures incrementally.
    pub fn xor_edge_patch(&mut self, child: &Poly1, old_w: f64, new_w: f64) {
        let dw = new_w - old_w;
        self.add_scaled_assign(child, dw);
        self.add_constant_assign(-dw);
        self.debug_assert_invariants();
    }

    /// Returns the probability-weighted mixture `Σ w_i·p_i + (1 - Σ w_i)·1`
    /// used at ∨ (xor) nodes: each child polynomial `p_i` is taken with
    /// probability `w_i`, and with the leftover probability the node
    /// contributes the empty set (the constant polynomial 1).
    pub fn xor_combine(children: &[(f64, Poly1)]) -> Self {
        let leftover: f64 = 1.0 - children.iter().map(|(w, _)| *w).sum::<f64>();
        let mut out = Poly1::constant(leftover);
        for (w, p) in children {
            out.add_scaled_assign(p, *w);
        }
        out.debug_assert_invariants();
        out
    }
}

impl Default for Poly1 {
    fn default() -> Self {
        Self::zero()
    }
}

impl Add<&Poly1> for &Poly1 {
    type Output = Poly1;
    fn add(self, rhs: &Poly1) -> Poly1 {
        let mut out = self.clone();
        out.add_scaled_assign(rhs, 1.0);
        out
    }
}

impl AddAssign<&Poly1> for Poly1 {
    fn add_assign(&mut self, rhs: &Poly1) {
        self.add_scaled_assign(rhs, 1.0);
    }
}

impl Mul<&Poly1> for &Poly1 {
    type Output = Poly1;
    fn mul(self, rhs: &Poly1) -> Poly1 {
        self.mul_full(rhs)
    }
}

impl fmt::Display for Poly1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 && !(i == 0 && self.is_empty()) {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}·x")?,
                _ => write!(f, "{c}·x^{i}")?,
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    #[test]
    fn zero_and_constant_basics() {
        let z = Poly1::zero();
        assert_eq!(z.degree(), 0);
        assert!(z.is_empty());
        let c = Poly1::constant(0.4);
        assert_eq!(c.coeff(0), 0.4);
        assert_eq!(c.coeff(3), 0.0);
        assert_eq!(c.degree(), 0);
    }

    #[test]
    fn bernoulli_product_matches_binomial() {
        // (0.5 + 0.5x)^4 has coefficients C(4,i)/16.
        let leaf = Poly1::bernoulli(0.5, 0.5);
        let mut acc = Poly1::constant(1.0);
        for _ in 0..4 {
            acc = acc.mul_full(&leaf);
        }
        let expected = [1.0, 4.0, 6.0, 4.0, 1.0].map(|c| c / 16.0);
        for (i, e) in expected.iter().enumerate() {
            assert!(approx_eq(acc.coeff(i), *e), "i={i}");
        }
        assert!(approx_eq(acc.total_mass(), 1.0));
        assert!(approx_eq(acc.expectation(), 2.0));
    }

    #[test]
    fn truncated_product_matches_prefix_of_full_product() {
        let a = Poly1::from_coeffs(vec![0.1, 0.2, 0.3, 0.4]);
        let b = Poly1::from_coeffs(vec![0.5, 0.25, 0.25]);
        let full = a.mul_full(&b);
        let trunc = a.mul_truncated(&b, Truncation::Degree(2));
        assert_eq!(trunc.len(), 3);
        for i in 0..3 {
            assert!(approx_eq(full.coeff(i), trunc.coeff(i)));
        }
    }

    #[test]
    fn mul_bernoulli_assign_matches_mul_full() {
        let a = Poly1::from_coeffs(vec![0.3, 0.4, 0.3]);
        let mut b = a.clone();
        b.mul_bernoulli_assign(0.7, 0.3, Truncation::None);
        let expected = a.mul_full(&Poly1::bernoulli(0.7, 0.3));
        for i in 0..expected.len() {
            assert!(approx_eq(b.coeff(i), expected.coeff(i)), "i={i}");
        }
    }

    #[test]
    fn mul_bernoulli_assign_truncated() {
        let a = Poly1::from_coeffs(vec![0.25; 4]);
        let mut b = a.clone();
        b.mul_bernoulli_assign(0.6, 0.4, Truncation::Degree(2));
        let expected = a.mul_truncated(&Poly1::bernoulli(0.6, 0.4), Truncation::Degree(2));
        assert_eq!(b.len(), 3);
        for i in 0..3 {
            assert!(approx_eq(b.coeff(i), expected.coeff(i)), "i={i}");
        }
    }

    #[test]
    fn mul_assign_truncated_bit_matches_mul_truncated() {
        let a = Poly1::from_coeffs(vec![0.1, 0.2, 0.3, 0.4]);
        let b = Poly1::from_coeffs(vec![0.5, 0.25, 0.25]);
        for trunc in [
            Truncation::None,
            Truncation::Degree(2),
            Truncation::Degree(0),
        ] {
            let expected = a.mul_truncated(&b, trunc);
            let mut got = a.clone();
            let mut scratch = Vec::new();
            got.mul_assign_truncated(&b, trunc, &mut scratch);
            assert_eq!(got.len(), expected.len());
            for i in 0..expected.len() {
                assert_eq!(got.coeff(i).to_bits(), expected.coeff(i).to_bits(), "i={i}");
            }
            // The swapped-out buffer is reusable: a second product must not
            // be polluted by stale coefficients.
            let mut again = a.clone();
            again.mul_assign_truncated(&b, trunc, &mut scratch);
            assert_eq!(again, got);
        }
    }

    #[test]
    fn eval_horner_and_total_mass() {
        let p = Poly1::from_coeffs(vec![1.0, -2.0, 3.0]);
        assert!(approx_eq(p.eval(2.0), 1.0 - 4.0 + 12.0));
        assert!(approx_eq(p.eval(0.0), 1.0));
        assert!(approx_eq(p.total_mass(), 2.0));
    }

    #[test]
    fn prefix_mass_is_cdf() {
        let p = Poly1::from_coeffs(vec![0.1, 0.2, 0.3, 0.4]);
        assert!(approx_eq(p.prefix_mass(0), 0.1));
        assert!(approx_eq(p.prefix_mass(2), 0.6));
        assert!(approx_eq(p.prefix_mass(10), 1.0));
    }

    #[test]
    fn xor_combine_keeps_leftover_mass() {
        // Two children with prob 0.3 / 0.2, leftover 0.5 goes to the constant.
        let children = vec![
            (0.3, Poly1::x()),
            (0.2, Poly1::from_coeffs(vec![0.0, 0.0, 1.0])),
        ];
        let c = Poly1::xor_combine(&children);
        assert!(approx_eq(c.coeff(0), 0.5));
        assert!(approx_eq(c.coeff(1), 0.3));
        assert!(approx_eq(c.coeff(2), 0.2));
        assert!(approx_eq(c.total_mass(), 1.0));
    }

    #[test]
    fn display_formats_nonzero_terms() {
        let p = Poly1::from_coeffs(vec![0.5, 0.0, 0.25]);
        let s = format!("{p}");
        assert!(s.contains("0.5"));
        assert!(s.contains("x^2"));
        assert!(!s.contains("x +"));
    }

    #[test]
    fn trim_removes_trailing_zeros() {
        let mut p = Poly1::from_coeffs(vec![0.5, 0.5, 0.0, 0.0]);
        p.trim();
        assert_eq!(p.len(), 2);
        let mut z = Poly1::from_coeffs(vec![0.0, 0.0]);
        z.trim();
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn add_and_mul_operators() {
        let a = Poly1::from_coeffs(vec![1.0, 1.0]);
        let b = Poly1::from_coeffs(vec![1.0, 1.0]);
        let sum = &a + &b;
        assert!(approx_eq(sum.coeff(0), 2.0));
        let prod = &a * &b;
        assert!(approx_eq(prod.coeff(0), 1.0));
        assert!(approx_eq(prod.coeff(1), 2.0));
        assert!(approx_eq(prod.coeff(2), 1.0));
    }

    #[test]
    fn truncate_degree_in_place() {
        let mut p = Poly1::from_coeffs(vec![0.1, 0.2, 0.3, 0.4]);
        p.truncate_degree(1);
        assert_eq!(p.len(), 2);
        assert!(approx_eq(p.coeff(1), 0.2));
    }

    #[test]
    fn mixture_delta_matches_inlined_add_scaled_pair() {
        let old_child = Poly1::from_coeffs(vec![0.2, 0.8]);
        let new_child = Poly1::from_coeffs(vec![0.0, 0.5, 0.5]);
        let mut via_helper = Poly1::from_coeffs(vec![0.4, 0.6]);
        let mut inlined = via_helper.clone();
        via_helper.mixture_delta_assign(&new_child, &old_child, 0.3);
        inlined.add_scaled_assign(&new_child, 0.3);
        inlined.add_scaled_assign(&old_child, -0.3);
        assert_eq!(via_helper.coeffs(), inlined.coeffs());
    }

    #[test]
    fn xor_edge_patch_matches_recombined_mixture() {
        // A_∨ over two children; patching the second edge 0.3 → 0.45 must
        // agree with rebuilding the mixture from the patched weights.
        let c1 = Poly1::from_coeffs(vec![0.1, 0.9]);
        let c2 = Poly1::from_coeffs(vec![0.5, 0.25, 0.25]);
        let mut patched = Poly1::xor_combine(&[(0.2, c1.clone()), (0.3, c2.clone())]);
        patched.xor_edge_patch(&c2, 0.3, 0.45);
        let fresh = Poly1::xor_combine(&[(0.2, c1), (0.45, c2)]);
        for i in 0..3 {
            assert!(
                (patched.coeff(i) - fresh.coeff(i)).abs() < 1e-15,
                "coefficient {i}: patched {} vs fresh {}",
                patched.coeff(i),
                fresh.coeff(i)
            );
        }
    }
}
