//! Tolerant floating-point comparison helpers.
//!
//! Probabilities produced by generating-function evaluation accumulate
//! rounding error proportional to the number of leaf polynomials multiplied
//! together. The tolerances here are far larger than that error for any
//! instance size this library targets, while still being far smaller than any
//! meaningful probability difference.

/// Default absolute tolerance used when comparing probabilities.
pub const DEFAULT_EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most [`DEFAULT_EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, DEFAULT_EPS)
}

/// Returns `true` when `a` and `b` differ by at most `eps` (absolute).
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Asserts (in debug builds and tests) that a value is a valid probability,
/// allowing a small tolerance outside `[0, 1]` for accumulated rounding.
#[inline]
pub fn is_probability(p: f64) -> bool {
    p.is_finite() && (-DEFAULT_EPS..=1.0 + 1e-6).contains(&p)
}

/// Clamps an almost-probability into `[0, 1]`.
///
/// Generating-function coefficients are mathematically probabilities but can
/// land slightly outside `[0, 1]` after many floating-point operations; this
/// snaps them back without hiding genuine errors (values far outside the range
/// are left untouched so they show up in tests).
#[inline]
pub fn clamp_probability(p: f64) -> f64 {
    if (-1e-6..0.0).contains(&p) {
        0.0
    } else if p > 1.0 && p <= 1.0 + 1e-6 {
        1.0
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(0.3, 0.3 + 1e-12));
        assert!(!approx_eq(0.3, 0.300001));
    }

    #[test]
    fn approx_eq_eps_custom_tolerance() {
        assert!(approx_eq_eps(1.0, 1.05, 0.1));
        assert!(!approx_eq_eps(1.0, 1.05, 0.01));
    }

    #[test]
    fn is_probability_accepts_valid_range() {
        assert!(is_probability(0.0));
        assert!(is_probability(1.0));
        assert!(is_probability(0.5));
        assert!(is_probability(-1e-12));
    }

    #[test]
    fn is_probability_rejects_out_of_range() {
        assert!(!is_probability(1.5));
        assert!(!is_probability(-0.5));
        assert!(!is_probability(f64::NAN));
        assert!(!is_probability(f64::INFINITY));
    }

    #[test]
    fn clamp_probability_snaps_small_overshoot() {
        assert_eq!(clamp_probability(-1e-9), 0.0);
        assert_eq!(clamp_probability(1.0 + 1e-9), 1.0);
        assert_eq!(clamp_probability(0.25), 0.25);
        // Far out-of-range values are preserved so bugs stay visible.
        assert_eq!(clamp_probability(2.0), 2.0);
    }
}
