//! Small shared numeric helpers used across the workspace.
//!
//! These are quantities the paper's bounds are stated in terms of, needed by
//! more than one algorithm crate, so they live here next to the polynomial
//! engine rather than inside any single consumer.

/// The `k`-th harmonic number `H_k = Σ_{i ≤ k} 1/i`, with `H_0 = 0`.
///
/// This is the approximation bound of the paper's §5.3: the Υ_H ranking
/// shortcut achieves at least a `1/H_k` fraction of the optimal
/// intersection-metric objective `A(τ*)`, and `Υ_H(t) = Σ_{i ≤ k}
/// Pr(r(t) ≤ i)/i` itself is a harmonic-weighted rank statistic.
pub fn harmonic(k: usize) -> f64 {
    (1..=k).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_numbers() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_is_monotone() {
        for k in 1..50 {
            assert!(harmonic(k) > harmonic(k - 1));
        }
    }
}
