//! # cpdb-genfunc — generating-function engine
//!
//! Probability computations on probabilistic and/xor trees (Li & Deshpande,
//! PODS 2009, §3.3) reduce to manipulating *generating functions*: polynomials
//! whose coefficients are probabilities. This crate provides the polynomial
//! machinery those computations need:
//!
//! * [`Poly1`] — dense univariate polynomials over `f64` (`Σ c_i x^i`), used for
//!   possible-world size distributions, `Pr(|pw ∩ S| = i)` style membership
//!   counts, and the `Pr(r(t) ≤ k)` rank computations (Examples 1–2 of the
//!   paper).
//! * [`Poly2`] — dense bivariate polynomials (`Σ c_{i,j} x^i y^j`), used for the
//!   rank-position computation of Example 3 (coefficient of `x^{i-1} y`), the
//!   Jaccard-distance expectation of Lemma 1, and the Spearman-footrule
//!   bookkeeping of §5.4.
//!
//! Both types support *truncated* multiplication: when only coefficients up to
//! degree `k` are ever read (as in Top-k computations) the higher-degree terms
//! can be discarded during every product, keeping the work per tree node at
//! `O(k)` instead of `O(n)`.
//!
//! The engine is deliberately self-contained (no dependencies) and uses plain
//! `f64` coefficients: all probabilities in this problem domain are bounded by
//! 1 and degrees are bounded by the number of tuples, so dense representation
//! and floating-point arithmetic are both appropriate. Helper routines for
//! comparing probability values with a tolerance live in [`approx`], and
//! small shared numeric quantities (harmonic numbers, the §5.3 bound) in
//! [`numeric`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod numeric;
pub mod poly1;
pub mod poly2;

pub use approx::{approx_eq, approx_eq_eps, clamp_probability, is_probability, DEFAULT_EPS};
pub use numeric::harmonic;
pub use poly1::Poly1;
pub use poly2::Poly2;

/// The truncation policy used by polynomial products.
///
/// Generating-function evaluation over an and/xor tree multiplies one
/// polynomial per leaf; without truncation the degree (and the work) grows
/// linearly in the number of leaves. Top-k style computations only ever read
/// coefficients of degree at most `k`, so the products can safely drop all
/// higher-degree terms as they go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// Keep every coefficient produced by the product.
    None,
    /// Keep only coefficients with total degree `≤ limit` (for [`Poly1`]) or
    /// `x`-degree `≤ limit` (for [`Poly2`]).
    Degree(usize),
}

impl Truncation {
    /// The largest degree kept under this policy given a natural (untruncated)
    /// degree bound `natural`.
    #[inline]
    pub fn cap(&self, natural: usize) -> usize {
        match *self {
            Truncation::None => natural,
            Truncation::Degree(d) => d.min(natural),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_cap_none_keeps_natural_degree() {
        assert_eq!(Truncation::None.cap(17), 17);
    }

    #[test]
    fn truncation_cap_degree_takes_minimum() {
        assert_eq!(Truncation::Degree(5).cap(17), 5);
        assert_eq!(Truncation::Degree(20).cap(17), 17);
        assert_eq!(Truncation::Degree(0).cap(17), 0);
    }
}
