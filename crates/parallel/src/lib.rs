//! # cpdb-parallel — minimal fork-join helpers for artifact builds
//!
//! The expensive shared artifacts of the workspace (rank-probability PMF
//! tables, the Kendall pairwise-order tournament, co-clustering weights) are
//! embarrassingly parallel across targets/pairs once the batch
//! generating-function evaluator has removed the per-target sweeps. This
//! crate provides the *smallest* parallelism layer that can exploit that —
//! a [`std::thread::scope`] fork-join map over contiguous index chunks — with
//! three hard guarantees:
//!
//! * **no new dependencies** — plain `std::thread`, nothing vendored;
//! * **deterministic output ordering** — results come back in input order
//!   regardless of which thread computed them or when it finished;
//! * **thread-count independence** — callers are expected to make each
//!   per-item computation independent of the chunking, so the same inputs
//!   produce bit-identical outputs at any thread count (the conformance
//!   suite asserts this for every batch artifact build).
//!
//! The thread count is resolved by [`resolve_threads`]: an explicit non-zero
//! request wins, otherwise the `CPDB_THREADS` environment variable, otherwise
//! [`std::thread::available_parallelism`]. `CPDB_THREADS=1` (or passing `1`)
//! disables spawning entirely — the map runs inline on the caller's thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Environment variable consulted by [`resolve_threads`] when the caller
/// passes `0` ("auto"). Accepts any positive integer; invalid or missing
/// values fall back to the machine's available parallelism.
pub const THREADS_ENV: &str = "CPDB_THREADS";

/// Resolves a requested thread count: `0` means "auto" (the `CPDB_THREADS`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`]); any other value is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `0..len` on up to `threads` scoped worker threads
/// (`threads = 0` means "auto", see [`resolve_threads`]), returning the
/// results in index order.
///
/// The index range is split into at most `threads` contiguous chunks; each
/// worker fills its own output vector and the chunks are concatenated in
/// chunk order, so the returned `Vec` is identical — element for element —
/// to the sequential `(0..len).map(f).collect()`.
pub fn parallel_map_indexed<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_map_with(threads, len, || (), |_, i| f(i))
}

/// Like [`parallel_map_indexed`], but each worker first builds a per-thread
/// state with `init` and threads it through every call in its chunk. This is
/// the shape the batch rank-PMF sweep needs: each worker replays the shared
/// chronological activation sweep in its own scratch state, so per-item
/// results stay independent of the chunking (and therefore of the thread
/// count).
pub fn parallel_map_with<R, S, I, F>(threads: usize, len: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = resolve_threads(threads).min(len.max(1));
    if threads <= 1 || len <= 1 {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    let base = len / threads;
    let rem = len % threads;
    let mut bounds = Vec::with_capacity(threads + 1);
    let mut start = 0;
    bounds.push(0);
    for t in 0..threads {
        start += base + usize::from(t < rem);
        bounds.push(start);
    }
    let (init, f) = (&init, &f);
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(threads);
    cpdb_sync::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                scope.spawn(move || {
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("parallel_map_with worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let out = parallel_map_indexed(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn any_thread_count_matches_sequential() {
        let seq = parallel_map_indexed(1, 37, |i| i as f64 * 0.1);
        for threads in [2, 3, 8, 64] {
            let par = parallel_map_indexed(threads, 37, |i| i as f64 * 0.1);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(parallel_map_indexed(8, 0, |i| i).is_empty());
        assert_eq!(parallel_map_indexed(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn stateful_map_matches_sequential_at_any_thread_count() {
        // Per-thread state is a scratch buffer; results must not depend on it.
        let run = |threads| {
            parallel_map_with(
                threads,
                25,
                Vec::<usize>::new,
                |scratch: &mut Vec<usize>, i| {
                    scratch.push(i);
                    i * 3
                },
            )
        };
        let seq = run(1);
        for threads in [2, 5, 16] {
            assert_eq!(seq, run(threads), "threads = {threads}");
        }
    }

    #[test]
    fn explicit_thread_count_wins_over_auto() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
