//! End-to-end replication protocol tests over the in-memory fault VFS:
//! ship/replay round-trips, quarantine of damaged ships, WAL retention
//! for lagging followers, anchor rotation, promotion, and fencing.

use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
use cpdb_engine::{ConsensusEngine, ConsensusEngineBuilder, Query, TopKMetric, Variant};
use cpdb_live::{ComponentHealth, LiveEngine, ReplicaRole, TreeDelta};
use cpdb_replica::{check_divergence, Follower, Primary, ReplicaError, Transport};
use cpdb_store::fault::FaultVfs;
use cpdb_store::ship::{read_manifest_with, write_fence_with, write_manifest_with, MANIFEST_FILE};
use cpdb_store::store::StoreOptions;
use cpdb_store::{RetryPolicy, Vfs, VfsFile};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn bid_tree() -> AndXorTree {
    let mut b = AndXorTreeBuilder::new();
    let mut xors = Vec::new();
    for (key, alts) in [
        (1u64, vec![(95.0, 0.3), (40.0, 0.5)]),
        (2, vec![(80.0, 0.6), (55.0, 0.2)]),
        (3, vec![(70.0, 0.9)]),
        (4, vec![(60.0, 0.4), (50.0, 0.4)]),
    ] {
        let edges: Vec<_> = alts
            .iter()
            .map(|&(v, p)| (b.leaf_parts(key, v), p))
            .collect();
        xors.push(b.xor_node(edges));
    }
    let root = b.and_node(xors);
    b.build(root).unwrap()
}

fn engine() -> ConsensusEngine {
    ConsensusEngineBuilder::new(bid_tree())
        .seed(5)
        .kendall_distance_samples(64)
        .build()
        .unwrap()
}

fn options(vfs: &FaultVfs) -> StoreOptions {
    StoreOptions {
        vfs: Arc::new(vfs.clone()),
        retry: RetryPolicy::no_delay(3),
        ..StoreOptions::default()
    }
}

fn arc(vfs: &FaultVfs) -> Arc<dyn Vfs> {
    Arc::new(vfs.clone())
}

fn topk(k: usize) -> Query {
    Query::TopK {
        k,
        metric: TopKMetric::SymmetricDifference,
        variant: Variant::Mean,
    }
}

fn probes() -> Vec<Query> {
    vec![topk(1), topk(2), topk(3)]
}

/// Always-valid write stream: leaf-value updates cycling over the leaves.
fn leaf_deltas(tree: &AndXorTree, count: usize) -> Vec<TreeDelta> {
    let leaves = tree.leaf_nodes();
    (0..count)
        .map(|i| TreeDelta::LeafValue {
            leaf: leaves[i % leaves.len()],
            value: 40.0 + (i % 53) as f64,
        })
        .collect()
}

/// A primary over `pvfs` with its store at `/p/store` and outbox at
/// `/p/outbox`.
fn primary(pvfs: &FaultVfs) -> Primary {
    let live =
        LiveEngine::new_durable_with(engine(), Path::new("/p/store"), options(pvfs)).unwrap();
    Primary::attach(live, arc(pvfs), Path::new("/p/outbox")).unwrap()
}

/// A follower over `fvfs` pulling from `/p/outbox` on `pvfs` into `inbox`,
/// with its local store at `store`.
fn follower_at(pvfs: &FaultVfs, fvfs: &FaultVfs, inbox: &str, store: &str) -> Follower {
    let transport = Transport::new(
        arc(pvfs),
        Path::new("/p/outbox"),
        arc(fvfs),
        Path::new(inbox),
    )
    .unwrap();
    Follower::open(transport, Path::new(store), options(fvfs)).unwrap()
}

/// A follower over `fvfs` pulling from `/p/outbox` on `pvfs` into
/// `/f/inbox`, with its local store at `/f/store`.
fn follower(pvfs: &FaultVfs, fvfs: &FaultVfs) -> Follower {
    follower_at(pvfs, fvfs, "/f/inbox", "/f/store")
}

#[test]
fn follower_replays_shipped_segments_bit_identically() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let primary = primary(&pvfs);
    primary.ship().unwrap(); // anchor at epoch 0

    let deltas = leaf_deltas(primary.snapshot().tree(), 6);
    for delta in &deltas[..4] {
        primary.apply(delta).unwrap();
    }
    assert_eq!(primary.ship().unwrap(), 4);

    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 4);
    assert_eq!(follower.applied_epoch(), 4);
    assert_eq!(follower.lag(), 0);
    check_divergence(&primary.snapshot(), &follower.snapshot(), &probes()).unwrap();

    // A second round through the incremental segment path.
    for delta in &deltas[4..] {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();
    assert_eq!(follower.sync().unwrap(), 6);
    check_divergence(&primary.snapshot(), &follower.snapshot(), &probes()).unwrap();

    let status = follower.health().replication.unwrap();
    assert_eq!(status.role, ReplicaRole::Follower);
    assert_eq!(status.epoch, 6);
    assert_eq!(status.lag, 0);
    assert!(status.link.is_healthy());
    let pstatus = primary.health().replication.unwrap();
    assert_eq!(pstatus.role, ReplicaRole::Primary);
    assert_eq!(pstatus.epoch, 6);
}

#[test]
fn outbox_passes_the_deep_scan() {
    let pvfs = FaultVfs::new();
    let primary = primary(&pvfs);
    primary.ship().unwrap();
    let deltas = leaf_deltas(primary.snapshot().tree(), 3);
    for delta in &deltas {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();

    let outcome = cpdb_store::verify::verify_dir_with(&arc(&pvfs), Path::new("/p/outbox")).unwrap();
    assert!(outcome.clean(), "outbox not clean: {:?}", outcome.problems);
    let manifest = read_manifest_with(&arc(&pvfs), Path::new("/p/outbox")).unwrap();
    assert_eq!(manifest.anchor.map(|(e, _, _)| e), Some(0));
    assert_eq!(manifest.segments.len(), 1);
    assert_eq!(
        (
            manifest.segments[0].first_epoch,
            manifest.segments[0].last_epoch
        ),
        (1, 3)
    );
}

#[test]
fn corrupt_ship_is_quarantined_and_never_served() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let primary = primary(&pvfs);
    primary.ship().unwrap();
    let deltas = leaf_deltas(primary.snapshot().tree(), 4);
    for delta in &deltas[..2] {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();
    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 2);
    let before = follower.snapshot().run(&topk(2)).unwrap();

    // Flip one byte in the next shipped segment at the source.
    for delta in &deltas[2..] {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();
    let seg_path = Path::new("/p/outbox").join(cpdb_store::ship::segment_file_name(3, 4));
    let mut bytes = pvfs.contents(&seg_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let pv = arc(&pvfs);
    let mut file = pv.create_truncated(&seg_path).unwrap();
    file.write_all(&bytes).unwrap();
    file.sync_all().unwrap();
    drop(file);

    // Every refetch sees the damaged source: sync fails, the follower
    // keeps serving epoch 2, and the damaged copies are quarantined.
    let err = follower.sync().unwrap_err();
    assert!(
        matches!(err, ReplicaError::SegmentUnavailable { .. }),
        "{err}"
    );
    assert_eq!(follower.applied_epoch(), 2);
    assert_eq!(follower.snapshot().run(&topk(2)).unwrap(), before);
    let status = follower.health().replication.unwrap();
    assert!(matches!(status.link, ComponentHealth::Degraded { .. }));
    let inbox = arc(&fvfs).read_dir_names(Path::new("/f/inbox")).unwrap();
    assert!(
        inbox.iter().any(|n| n.ends_with(".quarantine")),
        "no quarantined copy in {inbox:?}"
    );

    // Repair the source (re-ship the same bytes): the follower recovers.
    bytes[mid] ^= 0x40;
    let mut file = pv.create_truncated(&seg_path).unwrap();
    file.write_all(&bytes).unwrap();
    file.sync_all().unwrap();
    drop(file);
    assert_eq!(follower.sync().unwrap(), 4);
    check_divergence(&primary.snapshot(), &follower.snapshot(), &probes()).unwrap();
}

#[test]
fn follower_keeps_serving_while_the_link_is_down() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let primary = primary(&pvfs);
    primary.ship().unwrap();
    let deltas = leaf_deltas(primary.snapshot().tree(), 2);
    for delta in &deltas {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();
    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 2);
    let before = follower.snapshot().run(&topk(2)).unwrap();

    // Outbox storage goes dark: every fetch fails.
    pvfs.fail_at(pvfs.op_count(), std::io::ErrorKind::Other, true);
    assert!(follower.sync().is_err());
    assert_eq!(follower.applied_epoch(), 2);
    assert_eq!(follower.snapshot().run(&topk(2)).unwrap(), before);

    pvfs.clear_faults();
    assert_eq!(follower.sync().unwrap(), 2);
    assert!(follower.health().replication.unwrap().link.is_healthy());
}

#[test]
fn watermark_retains_wal_for_a_lagging_follower() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let primary = primary(&pvfs);
    primary.ship().unwrap(); // anchor at 0; ship watermark pinned at 0
    primary.live().set_snapshot_every(2);

    // Aggressive compaction between ships: without the ship watermark the
    // store would truncate the WAL past the shipped epoch and force a
    // re-anchor instead of an incremental segment.
    let deltas = leaf_deltas(primary.snapshot().tree(), 10);
    for delta in &deltas {
        primary.apply(delta).unwrap();
        primary.live().await_compaction();
    }
    assert_eq!(primary.ship().unwrap(), 10);
    let manifest = read_manifest_with(&arc(&pvfs), Path::new("/p/outbox")).unwrap();
    assert_eq!(
        manifest
            .segments
            .iter()
            .map(|s| (s.first_epoch, s.last_epoch))
            .collect::<Vec<_>>(),
        vec![(1, 10)],
        "lagging follower's run was compacted away instead of retained"
    );

    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 10);
    check_divergence(&primary.snapshot(), &follower.snapshot(), &probes()).unwrap();
}

#[test]
fn rotation_reanchors_followers_past_the_dropped_chain() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let primary = primary(&pvfs);
    primary.ship().unwrap();
    let deltas = leaf_deltas(primary.snapshot().tree(), 3);
    for delta in &deltas[..2] {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();
    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 2);

    primary.apply(&deltas[2]).unwrap();
    assert_eq!(primary.rotate_anchor().unwrap(), 3);
    let outbox = arc(&pvfs).read_dir_names(Path::new("/p/outbox")).unwrap();
    assert!(
        !outbox.iter().any(|n| n.starts_with("segment-")),
        "rotation left old segments behind: {outbox:?}"
    );

    // The follower's position predates the rebased chain: it rebuilds
    // from the new anchor.
    assert_eq!(follower.sync().unwrap(), 3);
    check_divergence(&primary.snapshot(), &follower.snapshot(), &probes()).unwrap();
}

#[test]
fn follower_restart_resumes_from_its_local_store() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let primary = primary(&pvfs);
    primary.ship().unwrap();
    let deltas = leaf_deltas(primary.snapshot().tree(), 3);
    for delta in &deltas {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();
    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 3);
    drop(follower);

    // Reopen: the local store already holds epoch 3; no re-bootstrap.
    let reopened = crate::follower(&pvfs, &fvfs);
    assert_eq!(reopened.applied_epoch(), 3);
    check_divergence(&primary.snapshot(), &reopened.snapshot(), &probes()).unwrap();
}

#[test]
fn promotion_fences_the_old_primary() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let old_primary = primary(&pvfs);
    old_primary.ship().unwrap();
    let deltas = leaf_deltas(old_primary.snapshot().tree(), 6);
    for delta in &deltas[..3] {
        old_primary.apply(delta).unwrap();
    }
    old_primary.ship().unwrap();
    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 3);
    let reference = old_primary.snapshot();

    // The primary host dies; the follower takes over the chain.
    let new_primary = follower.promote().unwrap();
    assert_eq!(new_primary.held_token(), 2);
    assert_eq!(new_primary.epoch(), 3);
    check_divergence(&reference, &new_primary.snapshot(), &probes()).unwrap();

    // The old primary's next fenced operation is refused with the typed
    // error — even though its process is still alive.
    let err = old_primary.apply(&deltas[3]).unwrap_err();
    assert!(
        matches!(
            err,
            ReplicaError::Fenced {
                held: 1,
                manifest: 2
            }
        ),
        "{err}"
    );
    let err = old_primary.ship().unwrap_err();
    assert!(matches!(err, ReplicaError::Fenced { .. }), "{err}");

    // A revived old primary (fresh process over the same store) is refused
    // at attach.
    let live = old_primary.into_live();
    drop(live);
    let revived = LiveEngine::open_with(Path::new("/p/store"), options(&pvfs)).unwrap();
    let err = match Primary::attach(revived, arc(&pvfs), Path::new("/p/outbox")) {
        Ok(_) => panic!("revived old primary was allowed to reattach"),
        Err(e) => e,
    };
    assert!(
        matches!(
            err,
            ReplicaError::Fenced {
                held: 1,
                manifest: 2
            }
        ),
        "{err}"
    );

    // The new primary owns the chain: writes and ships proceed, and a
    // fresh follower of the rebased chain converges on it.
    for delta in &deltas[3..] {
        new_primary.apply(delta).unwrap();
    }
    new_primary.ship().unwrap();
    let gvfs = FaultVfs::new();
    let transport = Transport::new(
        arc(&pvfs),
        Path::new("/p/outbox"),
        arc(&gvfs),
        Path::new("/g/inbox"),
    )
    .unwrap();
    let mut second = Follower::open(transport, Path::new("/g/store"), options(&gvfs)).unwrap();
    assert_eq!(second.sync().unwrap(), 6);
    check_divergence(&new_primary.snapshot(), &second.snapshot(), &probes()).unwrap();
}

#[test]
fn divergence_checks_catch_drift_and_epoch_skew() {
    let pvfs = FaultVfs::new();
    let qvfs = FaultVfs::new();
    let a = LiveEngine::new_durable_with(engine(), Path::new("/a/store"), options(&pvfs)).unwrap();
    let b = LiveEngine::new_durable_with(engine(), Path::new("/b/store"), options(&qvfs)).unwrap();
    let deltas = leaf_deltas(a.snapshot().tree(), 2);

    // Same epoch, different state: the digest catches it.
    a.apply(&deltas[0]).unwrap();
    b.apply(&deltas[1]).unwrap();
    let err = check_divergence(&a.snapshot(), &b.snapshot(), &probes()).unwrap_err();
    assert!(
        matches!(err, ReplicaError::Diverged { epoch: 1, .. }),
        "{err}"
    );

    // Different epochs are refused outright.
    a.apply(&deltas[1]).unwrap();
    let err = check_divergence(&a.snapshot(), &b.snapshot(), &probes()).unwrap_err();
    assert!(
        matches!(
            err,
            ReplicaError::EpochMismatch {
                primary: 2,
                replica: 1
            }
        ),
        "{err}"
    );

    // Converged state (same deltas, either order — they touch distinct
    // leaves) passes both the digest and the probes.
    b.apply(&deltas[0]).unwrap();
    check_divergence(&a.snapshot(), &b.snapshot(), &probes()).unwrap();
}

#[test]
fn promotion_reanchors_a_follower_ahead_of_the_new_anchor() {
    let pvfs = FaultVfs::new();
    let avfs = FaultVfs::new();
    let bvfs = FaultVfs::new();
    let old_primary = primary(&pvfs);
    old_primary.ship().unwrap();
    let deltas = leaf_deltas(old_primary.snapshot().tree(), 5);

    // Follower B stops syncing at epoch 2; follower A reaches epoch 5.
    for delta in &deltas[..2] {
        old_primary.apply(delta).unwrap();
    }
    old_primary.ship().unwrap();
    let mut b = follower_at(&pvfs, &bvfs, "/b/inbox", "/b/store");
    assert_eq!(b.sync().unwrap(), 2);
    for delta in &deltas[2..] {
        old_primary.apply(delta).unwrap();
    }
    old_primary.ship().unwrap();
    let mut a = follower_at(&pvfs, &avfs, "/a/inbox", "/a/store");
    assert_eq!(a.sync().unwrap(), 5);
    drop(old_primary);

    // B takes over at epoch 2: epochs 3-5 of the old chain are dead
    // history. The new chain then grows past A's applied epoch with
    // *different* deltas.
    let new_primary = b.promote().unwrap();
    let alt: Vec<TreeDelta> = leaf_deltas(new_primary.snapshot().tree(), 4)
        .into_iter()
        .map(|d| match d {
            TreeDelta::LeafValue { leaf, value } => TreeDelta::LeafValue {
                leaf,
                value: value + 7.0,
            },
            other => other,
        })
        .collect();
    for delta in &alt {
        new_primary.apply(delta).unwrap();
    }
    new_primary.ship().unwrap();
    assert_eq!(new_primary.epoch(), 6);

    // A is at epoch 5 on the dead history; splicing the new chain's
    // epoch-6 segment on top would silently mix the two. It must instead
    // discard its suffix and rebootstrap from the new anchor.
    assert_eq!(a.sync().unwrap(), 6);
    check_divergence(&new_primary.snapshot(), &a.snapshot(), &probes()).unwrap();
}

/// Delegating VFS that simulates a promotion landing in the middle of a
/// ship: the first rename that commits a manifest first writes fencing
/// token 2 into the outbox's fence file — after the shipping primary's
/// pre-flight fence check, before its commit lands.
#[derive(Debug)]
struct RaceVfs {
    inner: Arc<dyn Vfs>,
    armed: AtomicBool,
}

impl Vfs for RaceVfs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.inner.open_rw(path)
    }
    fn create_truncated(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.inner.create_truncated(path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if to.file_name().and_then(|n| n.to_str()) == Some(MANIFEST_FILE)
            && self.armed.swap(false, Ordering::SeqCst)
        {
            write_fence_with(&self.inner, Path::new("/p/outbox"), 2)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[test]
fn a_promotion_racing_a_ship_fences_the_loser() {
    let pvfs = FaultVfs::new();
    let live =
        LiveEngine::new_durable_with(engine(), Path::new("/p/store"), options(&pvfs)).unwrap();
    let race = Arc::new(RaceVfs {
        inner: arc(&pvfs),
        armed: AtomicBool::new(false),
    });
    let primary =
        Primary::attach(live, race.clone() as Arc<dyn Vfs>, Path::new("/p/outbox")).unwrap();
    primary.ship().unwrap();
    let deltas = leaf_deltas(primary.snapshot().tree(), 2);
    for delta in &deltas {
        primary.apply(delta).unwrap();
    }

    // The promotion's fence lands between this ship's pre-flight check
    // and its manifest commit. The commit still clobbers the manifest
    // (renames are not compare-and-swap), but the post-commit fence
    // re-check catches it: the ship fails instead of silently keeping the
    // chain, and every later write is fenced too.
    race.armed.store(true, Ordering::SeqCst);
    let err = primary.ship().unwrap_err();
    assert!(
        matches!(
            err,
            ReplicaError::Fenced {
                held: 1,
                manifest: 2
            }
        ),
        "{err}"
    );
    let err = primary.apply(&deltas[0]).unwrap_err();
    assert!(matches!(err, ReplicaError::Fenced { .. }), "{err}");
}

#[test]
fn follower_reopens_and_serves_while_the_outbox_is_dark() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let primary = primary(&pvfs);
    primary.ship().unwrap();
    let deltas = leaf_deltas(primary.snapshot().tree(), 2);
    for delta in &deltas {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();
    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 2);
    let before = follower.snapshot().run(&topk(2)).unwrap();
    drop(follower);

    // The outbox goes dark, then the follower restarts: it must come
    // back up on its intact local store and keep serving, link degraded.
    pvfs.fail_at(pvfs.op_count(), std::io::ErrorKind::Other, true);
    let transport = Transport::new(
        arc(&pvfs),
        Path::new("/p/outbox"),
        arc(&fvfs),
        Path::new("/f/inbox"),
    )
    .unwrap();
    let mut reopened = Follower::open(transport, Path::new("/f/store"), options(&fvfs)).unwrap();
    assert_eq!(reopened.applied_epoch(), 2);
    assert_eq!(reopened.snapshot().run(&topk(2)).unwrap(), before);
    let status = reopened.health().replication.unwrap();
    assert!(
        matches!(status.link, ComponentHealth::Degraded { .. }),
        "link should be degraded while the outbox is unreachable"
    );

    pvfs.clear_faults();
    assert_eq!(reopened.sync().unwrap(), 2);
    assert!(reopened.health().replication.unwrap().link.is_healthy());
    check_divergence(&primary.snapshot(), &reopened.snapshot(), &probes()).unwrap();
}

#[test]
fn follower_refuses_a_fenced_writers_manifest() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let gvfs = FaultVfs::new();
    let old_primary = primary(&pvfs);
    old_primary.ship().unwrap();
    let deltas = leaf_deltas(old_primary.snapshot().tree(), 5);
    for delta in &deltas[..3] {
        old_primary.apply(delta).unwrap();
    }
    old_primary.ship().unwrap();
    let mut follower = follower(&pvfs, &fvfs);
    assert_eq!(follower.sync().unwrap(), 3);
    let stale = read_manifest_with(&arc(&pvfs), Path::new("/p/outbox")).unwrap();
    drop(old_primary);

    // Promote a second replica, grow the new chain, and let the follower
    // adopt it.
    let mut g = follower_at(&pvfs, &gvfs, "/g/inbox", "/g/store");
    assert_eq!(g.sync().unwrap(), 3);
    let new_primary = g.promote().unwrap();
    for delta in &deltas[3..] {
        new_primary.apply(delta).unwrap();
    }
    new_primary.ship().unwrap();
    assert_eq!(follower.sync().unwrap(), 5);

    // A fenced writer's lost-race commit rewrites the manifest with the
    // old token. The follower must refuse it and keep its state.
    write_manifest_with(&arc(&pvfs), Path::new("/p/outbox"), &stale).unwrap();
    let err = follower.sync().unwrap_err();
    assert!(
        matches!(
            err,
            ReplicaError::StaleManifest {
                followed: 2,
                fetched: 1
            }
        ),
        "{err}"
    );
    assert_eq!(follower.applied_epoch(), 5);

    // The rightful writer's next ship heals the clobber without shipping
    // anything new, and the follower recovers.
    new_primary.ship().unwrap();
    assert_eq!(follower.sync().unwrap(), 5);
    check_divergence(&new_primary.snapshot(), &follower.snapshot(), &probes()).unwrap();
}

#[test]
fn replication_metrics_and_events_flow_into_the_shared_sink() {
    let pvfs = FaultVfs::new();
    let fvfs = FaultVfs::new();
    let obs = cpdb_obs::Obs::enabled();
    let live = LiveEngine::new_durable_with(
        engine(),
        Path::new("/p/store"),
        StoreOptions {
            obs: obs.clone(),
            ..options(&pvfs)
        },
    )
    .unwrap();
    let primary = Primary::attach(live, arc(&pvfs), Path::new("/p/outbox")).unwrap();
    primary.ship().unwrap(); // anchor at epoch 0
    for delta in &leaf_deltas(primary.snapshot().tree(), 3) {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap(); // segment 1..=3

    let snap = obs.snapshot();
    assert_eq!(snap.counter("replica.ship.segments"), Some(1));
    assert!(snap.counter("replica.ship.bytes").unwrap_or(0) > 0);
    // Everything applied has shipped, so the primary's lag gauge is flat.
    assert_eq!(snap.gauge("replica.lag"), Some(0));
    let kinds: Vec<_> = obs.drain_events().into_iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&cpdb_obs::EventKind::Ship), "{kinds:?}");

    // The follower registers against its own sink (passed via store
    // options) and records the sync.
    let fobs = cpdb_obs::Obs::enabled();
    let transport = Transport::new(
        arc(&pvfs),
        Path::new("/p/outbox"),
        arc(&fvfs),
        Path::new("/f/inbox"),
    )
    .unwrap();
    let mut follower = Follower::open(
        transport,
        Path::new("/f/store"),
        StoreOptions {
            obs: fobs.clone(),
            ..options(&fvfs)
        },
    )
    .unwrap();
    assert_eq!(follower.sync().unwrap(), 3);
    let fsnap = fobs.snapshot();
    assert_eq!(fsnap.gauge("replica.lag"), Some(0));
    let fkinds: Vec<_> = fobs.drain_events().into_iter().map(|e| e.kind).collect();
    assert!(fkinds.contains(&cpdb_obs::EventKind::Sync), "{fkinds:?}");

    // Damage the next shipped segment: the quarantine shows up as a
    // counter and a flight-recorder event, and the served state survives.
    for delta in &leaf_deltas(primary.snapshot().tree(), 2) {
        primary.apply(delta).unwrap();
    }
    primary.ship().unwrap();
    let seg_path = Path::new("/p/outbox").join(cpdb_store::ship::segment_file_name(4, 5));
    let mut bytes = pvfs.contents(&seg_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let mut file = arc(&pvfs).create_truncated(&seg_path).unwrap();
    file.write_all(&bytes).unwrap();
    file.sync_all().unwrap();
    drop(file);
    assert!(follower.sync().is_err());
    let fsnap = fobs.snapshot();
    assert!(fsnap.counter("replica.quarantines").unwrap_or(0) >= 1);
    let fkinds: Vec<_> = fobs.drain_events().into_iter().map(|e| e.kind).collect();
    assert!(
        fkinds.contains(&cpdb_obs::EventKind::Quarantine),
        "{fkinds:?}"
    );
    assert_eq!(follower.applied_epoch(), 3);
}
