//! Read replicas for consensus-pdb: WAL segment shipping, divergence
//! detection, and fenced primary failover.
//!
//! The primary's durable [`LiveEngine`](cpdb_live::LiveEngine) already
//! writes every applied [`TreeDelta`](cpdb_live::TreeDelta) to a local WAL.
//! This crate turns that log into a replication stream:
//!
//! * A [`Primary`] wraps the writer engine and **ships** its WAL as
//!   immutable, CRC-framed segment files plus a snapshot *anchor* into an
//!   outbox directory. A checksummed manifest names every shipped file,
//!   its epoch range, and its checksum; rewriting the manifest is the
//!   commit point of each ship, mirroring the store's
//!   publish-pointer-is-commit-point rule.
//! * A [`Follower`] bootstraps a read-only engine from the shipped anchor
//!   and tails the segment chain through a [`Transport`], verifying every
//!   byte against the manifest before replay. Corrupt or torn ships are
//!   quarantined and re-fetched; until a verified segment arrives the
//!   follower keeps serving its last verified epoch.
//! * [`check_divergence`] proves (or refutes) that a follower's state is
//!   bit-identical to the primary's at the same epoch: an epoch-stamped
//!   digest of the canonical export plus conformance probes.
//! * [`Follower::promote`] turns a follower into the new writer. Promotion
//!   bumps the **fencing token** in the outbox's fence file — which ships
//!   never rewrite — before committing its manifest; a revived old primary
//!   finds a token newer than the one it holds and refuses to write with
//!   [`ReplicaError::Fenced`]. Because file renames are not
//!   compare-and-swap, a fenced writer racing the promotion can still
//!   clobber the *manifest*; every writer therefore re-checks the fence
//!   after each manifest commit (standing down with [`ReplicaError::Fenced`]
//!   if it lost), rewrites the chain from its own in-memory copy on the
//!   next ship rather than re-adopting disk contents, and followers refuse
//!   to adopt a manifest whose token is older than the chain they already
//!   follow ([`ReplicaError::StaleManifest`]). Each follower records the
//!   manifest it last adopted next to its local store, so a replica whose
//!   applied epoch is ahead of a new writer's anchor discards its
//!   dead-history suffix and rebootstraps instead of splicing chains.
//!
//! All I/O goes through the store's [`Vfs`](cpdb_store::Vfs) trait, so the
//! whole protocol — shipping, verification, quarantine, promotion — runs
//! under deterministic fault injection in the test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod divergence;
mod follower;
mod obs;
mod primary;
mod transport;

pub use divergence::{check_divergence, epoch_digest};
pub use follower::Follower;
pub use primary::Primary;
pub use transport::Transport;

use cpdb_engine::EngineError;
use cpdb_live::LiveError;
use cpdb_store::StoreError;

/// How many times a fetch is retried (with quarantine of the damaged copy
/// in between) before the follower gives up on a file for this sync.
pub const FETCH_ATTEMPTS: u32 = 3;

/// Errors surfaced by the replication layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplicaError {
    /// The underlying store failed or a shipped file failed verification.
    Store(StoreError),
    /// The wrapped live engine refused or failed an operation.
    Live(LiveError),
    /// The query engine failed while probing for divergence.
    Engine(EngineError),
    /// The live engine has no durable store attached; replication requires
    /// a WAL to ship.
    NotDurable,
    /// The manifest carries a fencing token newer than the one this
    /// primary holds: another node was promoted, and this writer must
    /// stand down.
    Fenced {
        /// The token this (old) primary durably holds.
        held: u64,
        /// The newer token found in the manifest.
        manifest: u64,
    },
    /// The fetched manifest carries a fencing token older than the chain
    /// this follower already adopted: it was written by a fenced writer
    /// that lost a promotion race, and must not be replayed.
    StaleManifest {
        /// The fencing token of the chain the follower currently follows.
        followed: u64,
        /// The older token carried by the fetched manifest.
        fetched: u64,
    },
    /// A shipped file could not be fetched and verified within
    /// [`FETCH_ATTEMPTS`]; the damaged copies were quarantined and the
    /// follower keeps serving its last verified epoch.
    SegmentUnavailable {
        /// The shipped file's name.
        name: String,
        /// The last verification or I/O failure.
        context: String,
    },
    /// The verified segment chain does not continue from the follower's
    /// applied epoch — the manifest is internally consistent but does not
    /// reach this replica's position.
    ChainBroken {
        /// The epoch the follower needed next.
        expected: u64,
        /// The first epoch the chain actually provides.
        found: u64,
    },
    /// The replica's state digest differs from the primary's at the same
    /// epoch: the replica has diverged.
    Diverged {
        /// The epoch both sides were compared at.
        epoch: u64,
        /// The primary's canonical-state digest.
        primary_digest: u32,
        /// The replica's canonical-state digest.
        replica_digest: u32,
    },
    /// A divergence check was asked to compare snapshots at different
    /// epochs; the comparison is only meaningful epoch-for-epoch.
    EpochMismatch {
        /// The primary snapshot's epoch.
        primary: u64,
        /// The replica snapshot's epoch.
        replica: u64,
    },
    /// A conformance probe answered differently on the replica than on the
    /// primary at the same epoch.
    AnswerMismatch {
        /// The epoch both sides were probed at.
        epoch: u64,
        /// The index of the failing query in the probe list.
        index: usize,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Store(e) => write!(f, "store error: {e}"),
            ReplicaError::Live(e) => write!(f, "live engine error: {e}"),
            ReplicaError::Engine(e) => write!(f, "engine error: {e}"),
            ReplicaError::NotDurable => {
                write!(
                    f,
                    "replication requires a durable engine with a store attached"
                )
            }
            ReplicaError::Fenced { held, manifest } => write!(
                f,
                "fenced: this primary holds token {held} but the manifest carries {manifest}; \
                 another node was promoted and this writer must stand down"
            ),
            ReplicaError::StaleManifest { followed, fetched } => write!(
                f,
                "stale manifest: fetched fencing token {fetched} is older than the followed \
                 chain's token {followed}; refusing to adopt a fenced writer's manifest"
            ),
            ReplicaError::SegmentUnavailable { name, context } => write!(
                f,
                "shipped file {name} could not be fetched and verified: {context}"
            ),
            ReplicaError::ChainBroken { expected, found } => write!(
                f,
                "segment chain broken: follower needs epoch {expected} next but the chain \
                 starts at {found}"
            ),
            ReplicaError::Diverged {
                epoch,
                primary_digest,
                replica_digest,
            } => write!(
                f,
                "replica diverged at epoch {epoch}: primary digest {primary_digest:#010x}, \
                 replica digest {replica_digest:#010x}"
            ),
            ReplicaError::EpochMismatch { primary, replica } => write!(
                f,
                "divergence check requires equal epochs (primary {primary}, replica {replica})"
            ),
            ReplicaError::AnswerMismatch { epoch, index } => write!(
                f,
                "conformance probe {index} answered differently on the replica at epoch {epoch}"
            ),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Store(e) => Some(e),
            ReplicaError::Live(e) => Some(e),
            ReplicaError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ReplicaError {
    fn from(e: StoreError) -> Self {
        ReplicaError::Store(e)
    }
}

impl From<LiveError> for ReplicaError {
    fn from(e: LiveError) -> Self {
        ReplicaError::Live(e)
    }
}

impl From<EngineError> for ReplicaError {
    fn from(e: EngineError) -> Self {
        ReplicaError::Engine(e)
    }
}
