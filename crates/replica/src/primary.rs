//! The shipping side: a writer engine that publishes its WAL as a
//! verified segment chain.

use crate::ReplicaError;
use cpdb_live::{
    AppliedDelta, ComponentHealth, Health, LiveEngine, ReplicaRole, ReplicationStatus, Snapshot,
    TreeDelta,
};
use cpdb_store::ship::{
    read_fence_with, read_manifest_with, write_anchor_with, write_fence_with, write_manifest_with,
    write_segment_with, Manifest,
};
use cpdb_store::{Store, StoreError, Vfs};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A writer engine attached to an outbox directory it ships WAL segments
/// into.
///
/// Every write-path operation first re-reads the outbox manifest and
/// compares its fencing token to the token this primary durably holds in
/// its own store directory; a newer token means another node was promoted
/// and the operation fails with [`ReplicaError::Fenced`] instead of
/// splitting the brain.
pub struct Primary {
    live: LiveEngine,
    outbox_vfs: Arc<dyn Vfs>,
    outbox: PathBuf,
    held_token: u64,
}

impl Primary {
    /// Attaches a durable engine to `outbox`.
    ///
    /// A fresh outbox is claimed by writing a manifest with fencing token 1
    /// (or the token already held in the store directory, if larger) and
    /// recording that token durably next to the engine's own WAL. An
    /// existing outbox is only accepted if its manifest token is not newer
    /// than the held one — a revived old primary finds the promoted
    /// follower's token and is refused.
    pub fn attach(
        live: LiveEngine,
        outbox_vfs: Arc<dyn Vfs>,
        outbox: &Path,
    ) -> Result<Primary, ReplicaError> {
        let store = live.store().ok_or(ReplicaError::NotDurable)?;
        let store_vfs = store.vfs();
        let store_dir = store.dir().to_path_buf();
        outbox_vfs
            .create_dir_all(outbox)
            .map_err(StoreError::from)?;
        let held = read_fence_with(&store_vfs, &store_dir)?;
        let (manifest, held_token) = match read_manifest_with(&outbox_vfs, outbox) {
            Ok(manifest) => {
                let held = held.unwrap_or(0);
                if manifest.fencing_token > held {
                    return Err(ReplicaError::Fenced {
                        held,
                        manifest: manifest.fencing_token,
                    });
                }
                (manifest, held)
            }
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                let token = held.unwrap_or(0).max(1);
                let manifest = Manifest {
                    fencing_token: token,
                    ..Manifest::default()
                };
                write_fence_with(&store_vfs, &store_dir, token)?;
                write_manifest_with(&outbox_vfs, outbox, &manifest)?;
                (manifest, token)
            }
            Err(e) => return Err(e.into()),
        };
        if held.is_none() {
            write_fence_with(&store_vfs, &store_dir, held_token)?;
        }
        store.set_ship_watermark(manifest.shipped_epoch());
        let primary = Primary {
            live,
            outbox_vfs,
            outbox: outbox.to_path_buf(),
            held_token,
        };
        primary.publish_status(&manifest);
        Ok(primary)
    }

    /// Reassembles a primary after a promotion already wrote the fence and
    /// manifest; the invariants [`attach`](Primary::attach) checks are
    /// established by the caller.
    pub(crate) fn assume(
        live: LiveEngine,
        outbox_vfs: Arc<dyn Vfs>,
        outbox: PathBuf,
        held_token: u64,
        manifest: &Manifest,
    ) -> Primary {
        let primary = Primary {
            live,
            outbox_vfs,
            outbox,
            held_token,
        };
        primary.publish_status(manifest);
        primary
    }

    /// Re-reads the outbox manifest and refuses the operation if a newer
    /// fencing token has been published. Returns the manifest (with a
    /// stale-but-ours token bumped back to the held one, which the next
    /// manifest write persists).
    fn check_fence(&self) -> Result<Manifest, ReplicaError> {
        let mut manifest = read_manifest_with(&self.outbox_vfs, &self.outbox)?;
        if manifest.fencing_token > self.held_token {
            self.live.set_replication(Some(ReplicationStatus {
                role: ReplicaRole::Primary,
                epoch: manifest.shipped_epoch(),
                lag: 0,
                link: ComponentHealth::Degraded {
                    reason: format!(
                        "fenced: manifest token {} is newer than held token {}",
                        manifest.fencing_token, self.held_token
                    ),
                },
            }));
            return Err(ReplicaError::Fenced {
                held: self.held_token,
                manifest: manifest.fencing_token,
            });
        }
        manifest.fencing_token = self.held_token;
        Ok(manifest)
    }

    /// Applies one delta after confirming this node still owns the chain.
    pub fn apply(&self, delta: &TreeDelta) -> Result<AppliedDelta, ReplicaError> {
        self.check_fence()?;
        Ok(self.live.apply(delta)?)
    }

    /// Applies a batch atomically after confirming chain ownership.
    pub fn apply_all(&self, deltas: &[TreeDelta]) -> Result<Vec<AppliedDelta>, ReplicaError> {
        self.check_fence()?;
        Ok(self.live.apply_all(deltas)?)
    }

    /// Ships everything applied so far: cuts the WAL run since the last
    /// shipped epoch into one immutable segment, appends it to the
    /// manifest, and commits by rewriting the manifest. The first ship
    /// (and any ship whose WAL run was already compacted away) ships a
    /// full snapshot anchor instead. Returns the shipped epoch.
    pub fn ship(&self) -> Result<u64, ReplicaError> {
        let mut manifest = self.check_fence()?;
        let store = self.live.store().ok_or(ReplicaError::NotDurable)?;
        let snapshot = self.live.snapshot();
        let epoch = snapshot.epoch();
        if manifest.anchor.is_none() {
            return self.reanchor(&mut manifest, &snapshot, store);
        }
        let shipped = manifest.shipped_epoch();
        if epoch <= shipped {
            self.publish_status(&manifest);
            return Ok(shipped);
        }
        let records: Vec<(u64, TreeDelta)> = store
            .wal_records()?
            .into_iter()
            .filter(|(e, _)| *e > shipped && *e <= epoch)
            .collect();
        let covers_run = records.first().is_some_and(|(e, _)| *e == shipped + 1)
            && records.last().is_some_and(|(e, _)| *e == epoch)
            && records.len() as u64 == epoch - shipped;
        if !covers_run {
            // The WAL no longer holds the full run (compacted before the
            // watermark was set): rebase the chain on a fresh anchor.
            return self.reanchor(&mut manifest, &snapshot, store);
        }
        let meta = write_segment_with(&self.outbox_vfs, &self.outbox, &records)?;
        manifest.segments.push(meta);
        write_manifest_with(&self.outbox_vfs, &self.outbox, &manifest)?;
        store.set_ship_watermark(epoch);
        self.publish_status(&manifest);
        Ok(epoch)
    }

    /// Ships a fresh snapshot anchor at the current epoch and drops the
    /// segment chain behind it, bounding follower catch-up work and
    /// letting the outbox forget old segments. Returns the anchor epoch.
    pub fn rotate_anchor(&self) -> Result<u64, ReplicaError> {
        let mut manifest = self.check_fence()?;
        let store = self.live.store().ok_or(ReplicaError::NotDurable)?;
        let snapshot = self.live.snapshot();
        self.reanchor(&mut manifest, &snapshot, store)
    }

    /// Writes an anchor at `snapshot`'s epoch and commits a manifest whose
    /// chain restarts there. Superseded files are removed only after the
    /// manifest commit, so a crash mid-rotation never orphans the chain.
    fn reanchor(
        &self,
        manifest: &mut Manifest,
        snapshot: &Snapshot,
        store: &Arc<Store>,
    ) -> Result<u64, ReplicaError> {
        let epoch = snapshot.epoch();
        let entry = write_anchor_with(
            &self.outbox_vfs,
            &self.outbox,
            epoch,
            &snapshot.engine().export(),
        )?;
        let old_anchor = manifest.anchor.replace(entry);
        let old_segments = std::mem::take(&mut manifest.segments);
        write_manifest_with(&self.outbox_vfs, &self.outbox, manifest)?;
        store.set_ship_watermark(epoch);
        for meta in &old_segments {
            let _ = self
                .outbox_vfs
                .remove_file(&self.outbox.join(meta.file_name()));
        }
        if let Some((old_epoch, _, _)) = old_anchor {
            if old_epoch != epoch {
                let _ = self.outbox_vfs.remove_file(
                    &self
                        .outbox
                        .join(cpdb_store::ship::anchor_file_name(old_epoch)),
                );
            }
        }
        self.publish_status(manifest);
        Ok(epoch)
    }

    fn publish_status(&self, manifest: &Manifest) {
        self.live.set_replication(Some(ReplicationStatus {
            role: ReplicaRole::Primary,
            epoch: manifest.shipped_epoch(),
            lag: self.live.epoch().saturating_sub(manifest.shipped_epoch()),
            link: ComponentHealth::Healthy,
        }));
    }

    /// A read snapshot of the wrapped engine.
    pub fn snapshot(&self) -> Snapshot {
        self.live.snapshot()
    }

    /// The current served epoch.
    pub fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// The fencing token this primary durably holds.
    pub fn held_token(&self) -> u64 {
        self.held_token
    }

    /// Engine health, including the replication link.
    pub fn health(&self) -> Health {
        self.live.health()
    }

    /// The wrapped live engine (reads and maintenance; writes should go
    /// through [`apply`](Primary::apply) so they stay behind the fence).
    pub fn live(&self) -> &LiveEngine {
        &self.live
    }

    /// Detaches and returns the wrapped engine.
    pub fn into_live(self) -> LiveEngine {
        self.live
    }
}
