//! The shipping side: a writer engine that publishes its WAL as a
//! verified segment chain.

use crate::obs::ReplicaObs;
use crate::ReplicaError;
use cpdb_live::{
    AppliedDelta, ComponentHealth, Health, LiveEngine, ReplicaRole, ReplicationStatus, Snapshot,
    TreeDelta,
};
use cpdb_store::ship::{
    read_fence_with, read_manifest_with, write_anchor_with, write_fence_with, write_manifest_with,
    write_segment_with, Manifest,
};
use cpdb_store::{Store, StoreError, Vfs};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// A writer engine attached to an outbox directory it ships WAL segments
/// into.
///
/// Ownership of the outbox is arbitrated by the outbox's **fence file**,
/// which only promotions (and the initial claim) write — shipping never
/// rewrites it. Every write-path operation reads that file and compares it
/// to the token this primary durably holds in its own store directory; a
/// newer token means another node was promoted and the operation fails
/// with [`ReplicaError::Fenced`] instead of splitting the brain.
///
/// Because file renames are not compare-and-swap, a fenced writer racing a
/// promotion can still clobber the *manifest* with one last commit. Two
/// rules bound that race to a single superseded manifest:
///
/// * after every manifest commit the writer re-reads the fence and stands
///   down (without adopting the commit) if it lost, and
/// * the manifest a primary evolves lives **in memory** — disk contents
///   are never re-adopted, so the next ship rewrites the full chain and
///   heals any clobber instead of splicing a foreign chain onto its own.
pub struct Primary {
    live: LiveEngine,
    outbox_vfs: Arc<dyn Vfs>,
    outbox: PathBuf,
    held_token: u64,
    manifest: Mutex<Manifest>,
    obs: ReplicaObs,
}

impl Primary {
    /// Attaches a durable engine to `outbox`.
    ///
    /// A fresh outbox is claimed by writing fencing token 1 (or the token
    /// already held in the store directory, if larger) into both fence
    /// files and committing an empty manifest. An existing outbox is only
    /// accepted if neither its fence file nor its manifest carries a token
    /// newer than the held one — a revived old primary finds the promoted
    /// follower's token and is refused. A chain written under an *older*
    /// token (a fenced writer's lost-race manifest, or this node's own
    /// interrupted claim) is discarded and rebased on an anchor cut from
    /// this engine's own state.
    pub fn attach(
        live: LiveEngine,
        outbox_vfs: Arc<dyn Vfs>,
        outbox: &Path,
    ) -> Result<Primary, ReplicaError> {
        let store = live.store().ok_or(ReplicaError::NotDurable)?;
        let store_vfs = store.vfs();
        let store_dir = store.dir().to_path_buf();
        outbox_vfs
            .create_dir_all(outbox)
            .map_err(StoreError::from)?;
        let held_opt = read_fence_with(&store_vfs, &store_dir)?;
        let held = held_opt.unwrap_or(0);
        let outbox_token = read_fence_with(&outbox_vfs, outbox)?.unwrap_or(0);
        let disk = match read_manifest_with(&outbox_vfs, outbox) {
            Ok(manifest) => Some(manifest),
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let chain_token = outbox_token.max(disk.as_ref().map_or(0, |m| m.fencing_token));
        let (held_token, manifest, needs_commit) = if disk.is_none() && outbox_token == 0 {
            // Fresh outbox: claim it.
            let token = held.max(1);
            (
                token,
                Manifest {
                    fencing_token: token,
                    ..Manifest::default()
                },
                true,
            )
        } else if chain_token > held {
            return Err(ReplicaError::Fenced {
                held,
                manifest: chain_token,
            });
        } else if let Some(manifest) = disk.filter(|m| m.fencing_token == held) {
            (held, manifest, false)
        } else {
            // The on-disk chain was written under an older token; rebase
            // it on this engine's own durable state.
            let token = held.max(1);
            let snapshot = live.snapshot();
            let entry = write_anchor_with(
                &outbox_vfs,
                outbox,
                snapshot.epoch(),
                &snapshot.engine().export(),
            )?;
            (
                token,
                Manifest {
                    fencing_token: token,
                    anchor: Some(entry),
                    ..Manifest::default()
                },
                true,
            )
        };
        if held_opt != Some(held_token) {
            write_fence_with(&store_vfs, &store_dir, held_token)?;
        }
        if outbox_token < held_token {
            write_fence_with(&outbox_vfs, outbox, held_token)?;
        }
        if needs_commit {
            write_manifest_with(&outbox_vfs, outbox, &manifest)?;
        }
        let fence_now = read_fence_with(&outbox_vfs, outbox)?.unwrap_or(0);
        if fence_now > held_token {
            return Err(ReplicaError::Fenced {
                held: held_token,
                manifest: fence_now,
            });
        }
        store.set_ship_watermark(manifest.shipped_epoch());
        let shipped = manifest.shipped_epoch();
        let obs = ReplicaObs::new(live.obs().clone());
        let primary = Primary {
            live,
            outbox_vfs,
            outbox: outbox.to_path_buf(),
            held_token,
            manifest: Mutex::new(manifest),
            obs,
        };
        primary.publish_status(shipped);
        Ok(primary)
    }

    /// Reassembles a primary after a promotion already wrote the fences
    /// and manifest; the invariants [`attach`](Primary::attach) checks are
    /// established by the caller.
    pub(crate) fn assume(
        live: LiveEngine,
        outbox_vfs: Arc<dyn Vfs>,
        outbox: PathBuf,
        held_token: u64,
        manifest: Manifest,
    ) -> Primary {
        let shipped = manifest.shipped_epoch();
        let obs = ReplicaObs::new(live.obs().clone());
        let primary = Primary {
            live,
            outbox_vfs,
            outbox,
            held_token,
            manifest: Mutex::new(manifest),
            obs,
        };
        primary.publish_status(shipped);
        primary
    }

    /// The manifest this primary evolves, independent of disk contents.
    fn lock_manifest(&self) -> Result<MutexGuard<'_, Manifest>, ReplicaError> {
        self.manifest
            .lock()
            .map_err(|_| ReplicaError::Store(StoreError::Poisoned))
    }

    /// Reads the outbox fence file and refuses the operation if a newer
    /// fencing token has been published there. Called both *before* an
    /// operation (fail fast) and *after* every manifest commit: a fenced
    /// writer racing a promotion can clobber the manifest once, but the
    /// fence file — which ships never rewrite — always names the winner.
    fn check_fence(&self) -> Result<(), ReplicaError> {
        let token = read_fence_with(&self.outbox_vfs, &self.outbox)?.unwrap_or(0);
        if token > self.held_token {
            self.live.set_replication(Some(ReplicationStatus {
                role: ReplicaRole::Primary,
                epoch: self.live.epoch(),
                lag: 0,
                link: ComponentHealth::Degraded {
                    reason: format!(
                        "fenced: outbox fence token {token} is newer than held token {}",
                        self.held_token
                    ),
                },
            }));
            self.obs.degraded(|| {
                format!(
                    "fenced: outbox token {token} is newer than held token {}",
                    self.held_token
                )
            });
            return Err(ReplicaError::Fenced {
                held: self.held_token,
                manifest: token,
            });
        }
        Ok(())
    }

    /// Applies one delta after confirming this node still owns the chain.
    pub fn apply(&self, delta: &TreeDelta) -> Result<AppliedDelta, ReplicaError> {
        self.check_fence()?;
        Ok(self.live.apply(delta)?)
    }

    /// Applies a batch atomically after confirming chain ownership.
    pub fn apply_all(&self, deltas: &[TreeDelta]) -> Result<Vec<AppliedDelta>, ReplicaError> {
        self.check_fence()?;
        Ok(self.live.apply_all(deltas)?)
    }

    /// Ships everything applied so far: cuts the WAL run since the last
    /// shipped epoch into one immutable segment, appends it to the
    /// manifest, and commits by rewriting the manifest. The first ship
    /// (and any ship whose WAL run was already compacted away) ships a
    /// full snapshot anchor instead. Returns the shipped epoch.
    pub fn ship(&self) -> Result<u64, ReplicaError> {
        self.check_fence()?;
        let store = self.live.store().ok_or(ReplicaError::NotDurable)?;
        let snapshot = self.live.snapshot();
        let epoch = snapshot.epoch();
        let mut manifest = self.lock_manifest()?;
        if manifest.anchor.is_none() {
            return self.reanchor(&mut manifest, &snapshot, store);
        }
        let shipped = manifest.shipped_epoch();
        if epoch <= shipped {
            // Nothing new to ship — but if a fenced writer's lost-race
            // commit clobbered the on-disk manifest, rewrite our copy.
            self.repair_manifest(&manifest)?;
            self.publish_status(shipped);
            return Ok(shipped);
        }
        let records: Vec<(u64, TreeDelta)> = store
            .wal_records()?
            .into_iter()
            .filter(|(e, _)| *e > shipped && *e <= epoch)
            .collect();
        let covers_run = records.first().is_some_and(|(e, _)| *e == shipped + 1)
            && records.last().is_some_and(|(e, _)| *e == epoch)
            && records.len() as u64 == epoch - shipped;
        if !covers_run {
            // The WAL no longer holds the full run (compacted before the
            // watermark was set): rebase the chain on a fresh anchor.
            return self.reanchor(&mut manifest, &snapshot, store);
        }
        let meta = write_segment_with(&self.outbox_vfs, &self.outbox, &records)?;
        let mut next = manifest.clone();
        next.fencing_token = self.held_token;
        next.segments.push(meta);
        write_manifest_with(&self.outbox_vfs, &self.outbox, &next)?;
        self.check_fence()?;
        *manifest = next;
        store.set_ship_watermark(epoch);
        self.obs.shipped_segment(&meta);
        self.publish_status(epoch);
        Ok(epoch)
    }

    /// Rewrites the on-disk manifest from the in-memory copy if they
    /// differ. This heals the one manifest clobber a fenced writer can
    /// land before its post-commit fence check stands it down, without
    /// shipping anything new.
    fn repair_manifest(&self, manifest: &Manifest) -> Result<(), ReplicaError> {
        let matches = match read_manifest_with(&self.outbox_vfs, &self.outbox) {
            Ok(disk) => disk == *manifest,
            // Missing or unreadable: rewrite it either way.
            Err(_) => false,
        };
        if !matches {
            write_manifest_with(&self.outbox_vfs, &self.outbox, manifest)?;
            self.check_fence()?;
        }
        Ok(())
    }

    /// Ships a fresh snapshot anchor at the current epoch and drops the
    /// segment chain behind it, bounding follower catch-up work and
    /// letting the outbox forget old segments. Returns the anchor epoch.
    pub fn rotate_anchor(&self) -> Result<u64, ReplicaError> {
        self.check_fence()?;
        let store = self.live.store().ok_or(ReplicaError::NotDurable)?;
        let snapshot = self.live.snapshot();
        let mut manifest = self.lock_manifest()?;
        self.reanchor(&mut manifest, &snapshot, store)
    }

    /// Writes an anchor at `snapshot`'s epoch and commits a manifest whose
    /// chain restarts there. Superseded files are removed only after the
    /// manifest commit (and its fence re-check), so a crash mid-rotation
    /// never orphans the chain.
    fn reanchor(
        &self,
        manifest: &mut Manifest,
        snapshot: &Snapshot,
        store: &Arc<Store>,
    ) -> Result<u64, ReplicaError> {
        let epoch = snapshot.epoch();
        let entry = write_anchor_with(
            &self.outbox_vfs,
            &self.outbox,
            epoch,
            &snapshot.engine().export(),
        )?;
        let mut next = manifest.clone();
        next.fencing_token = self.held_token;
        let old_anchor = next.anchor.replace(entry);
        let old_segments = std::mem::take(&mut next.segments);
        write_manifest_with(&self.outbox_vfs, &self.outbox, &next)?;
        self.check_fence()?;
        *manifest = next;
        store.set_ship_watermark(epoch);
        self.obs.shipped_anchor(epoch, entry.2);
        for meta in &old_segments {
            let _ = self
                .outbox_vfs
                .remove_file(&self.outbox.join(meta.file_name()));
        }
        if let Some((old_epoch, _, _)) = old_anchor {
            if old_epoch != epoch {
                let _ = self.outbox_vfs.remove_file(
                    &self
                        .outbox
                        .join(cpdb_store::ship::anchor_file_name(old_epoch)),
                );
            }
        }
        self.publish_status(epoch);
        Ok(epoch)
    }

    fn publish_status(&self, shipped: u64) {
        let lag = self.live.epoch().saturating_sub(shipped);
        self.obs.set_lag(lag);
        self.live.set_replication(Some(ReplicationStatus {
            role: ReplicaRole::Primary,
            epoch: shipped,
            lag,
            link: ComponentHealth::Healthy,
        }));
    }

    /// A read snapshot of the wrapped engine.
    pub fn snapshot(&self) -> Snapshot {
        self.live.snapshot()
    }

    /// The current served epoch.
    pub fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// The fencing token this primary durably holds.
    pub fn held_token(&self) -> u64 {
        self.held_token
    }

    /// Engine health, including the replication link.
    pub fn health(&self) -> Health {
        self.live.health()
    }

    /// The wrapped live engine (reads and maintenance; writes should go
    /// through [`apply`](Primary::apply) so they stay behind the fence).
    pub fn live(&self) -> &LiveEngine {
        &self.live
    }

    /// Detaches and returns the wrapped engine.
    pub fn into_live(self) -> LiveEngine {
        self.live
    }
}
