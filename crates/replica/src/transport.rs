//! The byte channel between an outbox and a follower's inbox.
//!
//! A [`Transport`] copies shipped files from a source directory (the
//! primary's outbox, possibly on remote or unreliable storage) into a
//! local inbox directory, then serves the *inbox* copy to the follower.
//! The copy is deliberately **not** atomic — no tmp-and-rename — so a
//! fault mid-ship leaves a torn file in the inbox, exactly the damage the
//! manifest checksums exist to catch. Verification, not the channel, is
//! the integrity boundary.

use cpdb_store::ship::QUARANTINE_SUFFIX;
use cpdb_store::{StoreError, Vfs};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Copies shipped files from a source directory into a local inbox and
/// hands the (re-read, so fault-injectable) inbox bytes to the caller.
pub struct Transport {
    src_vfs: Arc<dyn Vfs>,
    src_dir: PathBuf,
    dst_vfs: Arc<dyn Vfs>,
    dst_dir: PathBuf,
}

impl Transport {
    /// Builds a transport from `src_dir` (read through `src_vfs`) into the
    /// inbox `dst_dir` (written and re-read through `dst_vfs`), creating
    /// the inbox directory.
    pub fn new(
        src_vfs: Arc<dyn Vfs>,
        src_dir: &Path,
        dst_vfs: Arc<dyn Vfs>,
        dst_dir: &Path,
    ) -> Result<Transport, StoreError> {
        dst_vfs.create_dir_all(dst_dir)?;
        Ok(Transport {
            src_vfs,
            src_dir: src_dir.to_path_buf(),
            dst_vfs,
            dst_dir: dst_dir.to_path_buf(),
        })
    }

    /// Fetches `name` from the source into the inbox and returns the inbox
    /// copy's bytes. The returned bytes are re-read from the inbox so that
    /// every fault the inbox filesystem can inject is visible to the
    /// caller's verification.
    pub fn fetch(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let bytes = self.src_vfs.read(&self.src_dir.join(name))?;
        let dst = self.dst_dir.join(name);
        let mut file = self.dst_vfs.create_truncated(&dst)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        Ok(self.dst_vfs.read(&dst)?)
    }

    /// Moves the inbox copy of `name` aside as `<name>.quarantine` so a
    /// damaged ship is preserved for forensics and never mistaken for a
    /// verified file.
    pub fn quarantine(&self, name: &str) -> Result<(), StoreError> {
        let from = self.dst_dir.join(name);
        let to = self.dst_dir.join(format!("{name}{QUARANTINE_SUFFIX}"));
        self.dst_vfs.rename(&from, &to)?;
        self.dst_vfs.sync_dir(&self.dst_dir)?;
        Ok(())
    }

    /// The source (outbox) filesystem.
    pub fn src_vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.src_vfs)
    }

    /// The source (outbox) directory.
    pub fn src_dir(&self) -> &Path {
        &self.src_dir
    }

    /// The inbox filesystem.
    pub fn dst_vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.dst_vfs)
    }

    /// The inbox directory.
    pub fn dst_dir(&self) -> &Path {
        &self.dst_dir
    }
}
