//! Divergence detection: proving a replica serves the primary's state.
//!
//! Replication ships deltas, so a follower's engine is *rebuilt*, not
//! copied — a replay bug, a torn-but-undetected ship, or version skew
//! would make it drift silently. [`check_divergence`] compares two
//! snapshots at the same epoch on two levels: a CRC digest of the
//! canonical exported state (epoch, configuration, and tree — caches are
//! excluded, they are derived data and legitimately differ), and the
//! answers to a caller-chosen list of conformance probe queries.

use crate::ReplicaError;
use cpdb_engine::Query;
use cpdb_live::Snapshot;
use cpdb_store::ship::export_digest;

/// The divergence digest of a snapshot: a CRC-32 over its epoch and
/// canonical exported state. Equal digests at equal epochs mean the
/// replica's tree and configuration are bit-identical to the primary's.
pub fn epoch_digest(snapshot: &Snapshot) -> u32 {
    export_digest(snapshot.epoch(), &snapshot.engine().export())
}

/// Checks that `replica` serves exactly the state `primary` does.
///
/// Both snapshots must be pinned at the same epoch (pin the primary
/// first, sync the follower to that epoch, then pin the follower);
/// otherwise the check fails with [`ReplicaError::EpochMismatch`] rather
/// than comparing incomparable states. A digest mismatch reports
/// [`ReplicaError::Diverged`]; if the digests agree, every probe query in
/// `queries` is run on both sides and the first differing answer (or
/// differing error) reports [`ReplicaError::AnswerMismatch`].
pub fn check_divergence(
    primary: &Snapshot,
    replica: &Snapshot,
    queries: &[Query],
) -> Result<(), ReplicaError> {
    let epoch = primary.epoch();
    if epoch != replica.epoch() {
        return Err(ReplicaError::EpochMismatch {
            primary: epoch,
            replica: replica.epoch(),
        });
    }
    let primary_digest = epoch_digest(primary);
    let replica_digest = epoch_digest(replica);
    if primary_digest != replica_digest {
        return Err(ReplicaError::Diverged {
            epoch,
            primary_digest,
            replica_digest,
        });
    }
    for (index, query) in queries.iter().enumerate() {
        if primary.engine().run(query) != replica.engine().run(query) {
            return Err(ReplicaError::AnswerMismatch { epoch, index });
        }
    }
    Ok(())
}
