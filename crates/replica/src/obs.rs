//! Replication metric handles, pre-registered on the engine's shared
//! observability sink so one snapshot carries engine, store, live, and
//! replica series together.

use cpdb_obs::{Counter, EventKind, Gauge, Obs};
use cpdb_store::SegmentMeta;

/// Handles for the replication layer's counters and gauges. Cloned freely;
/// every record is one atomic op against the shared registry (or a no-op
/// branch when observability is disabled).
#[derive(Clone)]
pub(crate) struct ReplicaObs {
    pub(crate) obs: Obs,
    /// Segments committed to the outbox manifest.
    ship_segments: Counter,
    /// Bytes of segment and anchor payload shipped.
    ship_bytes: Counter,
    /// Shipped-but-unapplied epochs (primary: applied minus shipped;
    /// follower: shipped minus applied).
    lag: Gauge,
    /// Damaged outbox files quarantined before a successful re-fetch.
    quarantines: Counter,
}

impl ReplicaObs {
    pub(crate) fn new(obs: Obs) -> ReplicaObs {
        ReplicaObs {
            ship_segments: obs.counter("replica.ship.segments"),
            ship_bytes: obs.counter("replica.ship.bytes"),
            lag: obs.gauge("replica.lag"),
            quarantines: obs.counter("replica.quarantines"),
            obs,
        }
    }

    /// A segment run was committed to the manifest.
    pub(crate) fn shipped_segment(&self, meta: &SegmentMeta) {
        self.ship_segments.incr();
        self.ship_bytes.add(meta.len);
        self.obs.event_with(EventKind::Ship, || {
            format!(
                "segment epochs {}..={} ({} bytes)",
                meta.first_epoch, meta.last_epoch, meta.len
            )
        });
    }

    /// An anchor image was committed to the manifest (first ship, rotation,
    /// or promotion).
    pub(crate) fn shipped_anchor(&self, epoch: u64, bytes: u64) {
        self.ship_bytes.add(bytes);
        self.obs.event_with(EventKind::Ship, || {
            format!("anchor at epoch {epoch} ({bytes} bytes)")
        });
    }

    /// The replication status was republished; mirror the lag into the
    /// registry gauge.
    pub(crate) fn set_lag(&self, lag: u64) {
        self.lag.set(lag);
    }

    /// A fetched outbox file failed verification and was quarantined.
    pub(crate) fn quarantined(&self, name: &str) {
        self.quarantines.incr();
        self.obs
            .event_with(EventKind::Quarantine, || name.to_string());
    }

    /// A sync applied the chain through `epoch`.
    pub(crate) fn synced(&self, epoch: u64, lag: u64) {
        self.obs.event_with(EventKind::Sync, || {
            format!("applied through epoch {epoch} (lag {lag})")
        });
    }

    /// A follower took over the chain as the new writer.
    pub(crate) fn promoted(&self, token: u64, epoch: u64) {
        self.obs.event_with(EventKind::Promote, || {
            format!("promoted with token {token} at epoch {epoch}")
        });
    }

    /// The replication link degraded (fencing loss or a failed sync).
    pub(crate) fn degraded(&self, reason: impl FnOnce() -> String) {
        self.obs.event_with(EventKind::Degraded, reason);
    }
}
