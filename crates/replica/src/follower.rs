//! The replay side: a read-only engine that tails the shipped chain.

use crate::obs::ReplicaObs;
use crate::{Primary, ReplicaError, Transport, FETCH_ATTEMPTS};
use cpdb_live::{
    ComponentHealth, Health, LiveEngine, LiveError, ReplicaRole, ReplicationStatus, Snapshot,
    TreeDelta,
};
use cpdb_store::ship::{
    decode_manifest, read_fence_with, read_manifest_with, read_replica_manifest_with,
    verify_anchor_bytes, verify_segment_bytes, write_anchor_with, write_fence_with,
    write_manifest_with, write_replica_manifest_with, Manifest, SegmentMeta, MANIFEST_FILE,
};
use cpdb_store::store::StoreOptions;
use cpdb_store::{Store, StoreError};
use std::io;
use std::path::{Path, PathBuf};

/// A read replica: bootstraps from the shipped anchor, replays verified
/// segments into a local durable [`LiveEngine`], and serves snapshots at
/// its applied epoch.
///
/// Every fetched byte is verified against the manifest before replay;
/// damaged ships are quarantined and re-fetched, and on persistent damage
/// [`sync`](Follower::sync) fails **without** touching the served state —
/// readers keep answering from the last verified epoch.
///
/// The manifest this follower last adopted is recorded durably next to its
/// local store, so a restart knows which writer's fencing token its state
/// was replayed under. When a fetched manifest carries a *newer* token and
/// the local applied epoch is ahead of the new writer's anchor, the local
/// suffix belongs to a dead history: the follower discards it and
/// rebootstraps instead of splicing two chains. A manifest carrying an
/// *older* token (a fenced writer's lost-race commit) is refused with
/// [`ReplicaError::StaleManifest`].
pub struct Follower {
    transport: Transport,
    live: LiveEngine,
    store_dir: PathBuf,
    options: StoreOptions,
    manifest: Manifest,
    obs: ReplicaObs,
}

/// Fetches the manifest, quarantining and re-fetching damaged copies.
fn fetch_manifest(transport: &Transport, obs: &ReplicaObs) -> Result<Manifest, ReplicaError> {
    let mut last: Option<StoreError> = None;
    for _ in 0..FETCH_ATTEMPTS {
        match transport.fetch(MANIFEST_FILE) {
            Ok(bytes) => match decode_manifest(&bytes) {
                Ok(manifest) => {
                    manifest.validate()?;
                    return Ok(manifest);
                }
                Err(e) => {
                    let _ = transport.quarantine(MANIFEST_FILE);
                    obs.quarantined(MANIFEST_FILE);
                    last = Some(e);
                }
            },
            Err(e) => last = Some(e),
        }
    }
    Err(ReplicaError::SegmentUnavailable {
        name: MANIFEST_FILE.to_string(),
        context: last.map(|e| e.to_string()).unwrap_or_default(),
    })
}

/// Fetches and verifies the manifest's anchor image.
fn fetch_anchor(
    transport: &Transport,
    manifest: &Manifest,
    obs: &ReplicaObs,
) -> Result<(u64, cpdb_engine::EngineExport), ReplicaError> {
    let Some(entry) = manifest.anchor else {
        return Err(ReplicaError::SegmentUnavailable {
            name: MANIFEST_FILE.to_string(),
            context: "manifest has no anchor to bootstrap from".to_string(),
        });
    };
    let name = cpdb_store::ship::anchor_file_name(entry.0);
    let mut last: Option<StoreError> = None;
    for _ in 0..FETCH_ATTEMPTS {
        match transport.fetch(&name) {
            Ok(bytes) => match verify_anchor_bytes(&bytes, entry) {
                Ok(export) => return Ok((entry.0, export)),
                Err(e) => {
                    let _ = transport.quarantine(&name);
                    obs.quarantined(&name);
                    last = Some(e);
                }
            },
            Err(e) => last = Some(e),
        }
    }
    Err(ReplicaError::SegmentUnavailable {
        name,
        context: last.map(|e| e.to_string()).unwrap_or_default(),
    })
}

/// Creates a fresh local store seeded from the shipped anchor, records the
/// manifest the state was built from, and opens a durable engine on it.
fn bootstrap(
    transport: &Transport,
    manifest: &Manifest,
    store_dir: &Path,
    options: StoreOptions,
    obs: &ReplicaObs,
) -> Result<LiveEngine, ReplicaError> {
    let (epoch, export) = fetch_anchor(transport, manifest, obs)?;
    // Probing for local state leaves an empty WAL behind, and a
    // re-bootstrap abandons whatever is there: start from a clean
    // directory either way.
    let vfs = options.vfs.clone();
    vfs.create_dir_all(store_dir).map_err(StoreError::from)?;
    for name in vfs.read_dir_names(store_dir).map_err(StoreError::from)? {
        vfs.remove_file(&store_dir.join(&name))
            .map_err(StoreError::from)?;
    }
    vfs.sync_dir(store_dir).map_err(StoreError::from)?;
    let store = Store::create_with(store_dir, options.clone())?;
    store.write_snapshot(epoch, &export)?;
    write_replica_manifest_with(&vfs, store_dir, manifest)?;
    drop(store);
    Ok(LiveEngine::open_with(store_dir, options)?)
}

impl Follower {
    /// Opens a follower: reuses the local store at `store_dir` if one
    /// exists (a restarted follower resumes from its own durable state and
    /// keeps serving even while the outbox is unreachable, with the link
    /// marked degraded), otherwise bootstraps from the shipped anchor.
    pub fn open(
        transport: Transport,
        store_dir: &Path,
        options: StoreOptions,
    ) -> Result<Follower, ReplicaError> {
        match LiveEngine::open_with(store_dir, options.clone()) {
            Ok(live) => {
                // Local durable state exists: serve it immediately. A
                // missing or unreadable record of the followed chain
                // degrades to token 0, which any fetched manifest
                // supersedes.
                let manifest = read_replica_manifest_with(&options.vfs, store_dir)
                    .ok()
                    .flatten()
                    .unwrap_or_default();
                let obs = ReplicaObs::new(live.obs().clone());
                let mut follower = Follower {
                    transport,
                    live,
                    store_dir: store_dir.to_path_buf(),
                    options,
                    manifest,
                    obs,
                };
                let adopted = fetch_manifest(&follower.transport, &follower.obs)
                    .and_then(|fetched| follower.adopt_manifest(&fetched));
                match adopted {
                    Ok(()) => follower.publish_status(ComponentHealth::Healthy),
                    Err(e) => follower.publish_status(ComponentHealth::Degraded {
                        reason: e.to_string(),
                    }),
                }
                Ok(follower)
            }
            Err(LiveError::Store(StoreError::NoSnapshot)) => {
                Follower::bootstrap_fresh(transport, store_dir, options)
            }
            Err(LiveError::Store(StoreError::Io(e))) if e.kind() == io::ErrorKind::NotFound => {
                Follower::bootstrap_fresh(transport, store_dir, options)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Opens a follower with no usable local state: the shipped anchor is
    /// the only source, so the manifest fetch must succeed.
    fn bootstrap_fresh(
        transport: Transport,
        store_dir: &Path,
        options: StoreOptions,
    ) -> Result<Follower, ReplicaError> {
        let obs = ReplicaObs::new(options.obs.clone());
        let manifest = fetch_manifest(&transport, &obs)?;
        let live = bootstrap(&transport, &manifest, store_dir, options.clone(), &obs)?;
        let follower = Follower {
            transport,
            live,
            store_dir: store_dir.to_path_buf(),
            options,
            manifest,
            obs,
        };
        follower.publish_status(ComponentHealth::Healthy);
        Ok(follower)
    }

    /// Fetches the latest manifest and replays every verified segment past
    /// the applied epoch. Returns the new applied epoch. On failure the
    /// served state is untouched and the replication link is marked
    /// degraded; readers keep answering from the last verified epoch.
    pub fn sync(&mut self) -> Result<u64, ReplicaError> {
        match self.sync_inner() {
            Ok(epoch) => {
                self.publish_status(ComponentHealth::Healthy);
                self.obs.synced(epoch, self.lag());
                Ok(epoch)
            }
            Err(e) => {
                self.publish_status(ComponentHealth::Degraded {
                    reason: e.to_string(),
                });
                self.obs.degraded(|| format!("sync failed: {e}"));
                Err(e)
            }
        }
    }

    fn sync_inner(&mut self) -> Result<u64, ReplicaError> {
        let manifest = fetch_manifest(&self.transport, &self.obs)?;
        self.adopt_manifest(&manifest)?;
        for meta in &manifest.segments {
            let applied = self.live.epoch();
            if meta.last_epoch <= applied {
                continue;
            }
            let records = self.fetch_segment(meta)?;
            let deltas: Vec<TreeDelta> = records
                .iter()
                .filter(|(e, _)| *e > applied)
                .map(|(_, d)| d.clone())
                .collect();
            if let Some((first, _)) = records.iter().find(|(e, _)| *e > applied) {
                if *first != applied + 1 {
                    return Err(ReplicaError::ChainBroken {
                        expected: applied + 1,
                        found: *first,
                    });
                }
            }
            self.live.apply_all(&deltas)?;
        }
        Ok(self.live.epoch())
    }

    /// Decides whether a fetched manifest continues the followed chain,
    /// rebases it, or must be refused.
    ///
    /// * An *older* fencing token is a fenced writer's lost-race commit:
    ///   refuse it ([`ReplicaError::StaleManifest`]) — the winner's next
    ///   ship rewrites the manifest and the next sync proceeds.
    /// * An anchor past the applied epoch (rotation or promotion) means
    ///   the chain no longer reaches this replica: rebootstrap from the
    ///   anchor.
    /// * A *newer* token whose anchor is **behind** the applied epoch
    ///   means a writer forked the chain before our position; the local
    ///   suffix belongs to the old history, so splicing the new writer's
    ///   segments onto it would silently mix two histories. Rebootstrap.
    /// * Otherwise the chain continues ours: durably record it (so a
    ///   restart knows which token the local state was replayed under) and
    ///   adopt it.
    fn adopt_manifest(&mut self, manifest: &Manifest) -> Result<(), ReplicaError> {
        if manifest.fencing_token < self.manifest.fencing_token {
            return Err(ReplicaError::StaleManifest {
                followed: self.manifest.fencing_token,
                fetched: manifest.fencing_token,
            });
        }
        let applied = self.live.epoch();
        let new_writer = manifest.fencing_token != self.manifest.fencing_token;
        if manifest.anchor_epoch() > applied || (new_writer && applied > manifest.anchor_epoch()) {
            self.rebootstrap(manifest)?;
        } else if *manifest != self.manifest {
            write_replica_manifest_with(&self.options.vfs, &self.store_dir, manifest)?;
        }
        self.manifest = manifest.clone();
        Ok(())
    }

    /// Fetches one segment, quarantining and re-fetching damaged copies.
    fn fetch_segment(&self, meta: &SegmentMeta) -> Result<Vec<(u64, TreeDelta)>, ReplicaError> {
        let name = meta.file_name();
        let mut last: Option<StoreError> = None;
        for _ in 0..FETCH_ATTEMPTS {
            match self.transport.fetch(&name) {
                Ok(bytes) => match verify_segment_bytes(&bytes, meta) {
                    Ok(records) => return Ok(records),
                    Err(e) => {
                        let _ = self.transport.quarantine(&name);
                        self.obs.quarantined(&name);
                        last = Some(e);
                    }
                },
                Err(e) => last = Some(e),
            }
        }
        Err(ReplicaError::SegmentUnavailable {
            name,
            context: last.map(|e| e.to_string()).unwrap_or_default(),
        })
    }

    /// Wipes the local store and re-bootstraps from the shipped anchor.
    fn rebootstrap(&mut self, manifest: &Manifest) -> Result<(), ReplicaError> {
        self.live = bootstrap(
            &self.transport,
            manifest,
            &self.store_dir,
            self.options.clone(),
            &self.obs,
        )?;
        Ok(())
    }

    fn publish_status(&self, link: ComponentHealth) {
        let applied = self.live.epoch();
        let lag = self.manifest.shipped_epoch().saturating_sub(applied);
        self.obs.set_lag(lag);
        self.live.set_replication(Some(ReplicationStatus {
            role: ReplicaRole::Follower,
            epoch: applied,
            lag,
            link,
        }));
    }

    /// The last epoch whose state this follower has verified and applied.
    pub fn applied_epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// How many shipped epochs this follower still has to replay (as of
    /// the last fetched manifest).
    pub fn lag(&self) -> u64 {
        self.manifest
            .shipped_epoch()
            .saturating_sub(self.live.epoch())
    }

    /// A read snapshot at the applied epoch.
    pub fn snapshot(&self) -> Snapshot {
        self.live.snapshot()
    }

    /// Engine health, including replication role, applied epoch, lag, and
    /// link state.
    pub fn health(&self) -> Health {
        self.live.health()
    }

    /// Runs local crash recovery on the replica's own store (after the
    /// inbox filesystem faulted mid-replay, for example).
    pub fn try_recover(&self) -> Result<Health, ReplicaError> {
        Ok(self.live.try_recover()?)
    }

    /// Promotes this follower to the new writer.
    ///
    /// Recovery first settles the local engine on its published epoch
    /// (discarding any unacknowledged WAL suffix — the publish pointer is
    /// the commit point). The promotion then takes over the chain: it
    /// durably records a fencing token newer than any it can observe,
    /// publishes that token in the **outbox fence file** (the arbitration
    /// point ships never rewrite), ships a fresh anchor at the applied
    /// epoch, and commits a manifest carrying the new token, the new
    /// anchor, and no old segments. From the fence rename on, the old
    /// primary's next fenced operation fails with [`ReplicaError::Fenced`];
    /// at worst one in-flight commit of its clobbers the manifest, which
    /// the new primary's next ship rewrites and followers refuse as stale.
    /// Two promotions racing each other are arbitrated by a post-commit
    /// fence re-read (the loser fails with [`ReplicaError::Fenced`]);
    /// promotions that compute the *same* token remain unarbitrated, as
    /// with any file-rename-based fence.
    pub fn promote(self) -> Result<Primary, ReplicaError> {
        self.live.try_recover()?;
        let snapshot = self.live.snapshot();
        let epoch = snapshot.epoch();
        let src_vfs = self.transport.src_vfs();
        let src_dir = self.transport.src_dir().to_path_buf();
        let current = match read_manifest_with(&src_vfs, &src_dir) {
            Ok(manifest) => manifest.fencing_token,
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        let outbox_token = read_fence_with(&src_vfs, &src_dir)?.unwrap_or(0);
        let token = current.max(outbox_token).max(self.manifest.fencing_token) + 1;
        let store = self.live.store().ok_or(ReplicaError::NotDurable)?;
        // Own fence first: if we crash between here and the manifest
        // commit, we hold a token newer than the manifest's — attach()
        // accepts that and rebases the chain on our own state. The reverse
        // order would fence *ourselves* out of the chain we just took
        // over.
        write_fence_with(&store.vfs(), store.dir(), token)?;
        // Then the outbox fence: from this rename on, the old primary's
        // next fence check stands it down.
        write_fence_with(&src_vfs, &src_dir, token)?;
        let entry = write_anchor_with(&src_vfs, &src_dir, epoch, &snapshot.engine().export())?;
        let manifest = Manifest {
            fencing_token: token,
            anchor: Some(entry),
            segments: Vec::new(),
        };
        write_manifest_with(&src_vfs, &src_dir, &manifest)?;
        let fence_now = read_fence_with(&src_vfs, &src_dir)?.unwrap_or(0);
        if fence_now > token {
            // A concurrent promotion claimed a newer token while we were
            // committing: stand down; its next ship rewrites the manifest.
            return Err(ReplicaError::Fenced {
                held: token,
                manifest: fence_now,
            });
        }
        write_replica_manifest_with(&store.vfs(), store.dir(), &manifest)?;
        store.set_ship_watermark(epoch);
        self.obs.promoted(token, epoch);
        if let Some((_, _, bytes)) = manifest.anchor {
            self.obs.shipped_anchor(epoch, bytes);
        }
        Ok(Primary::assume(
            self.live, src_vfs, src_dir, token, manifest,
        ))
    }
}
