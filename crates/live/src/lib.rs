//! # cpdb-live — incremental updates with snapshot-isolated serving
//!
//! The paper motivates consensus answers for *live* probabilistic data:
//! sensor feeds whose readings drift, dedup pipelines whose match
//! probabilities are re-estimated, information extraction whose candidate
//! tuples appear and disappear. Everything below this crate treats the
//! and/xor tree as frozen — any change would mean discarding the
//! [`ConsensusEngine`] and rebuilding every generating-function artifact
//! from scratch while queries wait. This crate makes the data mutable while
//! readers keep getting answers:
//!
//! * **Mutations** are [`TreeDelta`]s (defined in `cpdb_andxor::mutate`):
//!   update an ∨-edge probability, update a leaf's score, insert/remove an
//!   alternative, add a whole tuple block. Application validates against the
//!   model constraints with typed errors and yields a *new* epoch-stamped
//!   tree — the previous epoch's tree is never touched.
//! * **Artifact maintenance** is delta-aware
//!   ([`ConsensusEngine::apply_delta`]): each cached artifact is *kept*
//!   (`Arc`-shared; its dependencies are untouched), *patched* (only the
//!   affected keys' slice is recomputed, bit-identical to a full rebuild),
//!   or *invalidated* (dropped for lazy rebuild) according to the delta's
//!   [`DeltaImpact`] dependency extract. A single-∨ probability update keeps
//!   the key index, patches the marginal/candidate tables and the pairwise
//!   tournaments in `O(n)` pair evaluations, and drops only the global-rank
//!   PMFs.
//! * **Serving is snapshot-isolated** ([`LiveEngine`]): readers take a cheap
//!   [`Snapshot`] handle (an `Arc` onto the current epoch) and keep querying
//!   it for as long as they like — a writer swapping in the next epoch never
//!   blocks them and never changes answers under them. Writers are
//!   serialised; the publish step is a single pointer store into the shared
//!   slot, taken under a lock that is never held across artifact work, so a
//!   concurrent `snapshot()` waits at most for that store.
//!
//! ## Consistency contract
//!
//! For every supported delta kind, the next epoch's engine answers **exactly
//! like a from-scratch engine** built from the mutated tree with the same
//! knobs: kept artifacts are bit-identical because their inputs are
//! untouched, patched artifacts recompute affected entries with the very
//! same closed forms the batch builders use, and invalidated artifacts are
//! rebuilt by the ordinary lazy paths. `cpdb_testkit::check_live_updates`
//! pins this equivalence after every delta of randomised sequences.
//!
//! ```
//! use cpdb_engine::{ConsensusEngineBuilder, Query, SetMetric, TopKMetric, Variant};
//! use cpdb_live::{LiveEngine, TreeDelta};
//! # use cpdb_andxor::AndXorTreeBuilder;
//! # let mut b = AndXorTreeBuilder::new();
//! # let l1 = b.leaf_parts(1, 30.0); let x1 = b.xor_node(vec![(l1, 0.8)]);
//! # let l2 = b.leaf_parts(2, 20.0); let x2 = b.xor_node(vec![(l2, 0.4)]);
//! # let root = b.and_node(vec![x1, x2]);
//! # let tree = b.build(root).unwrap();
//!
//! let live = LiveEngine::new(ConsensusEngineBuilder::new(tree).seed(7).build().unwrap());
//! let query = Query::TopK { k: 1, metric: TopKMetric::SymmetricDifference, variant: Variant::Mean };
//!
//! // A reader pins epoch 0…
//! let before = live.snapshot();
//! let answer_before = before.run(&query).unwrap();
//!
//! // …while a writer re-weights tuple 2's alternative.
//! let leaf = before.tree().leaves_of_key(2)[0];
//! let xor = before.tree().parent_of(leaf).unwrap();
//! let outcome = live
//!     .apply(&TreeDelta::XorEdgeProbability { xor, child: leaf, probability: 0.95 })
//!     .unwrap();
//! assert_eq!(outcome.epoch, 1);
//!
//! // The pinned snapshot still serves epoch 0, new snapshots serve epoch 1.
//! assert_eq!(before.run(&query).unwrap(), answer_before);
//! assert_eq!(live.snapshot().epoch(), 1);
//! # let _ = live.snapshot().run(&Query::SetConsensus {
//! #     metric: SetMetric::SymmetricDifference, variant: Variant::Mean }).unwrap();
//! ```

//!
//! ## Durability
//!
//! An in-memory [`LiveEngine`] loses everything on process exit and pays the
//! full `O(n²)` artifact rebuild on the next start. The durable constructors
//! ([`LiveEngine::new_durable`], [`LiveEngine::open`]) put a `cpdb_store`
//! directory behind the engine: every delta is appended to a checksummed
//! write-ahead log and fsync'd *before* its epoch is published (logged =
//! committed), and snapshots of the full engine — tree plus built artifacts —
//! are written atomically in the background every
//! [`snapshot_every`](LiveEngine::set_snapshot_every) deltas (compacting the
//! log). [`LiveEngine::open`] warm-starts from the newest valid snapshot,
//! replays the WAL suffix (truncating a torn tail record), and answers
//! **bit-identically** to the engine that wrote the files — the conformance
//! suite pins this on every seed, including simulated crashes.
//!
//! ## Fault tolerance & degraded mode
//!
//! The store retries transient I/O failures itself (bounded deterministic
//! backoff, see [`cpdb_store::RetryPolicy`]); the live layer handles what
//! remains. A *permanent* durability failure — `ENOSPC`, a failed fsync, a
//! WAL that could not roll back a torn append — moves the engine into
//! **degraded mode**: a typed health state machine
//! (`Healthy → Degraded(reason) → recovered`) in which
//!
//! * **readers are untouched** — snapshots keep serving the last published
//!   epoch, whose every delta was acknowledged durable before publish;
//! * **writers are refused** — [`LiveEngine::apply`]/
//!   [`LiveEngine::apply_all`] return [`LiveError::Degraded`] without
//!   touching the disk;
//! * [`LiveEngine::health`] reports writer, background compactor, and
//!   store status in one coherent [`Health`] value;
//! * [`LiveEngine::try_recover`] re-probes the store (reopening the WAL,
//!   truncating torn tails) and resumes writes once the disk again
//!   reconstructs exactly the served epoch.
//!
//! The chaos suite in `cpdb_testkit` sweeps injected fault schedules over
//! every I/O operation of a live run and asserts the contract: no answer
//! ever differs from the pre-fault epoch's, and recovery is bit-identical
//! to a never-faulted engine.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

use cpdb_engine::{ConsensusEngine, EngineError};
use cpdb_obs::{EventKind, Gauge, Histogram, MetricsSnapshot, Obs};
use cpdb_store::Store;
use std::fmt;
use std::ops::Deref;
use std::path::Path;
use std::sync::{Arc, PoisonError};

use cpdb_sync::atomic::{AtomicU64, Ordering};
use cpdb_sync::thread::JoinHandle;
use cpdb_sync::{ArcCell, Mutex};

pub use cpdb_andxor::{DeltaImpact, TreeDelta};
pub use cpdb_engine::{ArtifactDecision, DeltaReport};
pub use cpdb_store::{StoreError, StoreOptions};

/// Why a durable engine stopped accepting writes. Readers are never
/// affected: the last published epoch keeps serving while writers receive
/// [`LiveError::Degraded`] carrying one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradedReason {
    /// A WAL append failed permanently (retries exhausted or the failure
    /// was never retryable — `ENOSPC`, a failed fsync, …). The record was
    /// rolled back; no epoch was published for it.
    WalAppend {
        /// The store failure, rendered.
        error: String,
    },
    /// A failed append could not even be rolled back: the WAL's on-disk
    /// tail position is unknown and the log refuses all writes until
    /// recovery reopens it.
    WalUnusable {
        /// The rollback failure, rendered.
        error: String,
    },
    /// A [`LiveEngine::try_recover`] probe failed: either the store could
    /// not be re-read, or what it holds no longer matches the published
    /// epoch (which would mean serving unacknowledged state).
    RecoveryFailed {
        /// What the probe found, rendered.
        error: String,
    },
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedReason::WalAppend { error } => write!(f, "wal append failed: {error}"),
            DegradedReason::WalUnusable { error } => write!(f, "wal unusable: {error}"),
            DegradedReason::RecoveryFailed { error } => write!(f, "recovery failed: {error}"),
        }
    }
}

/// Typed failures of a live engine: delta/model validation from the engine
/// layer, or durability failures from the persistence layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum LiveError {
    /// The delta failed validation or the engine rejected the operation.
    Engine(EngineError),
    /// The write-ahead log or snapshot store failed.
    Store(StoreError),
    /// The engine is serving reads from its last published epoch but
    /// refusing writes until [`LiveEngine::try_recover`] succeeds.
    Degraded(DegradedReason),
    /// An internal lock was poisoned by a panicking writer; the named
    /// structure may be stale and the operation was refused.
    Poisoned(&'static str),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Engine(e) => write!(f, "engine error: {e}"),
            LiveError::Store(e) => write!(f, "store error: {e}"),
            LiveError::Degraded(reason) => {
                write!(f, "engine degraded (reads still served): {reason}")
            }
            LiveError::Poisoned(what) => write!(f, "{what} lock poisoned"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Engine(e) => Some(e),
            LiveError::Store(e) => Some(e),
            LiveError::Degraded(_) => None,
            LiveError::Poisoned(_) => None,
        }
    }
}

/// The status of one component in a [`Health`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentHealth {
    /// Operating normally.
    Healthy,
    /// Failed; the carried reason explains what happened.
    Degraded {
        /// What went wrong, rendered.
        reason: String,
    },
}

impl ComponentHealth {
    /// Whether this component is [`ComponentHealth::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, ComponentHealth::Healthy)
    }
}

/// Which side of a replication pair an engine serves on (see
/// [`ReplicationStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// The single writer: cuts WAL segments and ships them.
    Primary,
    /// A read replica: applies verified shipped segments.
    Follower,
}

/// Replication progress folded into a [`Health`] report by the
/// `cpdb_replica` layer (via [`LiveEngine::set_replication`]). Engines not
/// participating in replication report `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationStatus {
    /// Which side of the pair this engine is.
    pub role: ReplicaRole,
    /// Highest epoch shipped (primary) or verified-and-applied (follower).
    pub epoch: u64,
    /// How many epochs the follower trails the last manifest it fetched
    /// (always 0 on a primary).
    pub lag: u64,
    /// The replication link itself: `Degraded` after a failed ship or a
    /// quarantined fetch, until the next successful round. Readers are
    /// unaffected either way — a follower keeps serving its last verified
    /// epoch.
    pub link: ComponentHealth,
}

/// One coherent health report over a [`LiveEngine`] — writer, background
/// compactor, and store status in a single call (see
/// [`LiveEngine::health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// The currently served (published) epoch.
    pub epoch: u64,
    /// Whether the engine has a durability attachment at all. In-memory
    /// engines report `false` and every component healthy.
    pub durable: bool,
    /// The write path: `Degraded` means [`LiveEngine::apply`] and
    /// [`LiveEngine::apply_all`] currently refuse with
    /// [`LiveError::Degraded`]; reads are unaffected.
    pub writer: ComponentHealth,
    /// The background snapshot compactor: `Degraded` carries the parked
    /// failure of the most recent background (or synchronous
    /// [`LiveEngine::persist_snapshot`]) snapshot write. The WAL keeps
    /// every delta regardless, so this costs rebuild speed, not data.
    pub compactor: ComponentHealth,
    /// The underlying store medium: `Degraded` when the WAL itself is
    /// unusable or a recovery probe found the disk inconsistent with the
    /// served epoch — the strongest of the three signals.
    pub store: ComponentHealth,
    /// Replication progress (role, shipped/applied epoch, lag, link
    /// health), when this engine is a replication primary or follower.
    pub replication: Option<ReplicationStatus>,
}

impl Health {
    /// Whether every component — including the replication link, when
    /// present — is healthy.
    pub fn is_healthy(&self) -> bool {
        self.writer.is_healthy()
            && self.compactor.is_healthy()
            && self.store.is_healthy()
            && self
                .replication
                .as_ref()
                .is_none_or(|r| r.link.is_healthy())
    }
}

impl From<EngineError> for LiveError {
    fn from(e: EngineError) -> Self {
        LiveError::Engine(e)
    }
}

impl From<StoreError> for LiveError {
    fn from(e: StoreError) -> Self {
        LiveError::Store(e)
    }
}

/// Deltas between background snapshots, by default.
const DEFAULT_SNAPSHOT_EVERY: u64 = 32;

/// `StoreError` is deliberately not `Clone` (it wraps `io::Error`); when a
/// failure must be both returned to the caller and parked in a health
/// slot, duplicate it preserving variant and message.
fn duplicate_store_error(e: &StoreError) -> StoreError {
    match e {
        StoreError::Io(io) => StoreError::Io(std::io::Error::new(io.kind(), io.to_string())),
        StoreError::Corrupt { context } => StoreError::Corrupt {
            context: context.clone(),
        },
        StoreError::UnsupportedVersion { found } => {
            StoreError::UnsupportedVersion { found: *found }
        }
        StoreError::NoSnapshot => StoreError::NoSnapshot,
        StoreError::AlreadyExists { path } => StoreError::AlreadyExists { path: path.clone() },
        StoreError::Poisoned => StoreError::Poisoned,
        StoreError::WalUnusable { context } => StoreError::WalUnusable {
            context: context.clone(),
        },
        StoreError::RetainedForReplica { epoch, watermark } => StoreError::RetainedForReplica {
            epoch: *epoch,
            watermark: *watermark,
        },
        other => StoreError::Corrupt {
            context: other.to_string(),
        },
    }
}

/// Pre-registered live-layer metrics: apply/publish and snapshot-write
/// latency histograms plus the served-epoch gauge. Cloning shares the
/// underlying handles; the default is a disabled sink (one branch per
/// record site, no allocation).
#[derive(Debug, Clone, Default)]
struct LiveObs {
    obs: Obs,
    apply: Histogram,
    compaction: Histogram,
    epoch: Gauge,
}

impl LiveObs {
    fn new(obs: Obs) -> Self {
        LiveObs {
            apply: obs.histogram("live.apply"),
            compaction: obs.histogram("live.compaction"),
            epoch: obs.gauge("live.epoch"),
            obs,
        }
    }

    /// Records an epoch publish: bumps the gauge and leaves a
    /// flight-recorder event.
    fn published(&self, epoch: u64) {
        self.epoch.set(epoch);
        self.obs
            .event_with(EventKind::EpochPublish, || format!("epoch {epoch}"));
    }

    /// Records a health-state transition into degraded mode.
    fn degraded(&self, reason: &DegradedReason) {
        self.obs
            .event_with(EventKind::Degraded, || reason.to_string());
    }
}

/// The durability attachment of a [`LiveEngine`]: the store directory, the
/// background-compaction cadence, and the running compactor (if any).
struct Durability {
    store: Arc<Store>,
    snapshot_every: AtomicU64,
    deltas_since_snapshot: AtomicU64,
    compactor: Mutex<Option<JoinHandle<()>>>,
    /// The most recent background-compaction failure, kept until read via
    /// [`LiveEngine::take_compaction_error`] or logged on drop. `Arc`d so
    /// the compactor thread can write it without borrowing the engine.
    last_compaction_error: Arc<Mutex<Option<StoreError>>>,
    /// `Some` while the write path is refusing deltas after a permanent
    /// durability failure; cleared by a successful
    /// [`LiveEngine::try_recover`]. Only mutated under the writer lock.
    degraded: Mutex<Option<DegradedReason>>,
}

impl Durability {
    fn new(store: Store, replayed: u64) -> Self {
        Durability {
            store: Arc::new(store),
            snapshot_every: AtomicU64::new(DEFAULT_SNAPSHOT_EVERY),
            deltas_since_snapshot: AtomicU64::new(replayed),
            compactor: Mutex::new(None),
            last_compaction_error: Arc::new(Mutex::new(None)),
            degraded: Mutex::new(None),
        }
    }

    /// The degraded reason, if any (poison-tolerant peek).
    fn degraded_reason(&self) -> Option<DegradedReason> {
        self.degraded
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Classifies a failed append and parks the reason so later writes are
    /// refused without touching the disk. Returns the error to hand the
    /// caller.
    fn enter_degraded(&self, e: StoreError) -> LiveError {
        let reason = match &e {
            StoreError::WalUnusable { context } => DegradedReason::WalUnusable {
                error: context.clone(),
            },
            other => DegradedReason::WalAppend {
                error: other.to_string(),
            },
        };
        *self.degraded.lock().unwrap_or_else(PoisonError::into_inner) = Some(reason.clone());
        LiveError::Degraded(reason)
    }
}

impl fmt::Debug for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.store.dir())
            .field(
                "snapshot_every",
                &self.snapshot_every.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// One epoch of the live database: an epoch counter plus the engine serving
/// that version of the tree.
#[derive(Debug)]
struct Epoch {
    epoch: u64,
    engine: ConsensusEngine,
}

/// A reader's handle onto one epoch of a [`LiveEngine`] — a cheap `Arc`
/// clone. The snapshot stays fully serviceable (and its answers stay
/// byte-for-byte stable) for as long as the handle lives, no matter how many
/// epochs writers publish in the meantime; it dereferences to the epoch's
/// [`ConsensusEngine`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    inner: Arc<Epoch>,
}

impl Snapshot {
    /// The epoch this snapshot pins (the initial engine is epoch 0).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The engine serving this epoch.
    pub fn engine(&self) -> &ConsensusEngine {
        &self.inner.engine
    }
}

impl Deref for Snapshot {
    type Target = ConsensusEngine;

    fn deref(&self) -> &ConsensusEngine {
        &self.inner.engine
    }
}

/// The outcome of one applied delta: the epoch it published and the
/// per-artifact maintenance record.
#[derive(Debug)]
pub struct AppliedDelta {
    /// The epoch the mutated engine was published as.
    pub epoch: u64,
    /// Which built artifacts were kept / patched / invalidated.
    pub report: DeltaReport,
}

/// A versioned, concurrently-serving front over [`ConsensusEngine`]:
/// writers apply [`TreeDelta`]s to build the next epoch while in-flight
/// readers keep serving the previous epoch's snapshot without blocking.
///
/// * [`snapshot`](Self::snapshot) hands a reader the current epoch (an
///   `Arc` clone). Queries run against the snapshot exactly as against any
///   engine — including concurrently, the engine is `Sync`.
/// * [`apply`](Self::apply) validates and applies one delta, builds the
///   next-epoch engine via the delta-aware artifact maintenance
///   ([`ConsensusEngine::apply_delta`] — kept artifacts are `Arc`-shared,
///   patched ones recomputed selectively), and publishes it with a single
///   pointer store. Writers are serialised on an internal lock; failed
///   deltas publish nothing.
///
/// Dropping the last handle to a superseded epoch frees its artifacts (the
/// kept ones stay alive through the sharing `Arc`s of later epochs).
#[derive(Debug)]
pub struct LiveEngine {
    /// The published epoch: a swappable `Arc` slot — readers clone it,
    /// writers publish into it with a single pointer store, never across
    /// queries or artifact work.
    current: ArcCell<Epoch>,
    /// Serialises writers: the next-epoch build happens outside the
    /// `current` lock, so readers keep snapshotting while it runs.
    writer: Mutex<()>,
    /// WAL + snapshot store; `None` for a purely in-memory engine.
    durability: Option<Durability>,
    /// Replication progress published by the `cpdb_replica` layer, folded
    /// into [`Health`] reports. `None` when not replicating.
    replication: Mutex<Option<ReplicationStatus>>,
    /// Live-layer metric handles. Purely additive: records timings, gauges,
    /// and flight-recorder events, never touches answers or epochs.
    obs: LiveObs,
}

impl LiveEngine {
    /// Starts serving the given engine as epoch 0, in memory only.
    pub fn new(engine: ConsensusEngine) -> Self {
        LiveEngine {
            current: ArcCell::new(Arc::new(Epoch { epoch: 0, engine })),
            writer: Mutex::new(()),
            durability: None,
            replication: Mutex::new(None),
            obs: LiveObs::default(),
        }
    }

    /// Attaches an observability sink to the live layer: apply/publish and
    /// snapshot-write latency histograms, a served-epoch gauge, and
    /// flight-recorder events for epoch publishes, compactions, and health
    /// transitions. The sink is also rethreaded into the served engine, so
    /// one snapshot carries every layer's series; durable constructors call
    /// this with [`StoreOptions::obs`](cpdb_store::StoreOptions) already.
    /// Purely additive — answers and epochs are bit-identical with any sink
    /// attached.
    #[must_use = "with_obs returns the engine it instruments"]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = LiveObs::new(obs.clone());
        self.obs.epoch.set(self.epoch());
        if obs.is_enabled() {
            let current = self.current.load();
            let engine = current.engine.clone().with_obs(obs);
            self.current.store(Arc::new(Epoch {
                epoch: current.epoch,
                engine,
            }));
        }
        self
    }

    /// The observability sink attached via [`with_obs`](Self::with_obs)
    /// (a disabled handle when none was) — the replication layer registers
    /// its own metrics against it.
    pub fn obs(&self) -> &Obs {
        &self.obs.obs
    }

    /// Starts serving the given engine as epoch 0 with durability in `dir`:
    /// writes the epoch-0 snapshot immediately, then WAL-logs every delta
    /// before publishing its epoch.
    ///
    /// Fails with [`StoreError::AlreadyExists`] if `dir` already holds a
    /// store — use [`LiveEngine::open`] to resume one.
    pub fn new_durable(engine: ConsensusEngine, dir: &Path) -> Result<Self, LiveError> {
        LiveEngine::new_durable_with(engine, dir, StoreOptions::default())
    }

    /// [`LiveEngine::new_durable`] with an explicit store configuration
    /// (filesystem implementation and retry schedule) — how the fault-
    /// injection suites run a live engine over a
    /// [`FaultVfs`](cpdb_store::FaultVfs).
    pub fn new_durable_with(
        engine: ConsensusEngine,
        dir: &Path,
        options: StoreOptions,
    ) -> Result<Self, LiveError> {
        let obs = options.obs.clone();
        let store = Store::create_with(dir, options)?;
        store.write_snapshot(0, &engine.export())?;
        Ok(LiveEngine {
            current: ArcCell::new(Arc::new(Epoch { epoch: 0, engine })),
            writer: Mutex::new(()),
            durability: Some(Durability::new(store, 0)),
            replication: Mutex::new(None),
            obs: LiveObs::default(),
        }
        .with_obs(obs))
    }

    /// Warm-starts from the store in `dir`: loads the newest valid snapshot
    /// (tree + built artifacts, no rebuild), replays the WAL suffix on top
    /// (truncating a torn tail record), and serves the exact pre-crash
    /// epoch. Answers are bit-identical to the engine that wrote the store.
    pub fn open(dir: &Path) -> Result<Self, LiveError> {
        LiveEngine::open_with(dir, StoreOptions::default())
    }

    /// [`LiveEngine::open`] with an explicit store configuration.
    pub fn open_with(dir: &Path, options: StoreOptions) -> Result<Self, LiveError> {
        let obs = options.obs.clone();
        let (store, recovered) = Store::open_with(dir, options)?;
        let (snap_epoch, export) = recovered.snapshot.ok_or(StoreError::NoSnapshot)?;
        let mut engine = ConsensusEngine::from_export(&export)?;
        let mut epoch = snap_epoch;
        for (record_epoch, delta) in &recovered.wal {
            engine = engine.apply_delta(delta)?.0;
            epoch = *record_epoch;
        }
        Ok(LiveEngine {
            current: ArcCell::new(Arc::new(Epoch { epoch, engine })),
            writer: Mutex::new(()),
            durability: Some(Durability::new(store, recovered.wal.len() as u64)),
            replication: Mutex::new(None),
            obs: LiveObs::default(),
        }
        .with_obs(obs))
    }

    /// Sets how many deltas may accumulate before a background snapshot
    /// compacts the WAL (durable engines only; default 32).
    pub fn set_snapshot_every(&self, every: u64) {
        if let Some(d) = &self.durability {
            d.snapshot_every.store(every.max(1), Ordering::Relaxed);
        }
    }

    /// Synchronously snapshots the current epoch to the store, compacting
    /// the WAL. Returns the epoch persisted, or `None` for an in-memory
    /// engine.
    ///
    /// A failure is returned *and* parked in the compactor-health slot
    /// (visible via [`health`](Self::health) /
    /// [`take_compaction_error`](Self::take_compaction_error)); the write
    /// path is unaffected — the WAL still holds every delta.
    pub fn persist_snapshot(&self) -> Result<Option<u64>, LiveError> {
        let Some(d) = &self.durability else {
            return Ok(None);
        };
        let current = self.current_arc();
        let _span = self.obs.obs.span(&self.obs.compaction);
        if let Err(e) = d
            .store
            .write_snapshot(current.epoch, &current.engine.export())
        {
            self.obs.obs.event_with(EventKind::CompactionFailed, || {
                format!("epoch {}: {e}", current.epoch)
            });
            *d.last_compaction_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(duplicate_store_error(&e));
            return Err(LiveError::Store(e));
        }
        self.obs.obs.event_with(EventKind::SnapshotWrite, || {
            format!("epoch {}", current.epoch)
        });
        d.deltas_since_snapshot.store(0, Ordering::Relaxed);
        Ok(Some(current.epoch))
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current_arc().epoch
    }

    /// Pins the current epoch for a reader. O(1): an `Arc` clone under a
    /// briefly-held read lock.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            inner: self.current_arc(),
        }
    }

    fn current_arc(&self) -> Arc<Epoch> {
        self.current.load()
    }

    /// Applies one delta: validates it against the current epoch's tree,
    /// builds the next-epoch engine (kept artifacts shared, affected ones
    /// patched or dropped — see [`DeltaReport`]), WAL-logs it (durable
    /// engines fsync before the publish), and publishes it. On error nothing
    /// is published and the current epoch keeps serving.
    pub fn apply(&self, delta: &TreeDelta) -> Result<AppliedDelta, LiveError> {
        let _span = self.obs.obs.span(&self.obs.apply);
        let _writer = self
            .writer
            .lock()
            .map_err(|_| LiveError::Poisoned("live writer"))?;
        if let Some(d) = &self.durability {
            // A degraded engine refuses writes outright (reads are
            // unaffected) — no disk is touched until try_recover succeeds.
            if let Some(reason) = d.degraded_reason() {
                return Err(LiveError::Degraded(reason));
            }
        }
        let current = self.current_arc();
        let (engine, report) = current.engine.apply_delta(delta)?;
        let epoch = current.epoch + 1;
        if let Some(d) = &self.durability {
            if let Err(e) = d.store.append(epoch, delta) {
                // The store layer already retried what was transient: this
                // failure is permanent. The append was rolled back (or the
                // WAL marked unusable), so the published epoch still equals
                // the durable one — park the reason and refuse writes.
                let err = d.enter_degraded(e);
                if let LiveError::Degraded(reason) = &err {
                    self.obs.degraded(reason);
                }
                return Err(err);
            }
        }
        let next = Arc::new(Epoch { epoch, engine });
        self.current.store(next.clone());
        self.obs.published(epoch);
        self.after_publish(1, next);
        Ok(AppliedDelta { epoch, report })
    }

    /// Applies a sequence of deltas **atomically**: every delta is staged
    /// against its predecessor first, then the whole batch is WAL-logged
    /// under a single fsync (durable engines), then the final epoch is
    /// published with one pointer store. If *any* delta fails, nothing is
    /// published, no epoch advances, and no WAL record is written — readers
    /// never observe a partially-applied batch.
    ///
    /// On success the returned outcomes number the intermediate epochs
    /// `current + 1 ..= current + deltas.len()`; only the last is ever
    /// served, the others exist as maintenance records.
    pub fn apply_all(&self, deltas: &[TreeDelta]) -> Result<Vec<AppliedDelta>, LiveError> {
        let _span = self.obs.obs.span(&self.obs.apply);
        let _writer = self
            .writer
            .lock()
            .map_err(|_| LiveError::Poisoned("live writer"))?;
        if let Some(d) = &self.durability {
            if let Some(reason) = d.degraded_reason() {
                return Err(LiveError::Degraded(reason));
            }
        }
        let base = self.current_arc();

        let mut staged: Vec<(ConsensusEngine, DeltaReport)> = Vec::with_capacity(deltas.len());
        for delta in deltas {
            let source = staged.last().map(|(e, _)| e).unwrap_or(&base.engine);
            staged.push(source.apply_delta(delta)?);
        }
        if staged.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(d) = &self.durability {
            let appended = d.store.append_all(
                deltas
                    .iter()
                    .enumerate()
                    .map(|(i, delta)| (base.epoch + 1 + i as u64, delta)),
            );
            if let Err(e) = appended {
                // Group commit: either the whole batch became durable or
                // none of it did — no epoch advances, writes are refused.
                let err = d.enter_degraded(e);
                if let LiveError::Degraded(reason) = &err {
                    self.obs.degraded(reason);
                }
                return Err(err);
            }
        }

        let count = staged.len();
        let mut outcomes = Vec::with_capacity(count);
        let mut last_engine = None;
        for (i, (engine, report)) in staged.into_iter().enumerate() {
            outcomes.push(AppliedDelta {
                epoch: base.epoch + 1 + i as u64,
                report,
            });
            if i + 1 == count {
                last_engine = Some(engine);
            }
        }
        let Some(engine) = last_engine else {
            // Unreachable: the batch was checked non-empty above.
            return Ok(outcomes);
        };
        let next = Arc::new(Epoch {
            epoch: base.epoch + count as u64,
            engine,
        });
        self.current.store(next.clone());
        self.obs.published(base.epoch + count as u64);
        self.after_publish(count as u64, next);
        Ok(outcomes)
    }

    /// Bumps the durability delta counter and, when the snapshot cadence is
    /// reached, hands the freshly-published epoch to a background thread
    /// that exports it and writes a compacting snapshot. A background
    /// failure is parked in the last-compaction-error slot — read it with
    /// [`take_compaction_error`](Self::take_compaction_error); it is also
    /// logged when the engine drops. [`persist_snapshot`](Self::persist_snapshot)
    /// is the synchronous, error-returning path.
    fn after_publish(&self, applied: u64, published: Arc<Epoch>) {
        let Some(d) = &self.durability else { return };
        let since = d
            .deltas_since_snapshot
            .fetch_add(applied, Ordering::Relaxed)
            + applied;
        if since < d.snapshot_every.load(Ordering::Relaxed) {
            return;
        }
        // Poisoning is recoverable here: the slot only ever holds a fully
        // formed Option<JoinHandle>, so a panicked writer can't have left
        // it torn.
        let mut compactor = d.compactor.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(handle) = compactor.take() {
            if !handle.is_finished() {
                // Still compacting a previous epoch: keep the counter and
                // retry after the next publish.
                *compactor = Some(handle);
                return;
            }
            let _ = handle.join();
        }
        d.deltas_since_snapshot.store(0, Ordering::Relaxed);
        let store = Arc::clone(&d.store);
        let error_slot = Arc::clone(&d.last_compaction_error);
        let obs = self.obs.clone();
        *compactor = Some(cpdb_sync::thread::spawn(move || {
            let _span = obs.obs.span(&obs.compaction);
            if let Err(e) = store.write_snapshot(published.epoch, &published.engine.export()) {
                // The failing epoch goes into the flight recorder too: a
                // post-mortem dump must show *which* compaction died, not
                // just that the parked-error slot is occupied.
                obs.obs.event_with(EventKind::CompactionFailed, || {
                    format!("epoch {}: {e}", published.epoch)
                });
                *error_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
            } else {
                obs.obs.event_with(EventKind::SnapshotWrite, || {
                    format!("epoch {}", published.epoch)
                });
            }
        }));
    }

    /// Takes (and clears) the most recent background-compaction failure.
    /// `None` means every background snapshot so far succeeded — or the
    /// engine is in-memory. The WAL keeps every delta regardless, so a
    /// failed compaction never loses data, only rebuild speed.
    pub fn take_compaction_error(&self) -> Option<StoreError> {
        let d = self.durability.as_ref()?;
        d.last_compaction_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// Whether a background compaction has failed since the last
    /// [`take_compaction_error`](Self::take_compaction_error) (message
    /// form, without consuming the error).
    pub fn last_compaction_error(&self) -> Option<String> {
        let d = self.durability.as_ref()?;
        d.last_compaction_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|e| e.to_string())
    }

    /// Waits for any in-flight background compaction to finish (durable
    /// engines; no-op otherwise). After this returns, a failure of that
    /// compaction is visible via
    /// [`take_compaction_error`](Self::take_compaction_error).
    pub fn await_compaction(&self) {
        let Some(d) = &self.durability else { return };
        let handle = d
            .compactor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// One coherent health report: the served epoch plus writer, background
    /// compactor, and store status (see [`Health`]). Non-consuming — the
    /// parked compaction error, if any, stays collectable via
    /// [`take_compaction_error`](Self::take_compaction_error).
    ///
    /// The state machine: a durable engine is `Healthy` until a permanent
    /// durability failure degrades the writer (reads keep serving the last
    /// published epoch), and returns to `Healthy` when
    /// [`try_recover`](Self::try_recover) verifies the disk again matches
    /// the served epoch.
    pub fn health(&self) -> Health {
        let epoch = self.epoch();
        let replication = self.replication_status();
        let Some(d) = &self.durability else {
            return Health {
                epoch,
                durable: false,
                writer: ComponentHealth::Healthy,
                compactor: ComponentHealth::Healthy,
                store: ComponentHealth::Healthy,
                replication,
            };
        };
        let degraded = d.degraded_reason();
        let writer = match &degraded {
            Some(reason) => ComponentHealth::Degraded {
                reason: reason.to_string(),
            },
            None => ComponentHealth::Healthy,
        };
        // The store medium itself is implicated only when the WAL cannot
        // even roll back or a recovery probe contradicted the served epoch;
        // a plain failed append leaves the on-disk state consistent.
        let store = match &degraded {
            Some(
                reason @ (DegradedReason::WalUnusable { .. }
                | DegradedReason::RecoveryFailed { .. }),
            ) => ComponentHealth::Degraded {
                reason: reason.to_string(),
            },
            _ => ComponentHealth::Healthy,
        };
        let compactor = match self.last_compaction_error() {
            Some(reason) => ComponentHealth::Degraded { reason },
            None => ComponentHealth::Healthy,
        };
        Health {
            epoch,
            durable: true,
            writer,
            compactor,
            store,
            replication,
        }
    }

    /// One unified [`MetricsSnapshot`] over every layer: the current
    /// epoch's engine series (query/artifact histograms plus its
    /// [`cpdb_engine::CacheStats`] counters, folded as `engine.cache.*`),
    /// the live sink's own series, and the [`Health`] /
    /// [`ReplicationStatus`] reports folded in as gauges (`live.health.*`,
    /// `replica.*`). The dedicated accessors
    /// ([`health`](Self::health), [`replication_status`](Self::replication_status),
    /// `cache_stats` on the engine) keep working — they are the sources
    /// this snapshot folds.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let current = self.current_arc();
        // When one sink is shared across layers (the intended wiring), the
        // engine's snapshot of it already carries the live.* and store.*
        // series too.
        let mut snapshot = current.engine.metrics_snapshot();
        let health = self.health();
        snapshot.push_gauge("live.durable", u64::from(health.durable));
        snapshot.push_gauge("live.epoch", health.epoch);
        snapshot.push_gauge("live.health.overall", u64::from(health.is_healthy()));
        snapshot.push_gauge("live.health.writer", u64::from(health.writer.is_healthy()));
        snapshot.push_gauge(
            "live.health.compactor",
            u64::from(health.compactor.is_healthy()),
        );
        snapshot.push_gauge("live.health.store", u64::from(health.store.is_healthy()));
        if let Some(replication) = &health.replication {
            snapshot.push_gauge("replica.epoch", replication.epoch);
            snapshot.push_gauge("replica.lag", replication.lag);
            snapshot.push_gauge(
                "replica.link_healthy",
                u64::from(replication.link.is_healthy()),
            );
            snapshot.push_gauge(
                "replica.role_primary",
                u64::from(matches!(replication.role, ReplicaRole::Primary)),
            );
        }
        snapshot
    }

    /// Publishes replication progress into this engine's [`Health`]
    /// reports — called by the `cpdb_replica` layer after every ship/sync
    /// round; `None` detaches the engine from replication reporting.
    pub fn set_replication(&self, status: Option<ReplicationStatus>) {
        *self
            .replication
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = status;
    }

    /// The replication progress last published via
    /// [`set_replication`](Self::set_replication), if any.
    pub fn replication_status(&self) -> Option<ReplicationStatus> {
        self.replication
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The durable store behind this engine, when one is attached — the
    /// replication layer ships segments straight from it.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.durability.as_ref().map(|d| &d.store)
    }

    /// Attempts to leave degraded mode: re-runs store recovery in place
    /// (reopening the WAL, truncating any torn tail) and verifies that what
    /// the disk reconstructs is exactly the epoch readers are being served.
    /// On success the writer resumes accepting deltas and the returned
    /// [`Health`] reflects it.
    ///
    /// The verification leans on the WAL-before-publish invariant: an epoch
    /// is only ever published after its record's fsync was acknowledged, so
    /// at the moment of degradation `durable epoch == published epoch`. One
    /// ambiguity is resolved here: a failed append whose frame nonetheless
    /// reached the log (the fsync — or the rollback after it — failed)
    /// leaves a valid-looking suffix the writer never acknowledged; the
    /// publish pointer is the commit point, so recovery discards that
    /// suffix like a torn frame. Any *other* disagreement means something
    /// else happened to the directory and resuming writes would fork
    /// history, so the engine stays degraded with
    /// [`DegradedReason::RecoveryFailed`].
    ///
    /// Calling this on a healthy (or in-memory) engine is a no-op returning
    /// the current health.
    pub fn try_recover(&self) -> Result<Health, LiveError> {
        let _writer = self
            .writer
            .lock()
            .map_err(|_| LiveError::Poisoned("live writer"))?;
        let Some(d) = &self.durability else {
            return Ok(self.health());
        };
        if d.degraded_reason().is_none() {
            return Ok(self.health());
        }
        let recovered = match d.store.reprobe() {
            Ok(recovered) => recovered,
            Err(e) => {
                let reason = DegradedReason::RecoveryFailed {
                    error: e.to_string(),
                };
                *d.degraded.lock().unwrap_or_else(PoisonError::into_inner) = Some(reason.clone());
                self.obs.degraded(&reason);
                return Err(LiveError::Degraded(reason));
            }
        };
        let served = self.epoch();
        let mut durable = recovered.epoch();
        if durable > served {
            // A failed append whose frame nonetheless reached the log (the
            // fsync — or the rollback after it — failed) strands a
            // valid-looking suffix the writer never acknowledged. The
            // publish pointer is the commit point: cut the log back to it,
            // exactly like a torn frame, and re-probe.
            match d
                .store
                .discard_after(served)
                .and_then(|()| d.store.reprobe())
            {
                Ok(trimmed) => durable = trimmed.epoch(),
                Err(e) => {
                    let reason = DegradedReason::RecoveryFailed {
                        error: format!("discarding un-acknowledged wal suffix failed: {e}"),
                    };
                    *d.degraded.lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(reason.clone());
                    self.obs.degraded(&reason);
                    return Err(LiveError::Degraded(reason));
                }
            }
        }
        if durable != served {
            let reason = DegradedReason::RecoveryFailed {
                error: format!(
                    "store reconstructs epoch {durable} but readers are being \
                     served epoch {served}"
                ),
            };
            *d.degraded.lock().unwrap_or_else(PoisonError::into_inner) = Some(reason.clone());
            self.obs.degraded(&reason);
            return Err(LiveError::Degraded(reason));
        }
        *d.degraded.lock().unwrap_or_else(PoisonError::into_inner) = None;
        self.obs
            .obs
            .event_with(EventKind::Recovered, || format!("epoch {served} verified"));
        Ok(self.health())
    }
}

impl Drop for LiveEngine {
    fn drop(&mut self) {
        if let Some(d) = &self.durability {
            let handle = d
                .compactor
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
            // A never-collected background failure would otherwise vanish
            // with the engine; make it visible on the way out.
            if let Some(e) = d
                .last_compaction_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
            {
                eprintln!("cpdb_live: background snapshot compaction failed: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
    use cpdb_engine::{ConsensusEngineBuilder, Query, TopKMetric, Variant};

    fn bid_tree() -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        for (key, alts) in [
            (1u64, vec![(95.0, 0.3), (40.0, 0.5)]),
            (2, vec![(80.0, 0.6), (55.0, 0.2)]),
            (3, vec![(70.0, 0.9)]),
        ] {
            let edges: Vec<_> = alts
                .iter()
                .map(|&(v, p)| (b.leaf_parts(key, v), p))
                .collect();
            xors.push(b.xor_node(edges));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    fn live() -> LiveEngine {
        LiveEngine::new(
            ConsensusEngineBuilder::new(bid_tree())
                .seed(5)
                .kendall_distance_samples(64)
                .build()
                .unwrap(),
        )
    }

    fn topk(k: usize) -> Query {
        Query::TopK {
            k,
            metric: TopKMetric::SymmetricDifference,
            variant: Variant::Mean,
        }
    }

    fn reweight(snapshot: &Snapshot, key: u64, probability: f64) -> TreeDelta {
        let leaf = snapshot.tree().leaves_of_key(key)[0];
        TreeDelta::XorEdgeProbability {
            xor: snapshot.tree().parent_of(leaf).unwrap(),
            child: leaf,
            probability,
        }
    }

    #[test]
    fn epochs_advance_and_pinned_snapshots_stay_stable() {
        let live = live();
        assert_eq!(live.epoch(), 0);
        let pinned = live.snapshot();
        let before = pinned.run(&topk(2)).unwrap();

        let outcome = live.apply(&reweight(&pinned, 2, 0.75)).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(live.epoch(), 1);

        // The pinned reader still sees epoch 0, byte for byte.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.run(&topk(2)).unwrap(), before);

        // New snapshots see the mutated data.
        let now = live.snapshot();
        assert_eq!(now.epoch(), 1);
        let probs = now.tree().alternative_probabilities();
        assert!((probs[&cpdb_model::Alternative::new(2, 80.0)] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn failed_deltas_publish_nothing() {
        let live = live();
        let snap = live.snapshot();
        // 0.9 + sibling 0.5 overflows block 1's mass.
        let err = live.apply(&reweight(&snap, 1, 0.9)).unwrap_err();
        assert!(
            matches!(err, LiveError::Engine(EngineError::Model(_))),
            "{err:?}"
        );
        assert_eq!(live.epoch(), 0);
    }

    #[test]
    fn apply_all_publishes_one_epoch_per_delta() {
        let live = live();
        let snap = live.snapshot();
        let deltas = vec![reweight(&snap, 1, 0.25), reweight(&snap, 2, 0.65)];
        let outcomes = live.apply_all(&deltas).unwrap();
        assert_eq!(
            outcomes.iter().map(|o| o.epoch).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(live.epoch(), 2);
    }

    #[test]
    fn readers_never_block_across_writer_swaps() {
        let live = live();
        // Warm epoch 0 so later epochs share artifacts.
        let _ = live.snapshot().run(&topk(2)).unwrap();
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                // Hold snapshots across many swaps; answers per epoch must
                // be self-consistent (same snapshot ⇒ same answer).
                for _ in 0..20 {
                    let snap = live.snapshot();
                    let a = snap.run(&topk(2)).unwrap();
                    let b = snap.run(&topk(2)).unwrap();
                    assert_eq!(a, b, "epoch {}", snap.epoch());
                }
            });
            let writer = scope.spawn(|| {
                for i in 0..20 {
                    let p = 0.3 + (i as f64) * 0.01;
                    let snap = live.snapshot();
                    live.apply(&reweight(&snap, 2, p)).unwrap();
                }
            });
            reader.join().unwrap();
            writer.join().unwrap();
        });
        assert_eq!(live.epoch(), 20);
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cpdb_live_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn apply_all_is_atomic_for_any_failure_position() {
        let good = |snap: &Snapshot| reweight(snap, 2, 0.65);
        // 0.9 + sibling 0.5 overflows block 1's mass: always invalid.
        let bad = |snap: &Snapshot| reweight(snap, 1, 0.9);
        for fail_at in 0..3 {
            let live = live();
            let snap = live.snapshot();
            let before = snap.run(&topk(2)).unwrap();
            let deltas: Vec<TreeDelta> = (0..3)
                .map(|i| {
                    if i == fail_at {
                        bad(&snap)
                    } else {
                        good(&snap)
                    }
                })
                .collect();
            let err = live.apply_all(&deltas).unwrap_err();
            assert!(
                matches!(err, LiveError::Engine(EngineError::Model(_))),
                "position {fail_at}: {err:?}"
            );
            // Nothing published: epoch unchanged, answers unchanged.
            assert_eq!(live.epoch(), 0, "position {fail_at}");
            assert_eq!(live.snapshot().run(&topk(2)).unwrap(), before);
        }
    }

    #[test]
    fn failed_batches_leave_no_orphan_wal_records() {
        let dir = temp_store_dir("atomic");
        let engine = ConsensusEngineBuilder::new(bid_tree())
            .seed(5)
            .kendall_distance_samples(64)
            .build()
            .unwrap();
        {
            let live = LiveEngine::new_durable(engine, &dir).unwrap();
            let snap = live.snapshot();
            let deltas = vec![
                reweight(&snap, 2, 0.65),
                reweight(&snap, 1, 0.9), // invalid: overflows block 1
            ];
            live.apply_all(&deltas).unwrap_err();
            assert_eq!(live.epoch(), 0);
            // A later, valid batch still commits at the right epochs.
            let ok = live.apply_all(&[reweight(&snap, 2, 0.7)]).unwrap();
            assert_eq!(ok[0].epoch, 1);
        }
        // Reopening proves the failed batch wrote nothing to the WAL: the
        // recovered epoch counts only the committed delta.
        let reopened = LiveEngine::open(&dir).unwrap();
        assert_eq!(reopened.epoch(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_engines_reopen_bit_identically() {
        let dir = temp_store_dir("roundtrip");
        let engine = ConsensusEngineBuilder::new(bid_tree())
            .seed(5)
            .kendall_distance_samples(64)
            .build()
            .unwrap();
        let expected = {
            let live = LiveEngine::new_durable(engine, &dir).unwrap();
            // Warm artifacts so the mid-way snapshot carries them.
            let _ = live.snapshot().run(&topk(2)).unwrap();
            let s = live.snapshot();
            live.apply(&reweight(&s, 1, 0.25)).unwrap();
            live.persist_snapshot().unwrap();
            let s = live.snapshot();
            live.apply(&reweight(&s, 2, 0.65)).unwrap();
            live.snapshot().run(&topk(2)).unwrap()
        };
        let reopened = LiveEngine::open(&dir).unwrap();
        assert_eq!(reopened.epoch(), 2);
        assert_eq!(reopened.snapshot().run(&topk(2)).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_an_empty_directory_reports_no_snapshot() {
        let dir = temp_store_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            LiveEngine::open(&dir),
            Err(LiveError::Store(StoreError::NoSnapshot))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_compaction_truncates_the_wal() {
        let dir = temp_store_dir("compaction");
        let engine = ConsensusEngineBuilder::new(bid_tree())
            .seed(5)
            .kendall_distance_samples(64)
            .build()
            .unwrap();
        {
            let live = LiveEngine::new_durable(engine, &dir).unwrap();
            live.set_snapshot_every(2);
            for i in 0..4 {
                let p = 0.3 + (i as f64) * 0.05;
                let s = live.snapshot();
                live.apply(&reweight(&s, 2, p)).unwrap();
            }
            // Drop joins the background compactor.
        }
        let reopened = LiveEngine::open(&dir).unwrap();
        assert_eq!(reopened.epoch(), 4);
        // At least one background snapshot beyond epoch 0 landed.
        let snap_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| n.starts_with("snapshot-") && *n != "snapshot-0.cpdb")
            .collect();
        assert!(!snap_files.is_empty(), "{snap_files:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_compaction_failures_surface_instead_of_vanishing() {
        let dir = temp_store_dir("compaction_error");
        let engine = ConsensusEngineBuilder::new(bid_tree())
            .seed(5)
            .kendall_distance_samples(64)
            .build()
            .unwrap();
        let live = LiveEngine::new_durable(engine, &dir).unwrap();
        live.set_snapshot_every(1);
        assert!(live.last_compaction_error().is_none());

        // Pull the directory out from under the background compactor: the
        // WAL's already-open descriptor keeps appends working, but the
        // snapshot rewrite needs to create a file in the (now gone)
        // directory and must fail.
        std::fs::remove_dir_all(&dir).unwrap();
        let s = live.snapshot();
        live.apply(&reweight(&s, 2, 0.7)).unwrap();
        live.await_compaction();

        // Regression: this failure used to be dropped on the floor. It must
        // be visible (peek), collectable (take), and cleared by the take.
        assert!(
            live.last_compaction_error().is_some(),
            "background compaction failure was swallowed"
        );
        let err = live.take_compaction_error();
        assert!(matches!(err, Some(StoreError::Io(_))), "{err:?}");
        assert!(live.take_compaction_error().is_none(), "error not cleared");
        assert_eq!(live.epoch(), 1, "failed compaction must not block serving");
    }

    #[test]
    fn compaction_failures_land_in_the_flight_recorder_with_their_epoch() {
        let dir = temp_store_dir("compaction_event");
        let engine = ConsensusEngineBuilder::new(bid_tree())
            .seed(5)
            .kendall_distance_samples(64)
            .build()
            .unwrap();
        let live = LiveEngine::new_durable(engine, &dir)
            .unwrap()
            .with_obs(Obs::enabled());
        live.set_snapshot_every(1);

        // Pull the directory out from under the background compactor (the
        // WAL's open descriptor keeps appends working) and force one
        // compaction to fail.
        std::fs::remove_dir_all(&dir).unwrap();
        let s = live.snapshot();
        live.apply(&reweight(&s, 2, 0.7)).unwrap();
        live.await_compaction();

        // Regression: the failure used to be visible only in the parked
        // error slot — the flight recorder showed a publish and then
        // nothing. The post-mortem event must name the failing epoch.
        let events = live.obs().drain_events();
        let failed: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::CompactionFailed)
            .collect();
        assert_eq!(failed.len(), 1, "{events:?}");
        assert!(failed[0].detail.contains("epoch 1"), "{:?}", failed[0]);
        assert!(
            events.iter().any(|e| e.kind == EventKind::EpochPublish),
            "publishes record events too: {events:?}"
        );
        // The parked-slot accessors keep working alongside the events.
        assert!(live.take_compaction_error().is_some());
    }

    #[test]
    fn metrics_snapshot_folds_health_and_epoch_gauges() {
        let live = live().with_obs(Obs::enabled());
        let s = live.snapshot();
        live.apply(&reweight(&s, 2, 0.75)).unwrap();
        let snapshot = live.metrics_snapshot();
        assert_eq!(snapshot.gauge("live.epoch"), Some(1));
        assert_eq!(snapshot.gauge("live.durable"), Some(0));
        assert_eq!(snapshot.gauge("live.health.overall"), Some(1));
        assert!(
            snapshot.gauge("replica.lag").is_none(),
            "no replication attached"
        );
    }

    fn fault_live(vfs: &cpdb_store::FaultVfs, dir: &std::path::Path) -> LiveEngine {
        let engine = ConsensusEngineBuilder::new(bid_tree())
            .seed(5)
            .kendall_distance_samples(64)
            .build()
            .unwrap();
        LiveEngine::new_durable_with(
            engine,
            dir,
            StoreOptions {
                vfs: Arc::new(vfs.clone()),
                retry: cpdb_store::RetryPolicy::no_delay(3),
                ..StoreOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn permanent_append_failure_degrades_writes_but_not_reads() {
        let vfs = cpdb_store::FaultVfs::new();
        let dir = std::path::PathBuf::from("/mem/live");
        let live = fault_live(&vfs, &dir);
        let snap = live.snapshot();
        let before = snap.run(&topk(2)).unwrap();
        live.apply(&reweight(&snap, 2, 0.7)).unwrap();
        assert!(live.health().is_healthy());

        // Disk full on the next append: the writer degrades...
        vfs.fail_at(vfs.op_count(), std::io::ErrorKind::StorageFull, false);
        let s = live.snapshot();
        let err = live.apply(&reweight(&s, 2, 0.75)).unwrap_err();
        assert!(matches!(
            err,
            LiveError::Degraded(DegradedReason::WalAppend { .. })
        ));
        // ...readers keep serving the last published epoch...
        assert_eq!(live.epoch(), 1);
        let pinned = live.snapshot();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(snap.run(&topk(2)).unwrap(), before);
        // ...further writes are refused without touching the disk...
        let ops = vfs.op_count();
        assert!(matches!(
            live.apply(&reweight(&s, 2, 0.75)),
            Err(LiveError::Degraded(_))
        ));
        assert!(matches!(
            live.apply_all(&[reweight(&s, 2, 0.75)]),
            Err(LiveError::Degraded(_))
        ));
        assert_eq!(vfs.op_count(), ops, "degraded writes must not touch disk");
        // ...and health reports it coherently.
        let health = live.health();
        assert!(!health.is_healthy());
        assert!(!health.writer.is_healthy());
        assert!(
            health.store.is_healthy(),
            "a rolled-back append leaves the medium consistent"
        );

        // Space freed: recovery re-probes, verifies the epoch, resumes.
        vfs.clear_faults();
        let health = live.try_recover().unwrap();
        assert!(health.is_healthy(), "{health:?}");
        let s = live.snapshot();
        let outcome = live.apply(&reweight(&s, 2, 0.75)).unwrap();
        assert_eq!(outcome.epoch, 2);
    }

    #[test]
    fn wal_unusable_failure_reports_store_degraded_and_recovers() {
        let vfs = cpdb_store::FaultVfs::new();
        let dir = std::path::PathBuf::from("/mem/live");
        let live = fault_live(&vfs, &dir);
        let snap = live.snapshot();
        live.apply(&reweight(&snap, 2, 0.7)).unwrap();

        // Persistent outage: the append fails AND its rollback fails.
        vfs.fail_at(vfs.op_count(), std::io::ErrorKind::Other, true);
        let s = live.snapshot();
        let err = live.apply(&reweight(&s, 2, 0.75)).unwrap_err();
        assert!(matches!(
            err,
            LiveError::Degraded(DegradedReason::WalUnusable { .. })
        ));
        let health = live.health();
        assert!(!health.writer.is_healthy());
        assert!(
            !health.store.is_healthy(),
            "an unusable wal implicates the store medium: {health:?}"
        );

        // While the outage persists, recovery itself fails and the engine
        // stays degraded.
        assert!(matches!(
            live.try_recover(),
            Err(LiveError::Degraded(DegradedReason::RecoveryFailed { .. }))
        ));
        assert!(!live.health().is_healthy());

        // Outage over: the reprobe reopens the WAL (truncating any torn
        // frame) and writes resume at the served epoch.
        vfs.clear_faults();
        let health = live.try_recover().unwrap();
        assert!(health.is_healthy(), "{health:?}");
        let s = live.snapshot();
        assert_eq!(live.apply(&reweight(&s, 2, 0.75)).unwrap().epoch, 2);
    }

    #[test]
    fn health_folds_compaction_errors_in_one_call() {
        let dir = temp_store_dir("health_compaction");
        let engine = ConsensusEngineBuilder::new(bid_tree())
            .seed(5)
            .kendall_distance_samples(64)
            .build()
            .unwrap();
        let live = LiveEngine::new_durable(engine, &dir).unwrap();
        assert!(live.health().is_healthy());

        // Make the synchronous snapshot path fail (directory gone): the
        // compactor component degrades, the writer stays healthy.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(live.persist_snapshot().is_err());
        let health = live.health();
        assert!(!health.is_healthy());
        assert!(health.writer.is_healthy(), "{health:?}");
        assert!(!health.compactor.is_healthy(), "{health:?}");
        // health() peeks without consuming: the error is still collectable,
        // and collecting it returns the compactor to healthy.
        assert!(!live.health().compactor.is_healthy());
        assert!(live.take_compaction_error().is_some());
        assert!(live.health().is_healthy());
    }

    #[test]
    fn in_memory_engines_are_always_healthy() {
        let live = live();
        let health = live.health();
        assert!(health.is_healthy());
        assert!(!health.durable);
        assert_eq!(health.epoch, 0);
        // try_recover on a healthy in-memory engine is a no-op.
        assert!(live.try_recover().unwrap().is_healthy());
    }

    #[test]
    fn next_epochs_start_warm_through_kept_artifacts() {
        let live = live();
        let kendall = Query::TopK {
            k: 2,
            metric: TopKMetric::Kendall,
            variant: Variant::Mean,
        };
        let snap0 = live.snapshot();
        let _ = snap0.run(&kendall).unwrap();
        let key_builds = snap0.engine().cache_stats().key_index_builds;
        assert!(key_builds >= 1);
        live.apply(&reweight(&snap0, 2, 0.75)).unwrap();
        let snap1 = live.snapshot();
        let _ = snap1.run(&kendall).unwrap();
        let stats = snap1.engine().cache_stats();
        // The probability delta kept the key index: epoch 1 never rebuilt it.
        assert_eq!(stats.key_index_builds, key_builds, "{stats:?}");
        assert!(stats.delta_kept >= 1, "{stats:?}");
        assert!(stats.delta_patched >= 1, "{stats:?}");
    }
}
