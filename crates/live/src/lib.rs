//! # cpdb-live — incremental updates with snapshot-isolated serving
//!
//! The paper motivates consensus answers for *live* probabilistic data:
//! sensor feeds whose readings drift, dedup pipelines whose match
//! probabilities are re-estimated, information extraction whose candidate
//! tuples appear and disappear. Everything below this crate treats the
//! and/xor tree as frozen — any change would mean discarding the
//! [`ConsensusEngine`] and rebuilding every generating-function artifact
//! from scratch while queries wait. This crate makes the data mutable while
//! readers keep getting answers:
//!
//! * **Mutations** are [`TreeDelta`]s (defined in `cpdb_andxor::mutate`):
//!   update an ∨-edge probability, update a leaf's score, insert/remove an
//!   alternative, add a whole tuple block. Application validates against the
//!   model constraints with typed errors and yields a *new* epoch-stamped
//!   tree — the previous epoch's tree is never touched.
//! * **Artifact maintenance** is delta-aware
//!   ([`ConsensusEngine::apply_delta`]): each cached artifact is *kept*
//!   (`Arc`-shared; its dependencies are untouched), *patched* (only the
//!   affected keys' slice is recomputed, bit-identical to a full rebuild),
//!   or *invalidated* (dropped for lazy rebuild) according to the delta's
//!   [`DeltaImpact`] dependency extract. A single-∨ probability update keeps
//!   the key index, patches the marginal/candidate tables and the pairwise
//!   tournaments in `O(n)` pair evaluations, and drops only the global-rank
//!   PMFs.
//! * **Serving is snapshot-isolated** ([`LiveEngine`]): readers take a cheap
//!   [`Snapshot`] handle (an `Arc` onto the current epoch) and keep querying
//!   it for as long as they like — a writer swapping in the next epoch never
//!   blocks them and never changes answers under them. Writers are
//!   serialised; the publish step is a single pointer store into the shared
//!   slot, taken under a lock that is never held across artifact work, so a
//!   concurrent `snapshot()` waits at most for that store.
//!
//! ## Consistency contract
//!
//! For every supported delta kind, the next epoch's engine answers **exactly
//! like a from-scratch engine** built from the mutated tree with the same
//! knobs: kept artifacts are bit-identical because their inputs are
//! untouched, patched artifacts recompute affected entries with the very
//! same closed forms the batch builders use, and invalidated artifacts are
//! rebuilt by the ordinary lazy paths. `cpdb_testkit::check_live_updates`
//! pins this equivalence after every delta of randomised sequences.
//!
//! ```
//! use cpdb_engine::{ConsensusEngineBuilder, Query, SetMetric, TopKMetric, Variant};
//! use cpdb_live::{LiveEngine, TreeDelta};
//! # use cpdb_andxor::AndXorTreeBuilder;
//! # let mut b = AndXorTreeBuilder::new();
//! # let l1 = b.leaf_parts(1, 30.0); let x1 = b.xor_node(vec![(l1, 0.8)]);
//! # let l2 = b.leaf_parts(2, 20.0); let x2 = b.xor_node(vec![(l2, 0.4)]);
//! # let root = b.and_node(vec![x1, x2]);
//! # let tree = b.build(root).unwrap();
//!
//! let live = LiveEngine::new(ConsensusEngineBuilder::new(tree).seed(7).build().unwrap());
//! let query = Query::TopK { k: 1, metric: TopKMetric::SymmetricDifference, variant: Variant::Mean };
//!
//! // A reader pins epoch 0…
//! let before = live.snapshot();
//! let answer_before = before.run(&query).unwrap();
//!
//! // …while a writer re-weights tuple 2's alternative.
//! let leaf = before.tree().leaves_of_key(2)[0];
//! let xor = before.tree().parent_of(leaf).unwrap();
//! let outcome = live
//!     .apply(&TreeDelta::XorEdgeProbability { xor, child: leaf, probability: 0.95 })
//!     .unwrap();
//! assert_eq!(outcome.epoch, 1);
//!
//! // The pinned snapshot still serves epoch 0, new snapshots serve epoch 1.
//! assert_eq!(before.run(&query).unwrap(), answer_before);
//! assert_eq!(live.snapshot().epoch(), 1);
//! # let _ = live.snapshot().run(&Query::SetConsensus {
//! #     metric: SetMetric::SymmetricDifference, variant: Variant::Mean }).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cpdb_engine::{ConsensusEngine, EngineError};
use std::ops::Deref;
use std::sync::{Arc, Mutex, RwLock};

pub use cpdb_andxor::{DeltaImpact, TreeDelta};
pub use cpdb_engine::{ArtifactDecision, DeltaReport};

/// One epoch of the live database: an epoch counter plus the engine serving
/// that version of the tree.
#[derive(Debug)]
struct Epoch {
    epoch: u64,
    engine: ConsensusEngine,
}

/// A reader's handle onto one epoch of a [`LiveEngine`] — a cheap `Arc`
/// clone. The snapshot stays fully serviceable (and its answers stay
/// byte-for-byte stable) for as long as the handle lives, no matter how many
/// epochs writers publish in the meantime; it dereferences to the epoch's
/// [`ConsensusEngine`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    inner: Arc<Epoch>,
}

impl Snapshot {
    /// The epoch this snapshot pins (the initial engine is epoch 0).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The engine serving this epoch.
    pub fn engine(&self) -> &ConsensusEngine {
        &self.inner.engine
    }
}

impl Deref for Snapshot {
    type Target = ConsensusEngine;

    fn deref(&self) -> &ConsensusEngine {
        &self.inner.engine
    }
}

/// The outcome of one applied delta: the epoch it published and the
/// per-artifact maintenance record.
#[derive(Debug)]
pub struct AppliedDelta {
    /// The epoch the mutated engine was published as.
    pub epoch: u64,
    /// Which built artifacts were kept / patched / invalidated.
    pub report: DeltaReport,
}

/// A versioned, concurrently-serving front over [`ConsensusEngine`]:
/// writers apply [`TreeDelta`]s to build the next epoch while in-flight
/// readers keep serving the previous epoch's snapshot without blocking.
///
/// * [`snapshot`](Self::snapshot) hands a reader the current epoch (an
///   `Arc` clone). Queries run against the snapshot exactly as against any
///   engine — including concurrently, the engine is `Sync`.
/// * [`apply`](Self::apply) validates and applies one delta, builds the
///   next-epoch engine via the delta-aware artifact maintenance
///   ([`ConsensusEngine::apply_delta`] — kept artifacts are `Arc`-shared,
///   patched ones recomputed selectively), and publishes it with a single
///   pointer store. Writers are serialised on an internal lock; failed
///   deltas publish nothing.
///
/// Dropping the last handle to a superseded epoch frees its artifacts (the
/// kept ones stay alive through the sharing `Arc`s of later epochs).
#[derive(Debug)]
pub struct LiveEngine {
    /// The published epoch. The lock is held only to clone (readers) or
    /// store (writers) the `Arc` — never across queries or artifact work.
    current: RwLock<Arc<Epoch>>,
    /// Serialises writers: the next-epoch build happens outside the
    /// `current` lock, so readers keep snapshotting while it runs.
    writer: Mutex<()>,
}

impl LiveEngine {
    /// Starts serving the given engine as epoch 0.
    pub fn new(engine: ConsensusEngine) -> Self {
        LiveEngine {
            current: RwLock::new(Arc::new(Epoch { epoch: 0, engine })),
            writer: Mutex::new(()),
        }
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current_arc().epoch
    }

    /// Pins the current epoch for a reader. O(1): an `Arc` clone under a
    /// briefly-held read lock.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            inner: self.current_arc(),
        }
    }

    fn current_arc(&self) -> Arc<Epoch> {
        self.current
            .read()
            .expect("live epoch lock poisoned")
            .clone()
    }

    /// Applies one delta: validates it against the current epoch's tree,
    /// builds the next-epoch engine (kept artifacts shared, affected ones
    /// patched or dropped — see [`DeltaReport`]), and publishes it. On error
    /// nothing is published and the current epoch keeps serving.
    pub fn apply(&self, delta: &TreeDelta) -> Result<AppliedDelta, EngineError> {
        let _writer = self.writer.lock().expect("live writer lock poisoned");
        let current = self.current_arc();
        let (engine, report) = current.engine.apply_delta(delta)?;
        let next = Arc::new(Epoch {
            epoch: current.epoch + 1,
            engine,
        });
        let epoch = next.epoch;
        *self.current.write().expect("live epoch lock poisoned") = next;
        Ok(AppliedDelta { epoch, report })
    }

    /// Applies a sequence of deltas in order, publishing one epoch per
    /// delta. Stops at the first invalid delta: the earlier epochs stay
    /// published, the failing delta publishes nothing.
    pub fn apply_all(&self, deltas: &[TreeDelta]) -> Result<Vec<AppliedDelta>, EngineError> {
        deltas.iter().map(|d| self.apply(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_andxor::{AndXorTree, AndXorTreeBuilder};
    use cpdb_engine::{ConsensusEngineBuilder, Query, TopKMetric, Variant};

    fn bid_tree() -> AndXorTree {
        let mut b = AndXorTreeBuilder::new();
        let mut xors = Vec::new();
        for (key, alts) in [
            (1u64, vec![(95.0, 0.3), (40.0, 0.5)]),
            (2, vec![(80.0, 0.6), (55.0, 0.2)]),
            (3, vec![(70.0, 0.9)]),
        ] {
            let edges: Vec<_> = alts
                .iter()
                .map(|&(v, p)| (b.leaf_parts(key, v), p))
                .collect();
            xors.push(b.xor_node(edges));
        }
        let root = b.and_node(xors);
        b.build(root).unwrap()
    }

    fn live() -> LiveEngine {
        LiveEngine::new(
            ConsensusEngineBuilder::new(bid_tree())
                .seed(5)
                .kendall_distance_samples(64)
                .build()
                .unwrap(),
        )
    }

    fn topk(k: usize) -> Query {
        Query::TopK {
            k,
            metric: TopKMetric::SymmetricDifference,
            variant: Variant::Mean,
        }
    }

    fn reweight(snapshot: &Snapshot, key: u64, probability: f64) -> TreeDelta {
        let leaf = snapshot.tree().leaves_of_key(key)[0];
        TreeDelta::XorEdgeProbability {
            xor: snapshot.tree().parent_of(leaf).unwrap(),
            child: leaf,
            probability,
        }
    }

    #[test]
    fn epochs_advance_and_pinned_snapshots_stay_stable() {
        let live = live();
        assert_eq!(live.epoch(), 0);
        let pinned = live.snapshot();
        let before = pinned.run(&topk(2)).unwrap();

        let outcome = live.apply(&reweight(&pinned, 2, 0.75)).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(live.epoch(), 1);

        // The pinned reader still sees epoch 0, byte for byte.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.run(&topk(2)).unwrap(), before);

        // New snapshots see the mutated data.
        let now = live.snapshot();
        assert_eq!(now.epoch(), 1);
        let probs = now.tree().alternative_probabilities();
        assert!((probs[&cpdb_model::Alternative::new(2, 80.0)] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn failed_deltas_publish_nothing() {
        let live = live();
        let snap = live.snapshot();
        // 0.9 + sibling 0.5 overflows block 1's mass.
        let err = live.apply(&reweight(&snap, 1, 0.9)).unwrap_err();
        assert!(matches!(err, EngineError::Model(_)), "{err:?}");
        assert_eq!(live.epoch(), 0);
    }

    #[test]
    fn apply_all_publishes_one_epoch_per_delta() {
        let live = live();
        let snap = live.snapshot();
        let deltas = vec![reweight(&snap, 1, 0.25), reweight(&snap, 2, 0.65)];
        let outcomes = live.apply_all(&deltas).unwrap();
        assert_eq!(
            outcomes.iter().map(|o| o.epoch).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(live.epoch(), 2);
    }

    #[test]
    fn readers_never_block_across_writer_swaps() {
        let live = live();
        // Warm epoch 0 so later epochs share artifacts.
        let _ = live.snapshot().run(&topk(2)).unwrap();
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                // Hold snapshots across many swaps; answers per epoch must
                // be self-consistent (same snapshot ⇒ same answer).
                for _ in 0..20 {
                    let snap = live.snapshot();
                    let a = snap.run(&topk(2)).unwrap();
                    let b = snap.run(&topk(2)).unwrap();
                    assert_eq!(a, b, "epoch {}", snap.epoch());
                }
            });
            let writer = scope.spawn(|| {
                for i in 0..20 {
                    let p = 0.3 + (i as f64) * 0.01;
                    let snap = live.snapshot();
                    live.apply(&reweight(&snap, 2, p)).unwrap();
                }
            });
            reader.join().unwrap();
            writer.join().unwrap();
        });
        assert_eq!(live.epoch(), 20);
    }

    #[test]
    fn next_epochs_start_warm_through_kept_artifacts() {
        let live = live();
        let kendall = Query::TopK {
            k: 2,
            metric: TopKMetric::Kendall,
            variant: Variant::Mean,
        };
        let snap0 = live.snapshot();
        let _ = snap0.run(&kendall).unwrap();
        let key_builds = snap0.engine().cache_stats().key_index_builds;
        assert!(key_builds >= 1);
        live.apply(&reweight(&snap0, 2, 0.75)).unwrap();
        let snap1 = live.snapshot();
        let _ = snap1.run(&kendall).unwrap();
        let stats = snap1.engine().cache_stats();
        // The probability delta kept the key index: epoch 1 never rebuilt it.
        assert_eq!(stats.key_index_builds, key_builds, "{stats:?}");
        assert!(stats.delta_kept >= 1, "{stats:?}");
        assert!(stats.delta_patched >= 1, "{stats:?}");
    }
}
