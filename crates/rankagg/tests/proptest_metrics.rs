//! Property-based tests for the Top-k distance metrics and aggregation
//! algorithms.

use cpdb_rankagg::borda::borda_aggregate_topk;
use cpdb_rankagg::footrule::footrule_aggregate_topk;
use cpdb_rankagg::kemeny::kemeny_optimal;
use cpdb_rankagg::metrics::{
    footrule_distance, intersection_metric, kendall_tau_topk, symmetric_difference_topk,
};
use cpdb_rankagg::pivot::{pivot_best_of, PreferenceMatrix};
use cpdb_rankagg::{FullRanking, TopKList};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a Top-k list of distinct items drawn from 0..12.
fn topk_list() -> impl Strategy<Value = TopKList> {
    prop::collection::vec(0u64..12, 0..6).prop_map(|mut items| {
        items.sort_unstable();
        items.dedup();
        // A deterministic shuffle so the order isn't always ascending.
        items.reverse();
        TopKList::new(items).expect("deduplicated")
    })
}

/// Strategy: a Top-k list of exactly `len` distinct items drawn from 0..12.
fn topk_list_exact(len: usize) -> impl Strategy<Value = TopKList> {
    Just((0u64..12).collect::<Vec<u64>>())
        .prop_shuffle()
        .prop_map(move |items| TopKList::new(items.into_iter().take(len).collect()).unwrap())
}

fn full_ranking() -> impl Strategy<Value = FullRanking> {
    Just((0u64..6).collect::<Vec<u64>>())
        .prop_shuffle()
        .prop_map(|items| FullRanking::new(items).expect("permutation"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every metric is symmetric, non-negative, and zero on identical lists.
    #[test]
    fn metrics_are_symmetric_and_reflexive(a in topk_list(), b in topk_list()) {
        for metric in [
            symmetric_difference_topk,
            intersection_metric,
            footrule_distance,
            kendall_tau_topk,
        ] {
            prop_assert!(metric(&a, &b) >= 0.0);
            prop_assert!((metric(&a, &b) - metric(&b, &a)).abs() < 1e-12);
            prop_assert_eq!(metric(&a, &a), 0.0);
        }
    }

    /// Normalised metrics stay in [0, 1].
    #[test]
    fn normalised_metrics_bounded(a in topk_list(), b in topk_list()) {
        prop_assert!(symmetric_difference_topk(&a, &b) <= 1.0 + 1e-12);
        prop_assert!(intersection_metric(&a, &b) <= 1.0 + 1e-12);
    }

    /// The intersection metric is at least `d_Δ / k`: its depth-k term alone
    /// already contributes the full symmetric difference divided by k, and
    /// every other term is non-negative.
    #[test]
    fn intersection_lower_bounded_by_sym_diff(a in topk_list(), b in topk_list()) {
        let k = a.len().max(b.len());
        if k > 0 {
            prop_assert!(
                intersection_metric(&a, &b) + 1e-12
                    >= symmetric_difference_topk(&a, &b) / k as f64
            );
        }
    }

    /// The footrule triangle inequality holds on Top-k lists of a common
    /// length (the setting in which Fagin et al. prove `F^{(k+1)}` is a
    /// metric).
    #[test]
    fn footrule_triangle_inequality(
        a in topk_list_exact(3),
        b in topk_list_exact(3),
        c in topk_list_exact(3),
    ) {
        prop_assert!(
            footrule_distance(&a, &c)
                <= footrule_distance(&a, &b) + footrule_distance(&b, &c) + 1e-9
        );
    }

    /// Kendall and footrule distances of full rankings obey the
    /// Diaconis–Graham inequalities K ≤ F ≤ 2K.
    #[test]
    fn diaconis_graham(a in full_ranking(), b in full_ranking()) {
        let k = a.kendall_tau(&b);
        let f = a.footrule_distance(&b);
        prop_assert!(k <= f);
        prop_assert!(f <= 2 * k || k == 0);
    }

    /// Footrule aggregation of Top-k lists is never worse than the Borda
    /// aggregation under the footrule objective (it is optimal when every
    /// reference list has at most k items, so the location parameter k+1
    /// matches the metric's).
    #[test]
    fn footrule_aggregation_beats_borda(
        lists in prop::collection::vec((topk_list_exact(3), 0.1f64..1.0), 1..4),
        k in 3usize..5,
    ) {
        let items: Vec<u64> = (0..12).collect();
        let foot = footrule_aggregate_topk(&items, &lists, k);
        let borda = borda_aggregate_topk(&items, &lists, k);
        let objective = |cand: &TopKList| -> f64 {
            lists.iter().map(|(l, w)| w * footrule_distance(cand, l)).sum()
        };
        prop_assert!(objective(&foot) <= objective(&borda) + 1e-9);
    }

    /// Pivot aggregation (best of a few runs) is within factor 2 of the
    /// Kemeny optimum on random weighted tournaments.
    #[test]
    fn pivot_within_two_of_kemeny(seed in 0u64..1000) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<u64> = (0..5).collect();
        let mut prefs = PreferenceMatrix::new(&items);
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let w: f64 = rng.gen();
                prefs.set_weight(items[i], items[j], w);
                prefs.set_weight(items[j], items[i], 1.0 - w);
            }
        }
        let (_, opt) = kemeny_optimal(&items, &prefs).unwrap();
        let approx = pivot_best_of(&prefs, 6, &mut rng).unwrap();
        prop_assert!(prefs.disagreement(&approx) <= 2.0 * opt + 1e-9);
    }
}
