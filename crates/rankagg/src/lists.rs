//! Full rankings and Top-k lists.
//!
//! Items are opaque `u64` identifiers (in the probabilistic-database setting
//! they are tuple keys). A [`FullRanking`] orders an entire item set; a
//! [`TopKList`] orders only its best `k` items, which is the answer shape of
//! a Top-k query.

use std::collections::HashMap;
use std::fmt;

/// Errors raised when constructing rankings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankError {
    /// An item appeared more than once.
    DuplicateItem {
        /// The duplicated item identifier.
        item: u64,
    },
    /// The list was empty where a non-empty list is required.
    Empty,
    /// An item expected in a ranking was not ranked by it.
    MissingItem {
        /// The item that was not ranked.
        item: u64,
    },
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankError::DuplicateItem { item } => write!(f, "item {item} appears more than once"),
            RankError::Empty => write!(f, "ranking must contain at least one item"),
            RankError::MissingItem { item } => {
                write!(f, "item {item} is not ranked by the other ranking")
            }
        }
    }
}

impl std::error::Error for RankError {}

/// A Top-k list: an ordered list of distinct items, best first.
///
/// `τ(i)` (1-based position lookup) and `τ(t)` (item → position) follow the
/// paper's notation via [`TopKList::item_at`] and [`TopKList::position_of`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TopKList {
    items: Vec<u64>,
}

impl TopKList {
    /// Builds a Top-k list from items in rank order (best first), rejecting
    /// duplicates.
    pub fn new(items: Vec<u64>) -> Result<Self, RankError> {
        let mut seen = std::collections::HashSet::with_capacity(items.len());
        for &it in &items {
            if !seen.insert(it) {
                return Err(RankError::DuplicateItem { item: it });
            }
        }
        Ok(TopKList { items })
    }

    /// The empty list (k = 0).
    pub fn empty() -> Self {
        TopKList { items: Vec::new() }
    }

    /// The items in rank order.
    #[inline]
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// The list length `k`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item at 1-based position `i` (`τ(i)`), if `i ≤ k`.
    pub fn item_at(&self, i: usize) -> Option<u64> {
        if i == 0 {
            None
        } else {
            self.items.get(i - 1).copied()
        }
    }

    /// The 1-based position of `item` (`τ(t)`), if present.
    pub fn position_of(&self, item: u64) -> Option<usize> {
        self.items.iter().position(|&x| x == item).map(|p| p + 1)
    }

    /// Whether `item` appears in the list.
    pub fn contains(&self, item: u64) -> bool {
        self.items.contains(&item)
    }

    /// The prefix `τ^i`: the restriction of the list to its first `i` items.
    pub fn prefix(&self, i: usize) -> TopKList {
        TopKList {
            items: self.items.iter().take(i).copied().collect(),
        }
    }

    /// Number of items shared with another list.
    pub fn overlap(&self, other: &TopKList) -> usize {
        self.items.iter().filter(|it| other.contains(**it)).count()
    }

    /// A position lookup map (item → 1-based position) for repeated queries.
    pub fn position_map(&self) -> HashMap<u64, usize> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, &it)| (it, i + 1))
            .collect()
    }
}

impl fmt::Display for TopKList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " > ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, "]")
    }
}

/// A full ranking (permutation) of an item set, best first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FullRanking {
    items: Vec<u64>,
}

impl FullRanking {
    /// Builds a full ranking from items in rank order, rejecting duplicates
    /// and empty lists.
    pub fn new(items: Vec<u64>) -> Result<Self, RankError> {
        if items.is_empty() {
            return Err(RankError::Empty);
        }
        let mut seen = std::collections::HashSet::with_capacity(items.len());
        for &it in &items {
            if !seen.insert(it) {
                return Err(RankError::DuplicateItem { item: it });
            }
        }
        Ok(FullRanking { items })
    }

    /// The items in rank order.
    #[inline]
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Always false (construction rejects empty rankings); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The 1-based position of `item`, if present.
    pub fn position_of(&self, item: u64) -> Option<usize> {
        self.items.iter().position(|&x| x == item).map(|p| p + 1)
    }

    /// The Top-k prefix of this ranking.
    pub fn top_k(&self, k: usize) -> TopKList {
        TopKList {
            items: self.items.iter().take(k).copied().collect(),
        }
    }

    /// Spearman footrule distance to another full ranking over the same item
    /// set: `Σ_t |σ₁(t) − σ₂(t)|`.
    ///
    /// # Panics
    ///
    /// Panics when `other` does not rank every item of `self`. Use
    /// [`FullRanking::try_footrule_distance`] to get a typed error instead.
    pub fn footrule_distance(&self, other: &FullRanking) -> usize {
        self.try_footrule_distance(other)
            .expect("rankings must be over the same item set")
    }

    /// Fallible Spearman footrule distance: returns
    /// [`RankError::MissingItem`] when `other` does not rank every item of
    /// `self` instead of panicking.
    pub fn try_footrule_distance(&self, other: &FullRanking) -> Result<usize, RankError> {
        self.items
            .iter()
            .map(|&t| {
                let p1 = self.position_of(t).expect("item in self");
                let p2 = other
                    .position_of(t)
                    .ok_or(RankError::MissingItem { item: t })?;
                Ok(p1.abs_diff(p2))
            })
            .sum()
    }

    /// Kendall tau distance to another full ranking over the same item set:
    /// the number of discordant pairs.
    pub fn kendall_tau(&self, other: &FullRanking) -> usize {
        let pos2 = other.position_map();
        let mut count = 0;
        for i in 0..self.items.len() {
            for j in (i + 1)..self.items.len() {
                let a = self.items[i];
                let b = self.items[j];
                let pa = pos2[&a];
                let pb = pos2[&b];
                if pa > pb {
                    count += 1;
                }
            }
        }
        count
    }

    /// A position lookup map (item → 1-based position).
    pub fn position_map(&self) -> HashMap<u64, usize> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, &it)| (it, i + 1))
            .collect()
    }
}

impl fmt::Display for FullRanking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " > ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_construction_and_lookup() {
        let t = TopKList::new(vec![5, 3, 9]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.item_at(1), Some(5));
        assert_eq!(t.item_at(3), Some(9));
        assert_eq!(t.item_at(0), None);
        assert_eq!(t.item_at(4), None);
        assert_eq!(t.position_of(3), Some(2));
        assert_eq!(t.position_of(7), None);
        assert!(t.contains(9));
        assert_eq!(t.prefix(2).items(), &[5, 3]);
        assert_eq!(format!("{t}"), "[5 > 3 > 9]");
    }

    #[test]
    fn topk_rejects_duplicates() {
        assert_eq!(
            TopKList::new(vec![1, 2, 1]),
            Err(RankError::DuplicateItem { item: 1 })
        );
    }

    #[test]
    fn overlap_counts_shared_items() {
        let a = TopKList::new(vec![1, 2, 3]).unwrap();
        let b = TopKList::new(vec![3, 4, 1]).unwrap();
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(TopKList::empty().overlap(&a), 0);
    }

    #[test]
    fn full_ranking_distances() {
        let a = FullRanking::new(vec![1, 2, 3, 4]).unwrap();
        let b = FullRanking::new(vec![2, 1, 3, 4]).unwrap();
        assert_eq!(a.footrule_distance(&b), 2);
        assert_eq!(a.kendall_tau(&b), 1);
        let c = FullRanking::new(vec![4, 3, 2, 1]).unwrap();
        assert_eq!(a.kendall_tau(&c), 6);
        assert_eq!(a.footrule_distance(&c), 8);
    }

    #[test]
    fn full_ranking_validation_and_topk() {
        assert_eq!(FullRanking::new(vec![]), Err(RankError::Empty));
        assert!(FullRanking::new(vec![1, 1]).is_err());
        let r = FullRanking::new(vec![9, 7, 5]).unwrap();
        assert_eq!(r.top_k(2).items(), &[9, 7]);
        assert_eq!(r.position_of(5), Some(3));
        assert!(!r.is_empty());
    }

    #[test]
    fn footrule_within_twice_kendall() {
        // Diaconis–Graham: K ≤ F ≤ 2K for full rankings.
        let perms = [
            vec![1u64, 2, 3, 4, 5],
            vec![5, 4, 3, 2, 1],
            vec![2, 4, 1, 5, 3],
            vec![3, 1, 4, 5, 2],
        ];
        for a in &perms {
            for b in &perms {
                let ra = FullRanking::new(a.clone()).unwrap();
                let rb = FullRanking::new(b.clone()).unwrap();
                let k = ra.kendall_tau(&rb);
                let f = ra.footrule_distance(&rb);
                assert!(k <= f && f <= 2 * k || (k == 0 && f == 0));
            }
        }
    }
}
