//! Pairwise-preference tournaments and KwikSort/pivot aggregation.
//!
//! Ailon, Charikar & Newman (JACM 2008) showed that ordering items by
//! recursively picking a random pivot and splitting the rest according to the
//! majority pairwise preference gives a constant-factor approximation to the
//! Kemeny-optimal aggregation (expected 2 when fed the pairwise fractions, or
//! 11/7 / 4/3 when combined with LP rounding). The paper invokes exactly this
//! machinery for its Kendall-tau consensus Top-k answer (§5.5): the only
//! input the algorithm needs is `Pr(r(t_i) < r(t_j))`, which the and/xor tree
//! computes exactly by generating functions.
//!
//! [`PreferenceMatrix`] stores those pairwise weights; [`pivot_order`] runs
//! seeded KwikSort over them, and [`pivot_best_of`] takes the best of several
//! seeded runs (plus the deterministic Borda order) under the weighted
//! disagreement objective.

use crate::lists::{FullRanking, RankError};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// A weighted pairwise-preference tournament: `weight(i, j)` is the fraction
/// (probability mass) of voters preferring `i` over `j`. For every pair,
/// `weight(i, j) + weight(j, i) ≈ 1` unless some voters rank neither.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PreferenceMatrix {
    items: Vec<u64>,
    index: HashMap<u64, usize>,
    /// Row-major `items.len() × items.len()` matrix.
    weights: Vec<f64>,
}

impl PreferenceMatrix {
    /// An all-zero tournament over the given items.
    pub fn new(items: &[u64]) -> Self {
        let index = items.iter().enumerate().map(|(i, &it)| (it, i)).collect();
        PreferenceMatrix {
            items: items.to_vec(),
            index,
            weights: vec![0.0; items.len() * items.len()],
        }
    }

    /// Builds the tournament from weighted full rankings: `weight(i, j)` is
    /// the total weight of rankings placing `i` ahead of `j`, normalised by
    /// the total weight.
    pub fn from_rankings(items: &[u64], rankings: &[(FullRanking, f64)]) -> Self {
        let mut m = Self::new(items);
        let total: f64 = rankings.iter().map(|(_, w)| *w).sum();
        if total <= 0.0 {
            return m;
        }
        for (r, w) in rankings {
            let pos = r.position_map();
            for (a_idx, &a) in items.iter().enumerate() {
                for &b in items.iter().skip(a_idx + 1) {
                    match (pos.get(&a), pos.get(&b)) {
                        (Some(pa), Some(pb)) if pa < pb => m.add_weight(a, b, w / total),
                        (Some(pa), Some(pb)) if pb < pa => m.add_weight(b, a, w / total),
                        _ => {}
                    }
                }
            }
        }
        m
    }

    /// The items of the tournament.
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// The preference weight for `i` over `j` (0 for unknown items).
    pub fn weight(&self, i: u64, j: u64) -> f64 {
        match (self.index.get(&i), self.index.get(&j)) {
            (Some(&a), Some(&b)) => self.weights[a * self.items.len() + b],
            _ => 0.0,
        }
    }

    /// Sets the preference weight for `i` over `j`.
    pub fn set_weight(&mut self, i: u64, j: u64, w: f64) {
        if let (Some(&a), Some(&b)) = (self.index.get(&i), self.index.get(&j)) {
            self.weights[a * self.items.len() + b] = w;
        }
    }

    /// Adds to the preference weight for `i` over `j`.
    pub fn add_weight(&mut self, i: u64, j: u64, w: f64) {
        if let (Some(&a), Some(&b)) = (self.index.get(&i), self.index.get(&j)) {
            self.weights[a * self.items.len() + b] += w;
        }
    }

    /// The weighted-disagreement cost of a full ranking: the total weight of
    /// pairwise preferences it violates. This is the (weighted) Kendall
    /// objective the Kemeny aggregation minimises.
    pub fn disagreement(&self, ranking: &FullRanking) -> f64 {
        let pos = ranking.position_map();
        let mut cost = 0.0;
        for (a_idx, &a) in self.items.iter().enumerate() {
            for &b in self.items.iter().skip(a_idx + 1) {
                if let (Some(pa), Some(pb)) = (pos.get(&a), pos.get(&b)) {
                    if pa < pb {
                        cost += self.weight(b, a);
                    } else {
                        cost += self.weight(a, b);
                    }
                }
            }
        }
        cost
    }

    /// The Borda-style order: items sorted by total outgoing preference
    /// weight (descending). A deterministic, cheap aggregation used as one of
    /// the candidates in [`pivot_best_of`]. Returns [`RankError::Empty`] for
    /// an empty tournament (a full ranking cannot be empty).
    pub fn borda_order(&self) -> Result<FullRanking, RankError> {
        let mut scored: Vec<(u64, f64)> = self
            .items
            .iter()
            .map(|&i| {
                let s: f64 = self.items.iter().map(|&j| self.weight(i, j)).sum();
                (i, s)
            })
            .collect();
        scored.sort_by(|(ia, sa), (ib, sb)| {
            sb.partial_cmp(sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| ia.cmp(ib))
        });
        FullRanking::new(scored.into_iter().map(|(i, _)| i).collect())
    }
}

/// Orders the tournament's items by seeded KwikSort: pick a random pivot,
/// place each remaining item before or after it according to the majority
/// preference, recurse. Expected constant-factor approximation of the
/// Kemeny-optimal aggregation when the weights come from actual rankings.
/// Returns [`RankError::Empty`] for an empty tournament.
pub fn pivot_order<R: Rng + ?Sized>(
    prefs: &PreferenceMatrix,
    rng: &mut R,
) -> Result<FullRanking, RankError> {
    let mut items = prefs.items().to_vec();
    items.shuffle(rng);
    let ordered = kwiksort(&items, prefs, rng);
    FullRanking::new(ordered)
}

fn kwiksort<R: Rng + ?Sized>(items: &[u64], prefs: &PreferenceMatrix, rng: &mut R) -> Vec<u64> {
    if items.len() <= 1 {
        return items.to_vec();
    }
    let pivot_idx = rng.gen_range(0..items.len());
    let pivot = items[pivot_idx];
    let mut before = Vec::new();
    let mut after = Vec::new();
    for &it in items {
        if it == pivot {
            continue;
        }
        if prefs.weight(it, pivot) >= prefs.weight(pivot, it) {
            before.push(it);
        } else {
            after.push(it);
        }
    }
    let mut out = kwiksort(&before, prefs, rng);
    out.push(pivot);
    out.extend(kwiksort(&after, prefs, rng));
    out
}

/// Runs [`pivot_order`] `trials` times plus the deterministic Borda order and
/// returns the candidate with the smallest weighted disagreement. Returns
/// [`RankError::Empty`] for an empty tournament.
pub fn pivot_best_of<R: Rng + ?Sized>(
    prefs: &PreferenceMatrix,
    trials: usize,
    rng: &mut R,
) -> Result<FullRanking, RankError> {
    let mut best = prefs.borda_order()?;
    let mut best_cost = prefs.disagreement(&best);
    for _ in 0..trials {
        let candidate = pivot_order(prefs, rng)?;
        let cost = prefs.disagreement(&candidate);
        if cost < best_cost {
            best_cost = cost;
            best = candidate;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kemeny::kemeny_optimal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unanimous_prefs() -> (Vec<u64>, PreferenceMatrix) {
        let items = vec![1u64, 2, 3, 4, 5];
        let r = FullRanking::new(items.clone()).unwrap();
        let prefs = PreferenceMatrix::from_rankings(&items, &[(r, 1.0)]);
        (items, prefs)
    }

    #[test]
    fn from_rankings_builds_fractions() {
        let items = [1u64, 2];
        let rankings = [
            (FullRanking::new(vec![1, 2]).unwrap(), 3.0),
            (FullRanking::new(vec![2, 1]).unwrap(), 1.0),
        ];
        let m = PreferenceMatrix::from_rankings(&items, &rankings);
        assert!((m.weight(1, 2) - 0.75).abs() < 1e-12);
        assert!((m.weight(2, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pivot_recovers_unanimous_order() {
        let (_, prefs) = unanimous_prefs();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let r = pivot_order(&prefs, &mut rng).unwrap();
            assert_eq!(r.items(), &[1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn borda_recovers_unanimous_order() {
        let (_, prefs) = unanimous_prefs();
        assert_eq!(prefs.borda_order().unwrap().items(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn disagreement_zero_for_unanimous_winner() {
        let (_, prefs) = unanimous_prefs();
        let r = FullRanking::new(vec![1, 2, 3, 4, 5]).unwrap();
        assert_eq!(prefs.disagreement(&r), 0.0);
        let rev = FullRanking::new(vec![5, 4, 3, 2, 1]).unwrap();
        assert!((prefs.disagreement(&rev) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn pivot_best_of_close_to_kemeny_on_random_tournaments() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let items: Vec<u64> = (0..6).collect();
            let mut prefs = PreferenceMatrix::new(&items);
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let w: f64 = rng.gen();
                    prefs.set_weight(items[i], items[j], w);
                    prefs.set_weight(items[j], items[i], 1.0 - w);
                }
            }
            let (_, opt_cost) = kemeny_optimal(&items, &prefs).unwrap();
            let approx = pivot_best_of(&prefs, 8, &mut rng).unwrap();
            let approx_cost = prefs.disagreement(&approx);
            assert!(
                approx_cost <= 2.0 * opt_cost + 1e-9,
                "pivot {approx_cost} vs optimal {opt_cost}"
            );
        }
    }

    #[test]
    fn empty_tournament_is_a_typed_error() {
        let prefs = PreferenceMatrix::new(&[]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(prefs.borda_order().unwrap_err(), RankError::Empty);
        assert_eq!(pivot_order(&prefs, &mut rng).unwrap_err(), RankError::Empty);
        assert_eq!(
            pivot_best_of(&prefs, 4, &mut rng).unwrap_err(),
            RankError::Empty
        );
    }

    #[test]
    fn weights_for_unknown_items_are_zero() {
        let (_, prefs) = unanimous_prefs();
        assert_eq!(prefs.weight(1, 99), 0.0);
        assert_eq!(prefs.weight(99, 1), 0.0);
    }
}
