//! Exact (brute-force) Kemeny-optimal rank aggregation.
//!
//! The Kemeny optimal aggregation of rankings `τ₁ … τ_m` is the ranking `τ`
//! minimising `Σ_i w_i · K(τ, τ_i)` where `K` is the Kendall tau distance.
//! Computing it is NP-hard already for four input rankings (Dwork et al.),
//! so this module provides an exhaustive solver for small item sets — used
//! throughout the repository as the ground-truth oracle that approximation
//! algorithms (pivot, footrule, Borda) are measured against.

use crate::lists::{FullRanking, RankError, TopKList};
use crate::metrics::kendall_tau_topk;
use crate::pivot::PreferenceMatrix;

/// Exhaustively finds a Kemeny-optimal full ranking of `items` against a
/// weighted pairwise-preference tournament. The objective minimised is
/// `Σ_{i ranked after j} w(j, i)` — the total weight of violated preferences
/// — which equals the weighted Kendall distance to the input rankings when
/// `w` is built from them.
///
/// Returns [`RankError::Empty`] when `items` is empty (a full ranking
/// cannot be empty).
///
/// # Panics
///
/// Panics when more than 10 items are supplied (10! permutations ≈ 3.6M).
pub fn kemeny_optimal(
    items: &[u64],
    prefs: &PreferenceMatrix,
) -> Result<(FullRanking, f64), RankError> {
    assert!(
        items.len() <= 10,
        "brute-force Kemeny aggregation limited to 10 items"
    );
    if items.is_empty() {
        return Err(RankError::Empty);
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    let mut best_cost = f64::INFINITY;
    let mut best_order = order.clone();
    permute(&mut order, 0, &mut |perm| {
        let mut cost = 0.0;
        for a in 0..perm.len() {
            for b in (a + 1)..perm.len() {
                // items[perm[a]] is ranked ahead of items[perm[b]]; we pay the
                // weight of voters preferring the opposite order.
                cost += prefs.weight(items[perm[b]], items[perm[a]]);
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best_order = perm.to_vec();
        }
    });
    let ranking = FullRanking::new(best_order.iter().map(|&i| items[i]).collect())
        .expect("permutation of distinct items");
    Ok((ranking, best_cost))
}

/// Exhaustively finds the Top-k list (over `items`, any subset of size `k`,
/// any order) minimising the weighted average Kendall-tau Top-k distance to
/// the given `(list, weight)` pairs. Ground-truth oracle for the Kendall
/// consensus Top-k answer.
///
/// # Panics
///
/// Panics when the search space `P(n, k)` exceeds ~1e7.
pub fn kemeny_optimal_topk(
    items: &[u64],
    k: usize,
    references: &[(TopKList, f64)],
) -> (TopKList, f64) {
    let n = items.len();
    let k = k.min(n);
    let mut space = 1.0f64;
    for i in 0..k {
        space *= (n - i) as f64;
    }
    assert!(space <= 1e7, "Top-k enumeration space too large ({space})");
    let mut best: Option<(TopKList, f64)> = None;
    let mut current: Vec<u64> = Vec::with_capacity(k);
    let mut used = vec![false; n];
    enumerate_topk(
        items,
        k,
        &mut current,
        &mut used,
        &mut |candidate: &[u64]| {
            let list = TopKList::new(candidate.to_vec()).expect("distinct by construction");
            let cost: f64 = references
                .iter()
                .map(|(r, w)| w * kendall_tau_topk(&list, r))
                .sum();
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                best = Some((list, cost));
            }
        },
    );
    best.expect("k ≥ 0 implies at least the empty candidate")
}

fn permute<F: FnMut(&[usize])>(order: &mut Vec<usize>, start: usize, visit: &mut F) {
    if start == order.len() {
        visit(order);
        return;
    }
    for i in start..order.len() {
        order.swap(start, i);
        permute(order, start + 1, visit);
        order.swap(start, i);
    }
}

fn enumerate_topk<F: FnMut(&[u64])>(
    items: &[u64],
    k: usize,
    current: &mut Vec<u64>,
    used: &mut Vec<bool>,
    visit: &mut F,
) {
    if current.len() == k {
        visit(current);
        return;
    }
    for i in 0..items.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        current.push(items[i]);
        enumerate_topk(items, k, current, used, visit);
        current.pop();
        used[i] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::FullRanking;

    #[test]
    fn kemeny_of_identical_rankings_is_that_ranking() {
        let items = [1u64, 2, 3, 4];
        let r = FullRanking::new(vec![3, 1, 4, 2]).unwrap();
        let prefs = PreferenceMatrix::from_rankings(&items, &[(r.clone(), 1.0)]);
        let (best, cost) = kemeny_optimal(&items, &prefs).unwrap();
        assert_eq!(best, r);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn kemeny_majority_order_wins() {
        let items = [1u64, 2, 3];
        let rankings = [
            (FullRanking::new(vec![1, 2, 3]).unwrap(), 2.0),
            (FullRanking::new(vec![2, 1, 3]).unwrap(), 1.0),
        ];
        let prefs = PreferenceMatrix::from_rankings(&items, &rankings);
        let (best, cost) = kemeny_optimal(&items, &prefs).unwrap();
        assert_eq!(best.items(), &[1, 2, 3]);
        // Only the minority voter's (2 ≻ 1) preference is violated; the
        // preference matrix normalises weights, so the cost is 1/3.
        assert!((cost - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kemeny_topk_prefers_frequent_members() {
        let refs = vec![
            (TopKList::new(vec![1, 2]).unwrap(), 0.6),
            (TopKList::new(vec![2, 3]).unwrap(), 0.4),
        ];
        let (best, _) = kemeny_optimal_topk(&[1, 2, 3, 4], 2, &refs);
        // Item 2 appears in both reference lists, item 1 in the heavier one.
        assert!(best.contains(2));
        assert!(best.contains(1));
    }

    #[test]
    fn kemeny_topk_zero_cost_when_all_references_identical() {
        let r = TopKList::new(vec![5, 6, 7]).unwrap();
        let refs = vec![(r.clone(), 1.0)];
        let (best, cost) = kemeny_optimal_topk(&[5, 6, 7, 8, 9], 3, &refs);
        assert_eq!(best, r);
        assert_eq!(cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "limited to 10 items")]
    fn kemeny_rejects_large_instances() {
        let items: Vec<u64> = (0..11).collect();
        let prefs = PreferenceMatrix::new(&items);
        let _ = kemeny_optimal(&items, &prefs);
    }

    #[test]
    fn empty_item_set_is_a_typed_error() {
        let prefs = PreferenceMatrix::new(&[]);
        assert_eq!(kemeny_optimal(&[], &prefs).unwrap_err(), RankError::Empty);
    }

    #[test]
    fn topk_with_empty_items_yields_the_empty_list() {
        let (best, cost) = kemeny_optimal_topk(&[], 2, &[]);
        assert_eq!(best.len(), 0);
        assert_eq!(cost, 0.0);
    }
}
