//! Borda-count aggregation.
//!
//! The Borda count is the oldest positional rank-aggregation rule (Borda,
//! 1781): every ranking awards each item a score equal to the number of items
//! ranked below it, and items are ordered by total (weighted) score. It is a
//! cheap baseline — a 5-approximation for Kemeny aggregation in the worst
//! case but often much better in practice — used in the experiments as a
//! comparison point for the consensus Top-k answers.

use crate::lists::{FullRanking, RankError, TopKList};
use std::collections::HashMap;

/// Aggregates weighted full rankings by Borda count. Items missing from a
/// ranking contribute no score for that ranking. Ties are broken by item id
/// so the result is deterministic. Returns [`RankError::Empty`] when `items`
/// is empty (a full ranking cannot be empty).
pub fn borda_aggregate(
    items: &[u64],
    rankings: &[(FullRanking, f64)],
) -> Result<FullRanking, RankError> {
    let mut scores: HashMap<u64, f64> = items.iter().map(|&i| (i, 0.0)).collect();
    for (r, w) in rankings {
        let n = r.len();
        for (pos, &item) in r.items().iter().enumerate() {
            if let Some(s) = scores.get_mut(&item) {
                *s += w * (n - 1 - pos) as f64;
            }
        }
    }
    let mut ordered: Vec<(u64, f64)> = scores.into_iter().collect();
    ordered.sort_by(|(ia, sa), (ib, sb)| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ia.cmp(ib))
    });
    FullRanking::new(ordered.into_iter().map(|(i, _)| i).collect())
}

/// Aggregates weighted Top-k lists by Borda count (items outside a list get
/// score 0 from that list) and returns the best `k` items as a Top-k list.
pub fn borda_aggregate_topk(items: &[u64], lists: &[(TopKList, f64)], k: usize) -> TopKList {
    let mut scores: HashMap<u64, f64> = items.iter().map(|&i| (i, 0.0)).collect();
    for (l, w) in lists {
        let n = l.len();
        for (pos, &item) in l.items().iter().enumerate() {
            if let Some(s) = scores.get_mut(&item) {
                *s += w * (n - pos) as f64;
            }
        }
    }
    let mut ordered: Vec<(u64, f64)> = scores.into_iter().collect();
    ordered.sort_by(|(ia, sa), (ib, sb)| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ia.cmp(ib))
    });
    TopKList::new(ordered.into_iter().take(k).map(|(i, _)| i).collect())
        .expect("items are distinct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_rankings_are_reproduced() {
        let items = [1u64, 2, 3];
        let r = FullRanking::new(vec![2, 3, 1]).unwrap();
        let agg = borda_aggregate(&items, &[(r.clone(), 1.0)]).unwrap();
        assert_eq!(agg, r);
    }

    #[test]
    fn weights_shift_the_winner() {
        let items = [1u64, 2];
        let rankings = [
            (FullRanking::new(vec![1, 2]).unwrap(), 1.0),
            (FullRanking::new(vec![2, 1]).unwrap(), 3.0),
        ];
        let agg = borda_aggregate(&items, &rankings).unwrap();
        assert_eq!(agg.items()[0], 2);
    }

    #[test]
    fn topk_borda_selects_frequent_items() {
        let items = [1u64, 2, 3, 4];
        let lists = [
            (TopKList::new(vec![1, 2]).unwrap(), 1.0),
            (TopKList::new(vec![2, 3]).unwrap(), 1.0),
            (TopKList::new(vec![2, 4]).unwrap(), 1.0),
        ];
        let agg = borda_aggregate_topk(&items, &lists, 2);
        assert_eq!(agg.item_at(1), Some(2));
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn missing_items_keep_zero_score_and_sort_last() {
        let items = [1u64, 2, 3];
        let lists = [(TopKList::new(vec![2]).unwrap(), 1.0)];
        let agg = borda_aggregate_topk(&items, &lists, 3);
        assert_eq!(agg.item_at(1), Some(2));
        // Remaining items tie at zero and are ordered by id.
        assert_eq!(agg.items()[1..], [1, 3]);
    }

    #[test]
    fn empty_item_set_is_a_typed_error() {
        let r = FullRanking::new(vec![1]).unwrap();
        assert_eq!(
            borda_aggregate(&[], &[(r, 1.0)]).unwrap_err(),
            crate::lists::RankError::Empty
        );
        assert_eq!(
            borda_aggregate(&[], &[]).unwrap_err(),
            crate::lists::RankError::Empty
        );
    }

    #[test]
    fn empty_topk_inputs_yield_empty_lists() {
        assert_eq!(borda_aggregate_topk(&[], &[], 3).len(), 0);
        assert_eq!(borda_aggregate_topk(&[1, 2], &[], 0).len(), 0);
    }
}
