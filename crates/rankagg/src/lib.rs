//! # cpdb-rankagg — rank-aggregation machinery
//!
//! The paper frames consensus Top-k answers as an instance of the classic
//! *rank aggregation* problem: combine many (here: probability-weighted)
//! rankings into a single representative ranking. This crate provides the
//! deterministic rank-aggregation substrate that the consensus algorithms
//! build on:
//!
//! * [`lists`] — full rankings and Top-k lists over item identifiers;
//! * [`metrics`] — the Top-k distance measures of Fagin, Kumar & Sivakumar
//!   (*Comparing top k lists*, SIAM J. Discrete Math 2003) used by the paper:
//!   normalised symmetric difference, the intersection metric, Spearman's
//!   footrule with location parameter, and Kendall's tau for Top-k lists;
//! * [`kemeny`] — exact (brute-force) Kemeny-optimal aggregation, the
//!   ground-truth oracle for small instances;
//! * [`footrule`] — optimal footrule aggregation in polynomial time via the
//!   Hungarian algorithm (Dwork et al., WWW 2001);
//! * [`borda`] — Borda-count aggregation, a cheap baseline;
//! * [`pivot`] — KwikSort/pivot aggregation over a pairwise-preference
//!   tournament (Ailon, Charikar & Newman, JACM 2008), the building block
//!   the paper invokes for Kendall-tau consensus answers and consensus
//!   clustering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod borda;
pub mod footrule;
pub mod kemeny;
pub mod lists;
pub mod metrics;
pub mod pivot;

pub use lists::{FullRanking, RankError, TopKList};
pub use metrics::{
    footrule_distance, intersection_metric, kendall_tau_topk, symmetric_difference_topk,
};
pub use pivot::PreferenceMatrix;
