//! Optimal footrule aggregation via bipartite assignment.
//!
//! Dwork, Kumar, Naor & Sivakumar (WWW 2001) observed that the ranking
//! minimising the total Spearman footrule distance to a set of input rankings
//! can be found in polynomial time: place item `t` at position `p` with cost
//! `Σ_i w_i · |σ_i(t) − p|` and solve the resulting assignment problem. Since
//! the footrule is within a factor 2 of the Kendall distance, the optimal
//! footrule aggregation is a 2-approximation of the Kemeny aggregation.
//!
//! The same construction, with positions restricted to `1..k` and missing
//! items charged at the location parameter `ℓ = k + 1`, gives footrule
//! aggregation for Top-k lists — the deterministic skeleton that the paper's
//! §5.4 consensus answer instantiates with probabilities from the and/xor
//! tree.

use crate::lists::{FullRanking, RankError, TopKList};
use cpdb_assignment::min_cost_assignment;

/// Optimal footrule aggregation of weighted full rankings over `items`.
/// Returns [`RankError::Empty`] when `items` is empty and
/// [`RankError::MissingItem`] when an input ranking does not rank one of the
/// `items`.
pub fn footrule_aggregate(
    items: &[u64],
    rankings: &[(FullRanking, f64)],
) -> Result<FullRanking, RankError> {
    if items.is_empty() {
        return Err(RankError::Empty);
    }
    for (r, _) in rankings {
        for &item in items {
            if r.position_of(item).is_none() {
                return Err(RankError::MissingItem { item });
            }
        }
    }
    let n = items.len();
    // cost[i][p] = Σ_r w_r |σ_r(item_i) - (p+1)|
    let cost: Vec<Vec<f64>> = items
        .iter()
        .map(|&item| {
            (0..n)
                .map(|p| {
                    rankings
                        .iter()
                        .map(|(r, w)| {
                            let pos = r
                                .position_of(item)
                                .expect("full rankings must rank every item")
                                as f64;
                            w * (pos - (p + 1) as f64).abs()
                        })
                        .sum()
                })
                .collect()
        })
        .collect();
    let assignment = min_cost_assignment(&cost);
    let mut slots: Vec<u64> = vec![0; n];
    for (i, col) in assignment.row_to_col.iter().enumerate() {
        slots[col.expect("square assignment matches every row")] = items[i];
    }
    FullRanking::new(slots)
}

/// Optimal footrule aggregation of weighted Top-k lists: chooses `k` of the
/// `items` and an order for them minimising the total weighted footrule
/// distance (with location parameter `k + 1`) to the reference lists.
///
/// The cost of placing item `t` at position `p ≤ k` is
/// `Σ_i w_i · |pos_i(t) − p|` where `pos_i(t) = k + 1` when `t ∉ τ_i`; the
/// cost of *not* selecting `t` is `Σ_i w_i · |pos_i(t) − (k+1)|`, which is
/// constant per item and handled by subtracting it from the placement costs
/// (so leaving an item out is the zero-cost default).
pub fn footrule_aggregate_topk(items: &[u64], lists: &[(TopKList, f64)], k: usize) -> TopKList {
    if k == 0 || items.is_empty() {
        return TopKList::empty();
    }
    let k = k.min(items.len());
    let ell = (k + 1) as f64;
    // Placement cost relative to the "left out" baseline.
    let cost: Vec<Vec<f64>> = items
        .iter()
        .map(|&item| {
            let leave_out: f64 = lists
                .iter()
                .map(|(l, w)| {
                    let pos = l.position_of(item).map(|p| p as f64).unwrap_or(ell);
                    w * (pos - ell).abs()
                })
                .sum();
            (0..k)
                .map(|p| {
                    let place: f64 = lists
                        .iter()
                        .map(|(l, w)| {
                            let pos = l.position_of(item).map(|p| p as f64).unwrap_or(ell);
                            w * (pos - (p + 1) as f64).abs()
                        })
                        .sum();
                    place - leave_out
                })
                .collect()
        })
        .collect();
    let assignment = min_cost_assignment(&cost);
    let mut slots: Vec<Option<u64>> = vec![None; k];
    for (i, col) in assignment.row_to_col.iter().enumerate() {
        if let Some(c) = col {
            slots[*c] = Some(items[i]);
        }
    }
    TopKList::new(slots.into_iter().flatten().collect()).expect("distinct by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::footrule_distance;

    #[test]
    fn unanimous_input_is_reproduced() {
        let items = [1u64, 2, 3, 4];
        let r = FullRanking::new(vec![4, 2, 1, 3]).unwrap();
        let agg = footrule_aggregate(&items, &[(r.clone(), 1.0)]).unwrap();
        assert_eq!(agg, r);
    }

    #[test]
    fn aggregation_minimises_total_footrule() {
        let items = [1u64, 2, 3];
        let rankings = [
            (FullRanking::new(vec![1, 2, 3]).unwrap(), 1.0),
            (FullRanking::new(vec![2, 1, 3]).unwrap(), 1.0),
            (FullRanking::new(vec![1, 3, 2]).unwrap(), 1.0),
        ];
        let agg = footrule_aggregate(&items, &rankings).unwrap();
        let total = |candidate: &FullRanking| -> f64 {
            rankings
                .iter()
                .map(|(r, w)| w * candidate.footrule_distance(r) as f64)
                .sum()
        };
        // Exhaustively verify optimality over all 6 permutations.
        let perms: [Vec<u64>; 6] = [
            vec![1, 2, 3],
            vec![1, 3, 2],
            vec![2, 1, 3],
            vec![2, 3, 1],
            vec![3, 1, 2],
            vec![3, 2, 1],
        ];
        let best = perms
            .iter()
            .map(|p| total(&FullRanking::new(p.clone()).unwrap()))
            .fold(f64::INFINITY, f64::min);
        assert!((total(&agg) - best).abs() < 1e-9);
    }

    #[test]
    fn topk_aggregation_unanimous() {
        let items = [1u64, 2, 3, 4, 5];
        let l = TopKList::new(vec![3, 1, 4]).unwrap();
        let agg = footrule_aggregate_topk(&items, &[(l.clone(), 1.0)], 3);
        assert_eq!(agg, l);
    }

    #[test]
    fn topk_aggregation_is_optimal_on_small_instance() {
        let items = [1u64, 2, 3, 4];
        let lists = [
            (TopKList::new(vec![1, 2]).unwrap(), 0.5),
            (TopKList::new(vec![2, 3]).unwrap(), 0.3),
            (TopKList::new(vec![4, 2]).unwrap(), 0.2),
        ];
        let agg = footrule_aggregate_topk(&items, &lists, 2);
        let total = |candidate: &TopKList| -> f64 {
            lists
                .iter()
                .map(|(l, w)| w * footrule_distance(candidate, l))
                .sum()
        };
        // Enumerate all ordered pairs of distinct items.
        let mut best = f64::INFINITY;
        for &a in &items {
            for &b in &items {
                if a == b {
                    continue;
                }
                let cand = TopKList::new(vec![a, b]).unwrap();
                best = best.min(total(&cand));
            }
        }
        assert!(
            (total(&agg) - best).abs() < 1e-9,
            "aggregated {} vs best {best}",
            total(&agg)
        );
    }

    #[test]
    fn topk_k_zero_returns_empty() {
        let items = [1u64, 2];
        let lists = [(TopKList::new(vec![1]).unwrap(), 1.0)];
        assert!(footrule_aggregate_topk(&items, &lists, 0).is_empty());
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        use crate::lists::RankError;
        let r = FullRanking::new(vec![1, 2]).unwrap();
        assert_eq!(
            footrule_aggregate(&[], &[(r.clone(), 1.0)]).unwrap_err(),
            RankError::Empty
        );
        // Item 3 is not ranked by the input ranking.
        assert_eq!(
            footrule_aggregate(&[1, 2, 3], &[(r, 1.0)]).unwrap_err(),
            RankError::MissingItem { item: 3 }
        );
    }

    #[test]
    fn empty_topk_inputs_yield_empty_lists() {
        assert_eq!(footrule_aggregate_topk(&[], &[], 2).len(), 0);
        assert_eq!(footrule_aggregate_topk(&[1, 2], &[], 0).len(), 0);
    }
}
