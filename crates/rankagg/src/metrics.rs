//! Distance measures between Top-k lists (Fagin, Kumar & Sivakumar 2003).
//!
//! These are the metrics §5.1 of the paper builds on:
//!
//! * [`symmetric_difference_topk`] — `d_Δ(τ₁, τ₂) = |τ₁ Δ τ₂| / (2k)`,
//!   membership only;
//! * [`intersection_metric`] — `d_I(τ₁, τ₂) = (1/k) Σ_{i=1}^k d_Δ(τ₁^i, τ₂^i)`,
//!   membership at every prefix depth;
//! * [`footrule_distance`] — Spearman's footrule with location parameter
//!   `ℓ = k + 1`: missing items are placed at position `k+1`;
//! * [`kendall_tau_topk`] — Kendall's tau with the optimistic (`K^(0)`)
//!   treatment of pairs that never co-occur.

use crate::lists::TopKList;

/// Normalised symmetric-difference distance between two Top-k lists:
/// `|τ₁ Δ τ₂| / (2k)` with `k = max(|τ₁|, |τ₂|)`. Ranges over `[0, 1]`;
/// `0` for identical membership, `1` for disjoint lists of equal length.
/// Returns 0 when both lists are empty.
pub fn symmetric_difference_topk(a: &TopKList, b: &TopKList) -> f64 {
    let k = a.len().max(b.len());
    if k == 0 {
        return 0.0;
    }
    let overlap = a.overlap(b);
    let sym_diff = (a.len() - overlap) + (b.len() - overlap);
    sym_diff as f64 / (2.0 * k as f64)
}

/// The intersection metric: the average, over prefix depths `i = 1..k`, of
/// the normalised symmetric difference of the two `i`-prefixes.
pub fn intersection_metric(a: &TopKList, b: &TopKList) -> f64 {
    let k = a.len().max(b.len());
    if k == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 1..=k {
        total += symmetric_difference_topk(&a.prefix(i), &b.prefix(i));
    }
    total / k as f64
}

/// Spearman's footrule with location parameter `ℓ = k + 1` (denoted `F^(k+1)`
/// or `dF` in the paper): every item missing from a list is treated as if it
/// were at position `k + 1`, then the usual footrule (L1 distance between
/// position vectors) is computed over the union of the two lists.
pub fn footrule_distance(a: &TopKList, b: &TopKList) -> f64 {
    let k = a.len().max(b.len());
    let ell = (k + 1) as f64;
    let mut items: Vec<u64> = a.items().to_vec();
    for &it in b.items() {
        if !a.contains(it) {
            items.push(it);
        }
    }
    let mut total = 0.0;
    for it in items {
        let pa = a.position_of(it).map(|p| p as f64).unwrap_or(ell);
        let pb = b.position_of(it).map(|p| p as f64).unwrap_or(ell);
        total += (pa - pb).abs();
    }
    total
}

/// Kendall's tau distance between Top-k lists with the optimistic handling of
/// pairs absent from one of the lists (the `K^(0)` variant of Fagin et al.):
///
/// * both items in both lists → 1 if their relative order differs;
/// * both items in list 1, only one in list 2 (say `i`) → 1 if list 1 ranks
///   `j` ahead of `i` (list 2 implicitly ranks `i` ahead of `j`);
/// * `i` only in list 1 and `j` only in list 2 → always 1 (each list
///   implicitly ranks its own member ahead);
/// * both items in only one of the lists → 0.
pub fn kendall_tau_topk(a: &TopKList, b: &TopKList) -> f64 {
    let mut items: Vec<u64> = a.items().to_vec();
    for &it in b.items() {
        if !a.contains(it) {
            items.push(it);
        }
    }
    let pa = a.position_map();
    let pb = b.position_map();
    let mut total = 0.0;
    for x in 0..items.len() {
        for y in (x + 1)..items.len() {
            let (i, j) = (items[x], items[y]);
            match (pa.get(&i), pa.get(&j), pb.get(&i), pb.get(&j)) {
                (Some(ai), Some(aj), Some(bi), Some(bj))
                    if (ai < aj) != (bi < bj) => {
                        total += 1.0;
                    }
                // i, j both in a; only one of them in b.
                (Some(ai), Some(aj), Some(_), None)
                    // b ranks i ahead of j; disagreement iff a ranks j ahead.
                    if aj < ai => {
                        total += 1.0;
                    }
                (Some(ai), Some(aj), None, Some(_))
                    if ai < aj => {
                        total += 1.0;
                    }
                // i, j both in b; only one of them in a.
                (Some(_), None, Some(bi), Some(bj))
                    if bj < bi => {
                        total += 1.0;
                    }
                (None, Some(_), Some(bi), Some(bj))
                    if bi < bj => {
                        total += 1.0;
                    }
                // i appears only in one list and j only in the other.
                (Some(_), None, None, Some(_)) | (None, Some(_), Some(_), None) => {
                    total += 1.0;
                }
                // Both items confined to the same single list (or absent):
                // optimistic variant counts 0.
                _ => {}
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[u64]) -> TopKList {
        TopKList::new(items.to_vec()).unwrap()
    }

    #[test]
    fn empty_lists_yield_zero_distance_without_panicking() {
        let e = TopKList::empty();
        let a = list(&[1, 2]);
        assert_eq!(symmetric_difference_topk(&e, &e), 0.0);
        assert_eq!(intersection_metric(&e, &e), 0.0);
        assert_eq!(footrule_distance(&e, &e), 0.0);
        assert_eq!(kendall_tau_topk(&e, &e), 0.0);
        // One-sided emptiness is maximal membership disagreement, not a panic.
        assert_eq!(symmetric_difference_topk(&e, &a), 0.5);
        assert_eq!(footrule_distance(&e, &a), 3.0);
    }

    #[test]
    fn symmetric_difference_extremes() {
        let a = list(&[1, 2, 3]);
        assert_eq!(symmetric_difference_topk(&a, &a), 0.0);
        let b = list(&[4, 5, 6]);
        assert_eq!(symmetric_difference_topk(&a, &b), 1.0);
        assert_eq!(
            symmetric_difference_topk(&TopKList::empty(), &TopKList::empty()),
            0.0
        );
    }

    #[test]
    fn symmetric_difference_partial_overlap() {
        let a = list(&[1, 2, 3, 4]);
        let b = list(&[3, 4, 5, 6]);
        // |Δ| = 4, 2k = 8.
        assert!((symmetric_difference_topk(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intersection_metric_penalises_early_disagreement() {
        // Same membership, different order: d_Δ = 0 but d_I > 0.
        let a = list(&[1, 2, 3]);
        let b = list(&[3, 2, 1]);
        assert_eq!(symmetric_difference_topk(&a, &b), 0.0);
        let di = intersection_metric(&a, &b);
        // Prefix 1: {1} vs {3} → 1; prefix 2: {1,2} vs {3,2} → 1/2; prefix 3: 0.
        assert!((di - (1.0 + 0.5 + 0.0) / 3.0).abs() < 1e-12);
        // Disagreement at the top is worse than at the bottom.
        let c = list(&[1, 3, 2]);
        assert!(intersection_metric(&a, &c) < di);
    }

    #[test]
    fn intersection_metric_bounds() {
        let a = list(&[1, 2]);
        let b = list(&[3, 4]);
        assert_eq!(intersection_metric(&a, &b), 1.0);
        assert_eq!(intersection_metric(&a, &a), 0.0);
    }

    #[test]
    fn footrule_identical_and_disjoint() {
        let a = list(&[1, 2, 3]);
        assert_eq!(footrule_distance(&a, &a), 0.0);
        let b = list(&[4, 5, 6]);
        // Every item of a is at (1,2,3) vs ℓ=4: 3+2+1 = 6; same for b: total 12.
        assert_eq!(footrule_distance(&a, &b), 12.0);
    }

    #[test]
    fn footrule_matches_paper_formula() {
        // dF(τ1,τ2) = (k+1)|τ1Δτ2| + Σ_{t∈both}|τ1(t)-τ2(t)|
        //             - Σ_{t∈τ1\τ2} τ1(t) - Σ_{t∈τ2\τ1} τ2(t).
        let t1 = list(&[1, 2, 3, 4]);
        let t2 = list(&[2, 5, 4, 6]);
        let k = 4.0;
        let sym: f64 = 4.0; // {1,3} ∪ {5,6}
        let common: f64 = (t1.position_of(2).unwrap() as f64 - t2.position_of(2).unwrap() as f64)
            .abs()
            + (t1.position_of(4).unwrap() as f64 - t2.position_of(4).unwrap() as f64).abs();
        let only1: f64 = (t1.position_of(1).unwrap() + t1.position_of(3).unwrap()) as f64;
        let only2: f64 = (t2.position_of(5).unwrap() + t2.position_of(6).unwrap()) as f64;
        let formula = (k + 1.0) * sym + common - only1 - only2;
        assert!((footrule_distance(&t1, &t2) - formula).abs() < 1e-12);
    }

    #[test]
    fn kendall_topk_basic_cases() {
        let a = list(&[1, 2, 3]);
        assert_eq!(kendall_tau_topk(&a, &a), 0.0);
        let b = list(&[2, 1, 3]);
        assert_eq!(kendall_tau_topk(&a, &b), 1.0);
        // Completely disjoint lists: every cross pair disagrees → k² pairs.
        let c = list(&[4, 5, 6]);
        assert_eq!(kendall_tau_topk(&a, &c), 9.0);
    }

    #[test]
    fn kendall_case2_only_one_in_second_list() {
        // a = [1, 2], b = [2, 3]:
        //  pair (1,2): both in a, only 2 in b → a ranks 1 ahead, b ranks 2 ahead → 1
        //  pair (1,3): 1 only in a, 3 only in b → 1
        //  pair (2,3): both in b, only 2 in a → b ranks 2 ahead, a ranks 2 ahead → 0
        let a = list(&[1, 2]);
        let b = list(&[2, 3]);
        assert_eq!(kendall_tau_topk(&a, &b), 2.0);
    }

    #[test]
    fn footrule_and_kendall_equivalence_class() {
        // Fagin et al.: dK ≤ dF ≤ 2·dK for Top-k lists (both with the same k).
        let lists = [
            list(&[1, 2, 3]),
            list(&[3, 2, 1]),
            list(&[4, 2, 9]),
            list(&[7, 8, 9]),
            list(&[1, 9, 4]),
        ];
        for a in &lists {
            for b in &lists {
                let f = footrule_distance(a, b);
                let k = kendall_tau_topk(a, b);
                assert!(k <= f + 1e-9, "K={k} F={f}");
                assert!(f <= 2.0 * k + 1e-9, "K={k} F={f}");
            }
        }
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = list(&[1, 2, 3, 4]);
        let b = list(&[2, 6, 1, 7]);
        assert_eq!(
            symmetric_difference_topk(&a, &b),
            symmetric_difference_topk(&b, &a)
        );
        assert_eq!(intersection_metric(&a, &b), intersection_metric(&b, &a));
        assert_eq!(footrule_distance(&a, &b), footrule_distance(&b, &a));
        assert_eq!(kendall_tau_topk(&a, &b), kendall_tau_topk(&b, &a));
    }

    #[test]
    fn triangle_inequality_for_footrule() {
        let xs = [
            list(&[1, 2, 3]),
            list(&[2, 3, 4]),
            list(&[5, 1, 2]),
            list(&[3, 2, 1]),
        ];
        for a in &xs {
            for b in &xs {
                for c in &xs {
                    assert!(
                        footrule_distance(a, c)
                            <= footrule_distance(a, b) + footrule_distance(b, c) + 1e-9
                    );
                }
            }
        }
    }
}
