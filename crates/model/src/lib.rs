//! # cpdb-model — probabilistic relation models and possible-world semantics
//!
//! This crate implements the data-model substrate of Li & Deshpande's
//! *Consensus Answers for Queries over Probabilistic Databases* (PODS 2009,
//! §3.1): probabilistic relations `R^P(K; A)` with both tuple-level and
//! attribute-level uncertainty, their **possible-world semantics**, and the
//! standard representation systems the paper generalises:
//!
//! * [`TupleIndependentDb`] — every tuple present independently with its own
//!   probability (the model of Dalvi–Suciu safe plans);
//! * [`BidDb`] — the block-independent-disjoint scheme `R(K; A; Pr)`: the
//!   alternatives of one key are mutually exclusive, different keys are
//!   independent;
//! * [`XTupleDb`] — x-tuples/p-or-sets: mutually exclusive alternative sets,
//!   a thin layer over the BID semantics;
//! * explicit [`WorldSet`]s — an enumerated probability distribution over
//!   deterministic worlds, the ground-truth representation used by the
//!   brute-force oracles throughout this repository.
//!
//! It also contains a small select–project–join evaluator ([`spj`]) and the
//! MAX-2-SAT hardness gadget of §4.1 ([`hardness`]), which shows that finding
//! a *median* world is NP-hard under arbitrary correlations even when result
//! tuple probabilities are easy to compute.
//!
//! The richer **probabilistic and/xor tree** model lives in the companion
//! crate `cpdb-andxor`; conversions from each model here into and/xor trees
//! are provided there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bid;
pub mod error;
pub mod hardness;
pub mod spj;
pub mod tuple;
pub mod tuple_independent;
pub mod world;
pub mod xtuple;

pub use bid::{BidBlock, BidDb};
pub use error::ModelError;
pub use tuple::{Alternative, AttrValue, TupleKey};
pub use tuple_independent::TupleIndependentDb;
pub use world::{PossibleWorld, WorldModel, WorldSet};
pub use xtuple::{XTuple, XTupleDb};
