//! Tuples, keys, attribute values, and tuple alternatives.
//!
//! A probabilistic relation `R^P(K; A)` has a certain *possible-worlds key*
//! `K` and an uncertain value attribute `A`. A **tuple alternative** is one
//! concrete `(key, value)` pair that may appear in some possible worlds; the
//! alternatives sharing a key are the possible values of one probabilistic
//! tuple and are mutually exclusive within any single world.

use std::cmp::Ordering;
use std::fmt;

/// The possible-worlds key of a probabilistic tuple.
///
/// Keys are opaque 64-bit identifiers; two alternatives with the same key can
/// never co-exist in a possible world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleKey(pub u64);

impl fmt::Display for TupleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The (uncertain) value attribute of a tuple alternative.
///
/// The paper uses a single value attribute that doubles as the ranking score
/// for Top-k queries and as the categorical attribute for group-by and
/// clustering queries. We store it as an `f64` with a total order
/// (`f64::total_cmp`), which covers both uses: scores compare numerically and
/// categorical values compare by exact equality (the workload generators only
/// produce integral categorical values, so float equality is exact).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrValue(pub f64);

impl AttrValue {
    /// The numeric value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Eq for AttrValue {}

impl PartialOrd for AttrValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for AttrValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tuple alternative: one `(key, value)` pair that may appear in possible
/// worlds.
///
/// Alternatives are ordered by `(key, value)` so that possible worlds have a
/// canonical sorted representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Alternative {
    /// The possible-worlds key this alternative belongs to.
    pub key: TupleKey,
    /// The value taken by the tuple in worlds containing this alternative.
    pub value: AttrValue,
}

impl Alternative {
    /// Convenience constructor from raw parts.
    pub fn new(key: u64, value: f64) -> Self {
        Alternative {
            key: TupleKey(key),
            value: AttrValue(value),
        }
    }

    /// The ranking score of this alternative (the value attribute interpreted
    /// numerically).
    #[inline]
    pub fn score(&self) -> f64 {
        self.value.0
    }
}

impl fmt::Display for Alternative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.key, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_order_and_display() {
        assert!(TupleKey(1) < TupleKey(2));
        assert_eq!(format!("{}", TupleKey(3)), "t3");
    }

    #[test]
    fn attr_values_totally_ordered() {
        assert!(AttrValue(1.0) < AttrValue(2.0));
        assert!(AttrValue(-1.0) < AttrValue(0.0));
        assert_eq!(AttrValue(5.0), AttrValue(5.0));
    }

    #[test]
    fn attr_value_hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(AttrValue(2.5));
        assert!(s.contains(&AttrValue(2.5)));
        assert!(!s.contains(&AttrValue(2.6)));
    }

    #[test]
    fn alternatives_sort_by_key_then_value() {
        let a = Alternative::new(1, 9.0);
        let b = Alternative::new(2, 1.0);
        let c = Alternative::new(1, 1.0);
        let mut v = vec![a, b, c];
        v.sort();
        assert_eq!(v, vec![c, a, b]);
    }

    #[test]
    fn alternative_display_and_score() {
        let a = Alternative::new(4, 7.5);
        assert_eq!(format!("{a}"), "(t4, 7.5)");
        assert_eq!(a.score(), 7.5);
    }
}
