//! A small select–project–join evaluator over deterministic relations, and
//! its extensional lift to probabilistic databases.
//!
//! Consensus answers are defined over the distribution of *query answers*
//! across possible worlds, not over the database itself. This module provides
//! the machinery to produce that distribution for SPJ queries: deterministic
//! relational operators ([`Relation::select`], [`Relation::project`],
//! [`Relation::equi_join`]) plus [`AnswerDistribution`], which maps every
//! possible world through a query and aggregates identical answers.
//!
//! The evaluator is deliberately simple (set semantics, nested-loop joins,
//! integer-valued columns): it exists to support the paper's §4.1 hardness
//! gadget and SPJ-style examples, not to compete with a real query engine.

use crate::world::{PossibleWorld, WorldSet};
use std::collections::BTreeMap;
use std::fmt;

/// A row of integer attribute values.
pub type Row = Vec<i64>;

/// A deterministic relation with set semantics over integer-valued columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Row>,
}

impl Relation {
    /// Builds a relation from rows, enforcing a uniform arity and removing
    /// duplicates (set semantics).
    pub fn new(arity: usize, mut rows: Vec<Row>) -> Self {
        rows.retain(|r| r.len() == arity);
        rows.sort();
        rows.dedup();
        Relation { arity, rows }
    }

    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::new(),
        }
    }

    /// The relation's rows in sorted order.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether the given row is present.
    pub fn contains(&self, row: &[i64]) -> bool {
        self.rows
            .binary_search_by(|r| r.as_slice().cmp(row))
            .is_ok()
    }

    /// Selection: keeps the rows satisfying `pred`.
    pub fn select<F>(&self, mut pred: F) -> Relation
    where
        F: FnMut(&[i64]) -> bool,
    {
        Relation::new(
            self.arity,
            self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        )
    }

    /// Projection onto the given column indices (duplicates removed).
    pub fn project(&self, columns: &[usize]) -> Relation {
        let rows = self
            .rows
            .iter()
            .map(|r| columns.iter().map(|&c| r[c]).collect())
            .collect();
        Relation::new(columns.len(), rows)
    }

    /// Equi-join: pairs of `(left column, right column)` that must be equal.
    /// The output schema is the left columns followed by the right columns.
    pub fn equi_join(&self, other: &Relation, on: &[(usize, usize)]) -> Relation {
        let mut rows = Vec::new();
        for l in &self.rows {
            for r in &other.rows {
                if on.iter().all(|&(lc, rc)| l[lc] == r[rc]) {
                    let mut row = l.clone();
                    row.extend_from_slice(r);
                    rows.push(row);
                }
            }
        }
        Relation::new(self.arity + other.arity, rows)
    }

    /// Union of two relations of the same arity.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut rows = self.rows.clone();
        rows.extend_from_slice(&other.rows);
        Relation::new(self.arity, rows)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "({} columns, {} rows)", self.arity, self.rows.len())?;
        for r in &self.rows {
            writeln!(f, "  {r:?}")?;
        }
        Ok(())
    }
}

/// Converts a possible world of a probabilistic relation `R^P(K; A)` into a
/// deterministic two-column relation `(key, value)` with values rounded to
/// the nearest integer (the SPJ evaluator is integer-valued; callers that
/// need exact fractional values should scale them first).
pub fn world_to_relation(world: &PossibleWorld) -> Relation {
    Relation::new(
        2,
        world
            .alternatives()
            .iter()
            .map(|a| vec![a.key.0 as i64, a.value.0.round() as i64])
            .collect(),
    )
}

/// The distribution over deterministic query answers induced by a
/// distribution over possible worlds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnswerDistribution {
    answers: Vec<(Relation, f64)>,
}

impl AnswerDistribution {
    /// Evaluates `query` on every world of `worlds` and merges identical
    /// answers, producing the answer distribution.
    pub fn evaluate<F>(worlds: &WorldSet, mut query: F) -> Self
    where
        F: FnMut(&PossibleWorld) -> Relation,
    {
        let mut merged: BTreeMap<Vec<Row>, (Relation, f64)> = BTreeMap::new();
        for (w, p) in worlds.worlds() {
            let ans = query(w);
            let key = ans.rows().to_vec();
            merged
                .entry(key)
                .and_modify(|(_, q)| *q += p)
                .or_insert((ans, *p));
        }
        AnswerDistribution {
            answers: merged.into_values().collect(),
        }
    }

    /// The distinct answers and their probabilities.
    #[inline]
    pub fn answers(&self) -> &[(Relation, f64)] {
        &self.answers
    }

    /// The marginal probability of each result row appearing in the answer —
    /// the standard "union the possible answers and sum probabilities"
    /// representation the paper's introduction describes for SPJ queries.
    pub fn row_marginals(&self) -> Vec<(Row, f64)> {
        let mut marg: BTreeMap<Row, f64> = BTreeMap::new();
        for (rel, p) in &self.answers {
            for row in rel.rows() {
                *marg.entry(row.clone()).or_insert(0.0) += p;
            }
        }
        marg.into_iter().collect()
    }

    /// The most probable single answer (ties broken by row content).
    pub fn most_probable_answer(&self) -> Option<&(Relation, f64)> {
        self.answers.iter().max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.rows().cmp(b.0.rows()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Alternative;
    use crate::tuple_independent::TupleIndependentDb;
    use crate::world::WorldModel;

    #[test]
    fn relation_set_semantics_dedups() {
        let r = Relation::new(2, vec![vec![1, 2], vec![1, 2], vec![3, 4]]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[1, 2]));
        assert!(!r.contains(&[2, 1]));
    }

    #[test]
    fn select_project_join() {
        let r = Relation::new(2, vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
        let s = Relation::new(2, vec![vec![10, 100], vec![30, 300]]);
        let sel = r.select(|row| row[0] >= 2);
        assert_eq!(sel.len(), 2);
        let proj = r.project(&[1]);
        assert_eq!(proj.rows(), &[vec![10], vec![20], vec![30]]);
        let join = r.equi_join(&s, &[(1, 0)]);
        assert_eq!(join.len(), 2);
        assert!(join.contains(&[1, 10, 10, 100]));
        assert!(join.contains(&[3, 30, 30, 300]));
        let both = r.union(&s);
        assert_eq!(both.len(), 5);
    }

    #[test]
    fn arity_mismatch_rows_are_dropped() {
        let r = Relation::new(2, vec![vec![1, 2], vec![1]]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn answer_distribution_over_independent_tuples() {
        // Two independent tuples; query = identity projection of the keys.
        let db = TupleIndependentDb::from_triples(&[(1, 1.0, 0.5), (2, 2.0, 0.8)]).unwrap();
        let ws = db.enumerate_worlds();
        let dist = AnswerDistribution::evaluate(&ws, |w| world_to_relation(w).project(&[0]));
        // Four distinct answers: {}, {1}, {2}, {1,2}.
        assert_eq!(dist.answers().len(), 4);
        let marg = dist.row_marginals();
        let p1 = marg.iter().find(|(r, _)| r == &vec![1]).unwrap().1;
        let p2 = marg.iter().find(|(r, _)| r == &vec![2]).unwrap().1;
        assert!((p1 - 0.5).abs() < 1e-12);
        assert!((p2 - 0.8).abs() < 1e-12);
        let (_, p_best) = dist.most_probable_answer().unwrap();
        assert!((p_best - 0.4).abs() < 1e-12); // {1,2} with 0.5*0.8
    }

    #[test]
    fn world_to_relation_rounds_values() {
        let w =
            PossibleWorld::new(vec![Alternative::new(1, 2.4), Alternative::new(2, 2.6)]).unwrap();
        let r = world_to_relation(&w);
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[2, 3]));
    }
}
