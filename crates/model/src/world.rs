//! Possible worlds and explicit world distributions.
//!
//! A probabilistic database corresponds to a probability space over
//! deterministic relations called *possible worlds*. This module provides the
//! canonical representation of a single world ([`PossibleWorld`]), an explicit
//! enumerated distribution over worlds ([`WorldSet`]) used as ground truth by
//! brute-force oracles, and the [`WorldModel`] trait implemented by every
//! representation system in this repository (tuple-independent, BID, x-tuple,
//! and the and/xor tree in `cpdb-andxor`).

use crate::error::ModelError;
use crate::tuple::{Alternative, TupleKey};
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt;

/// A single deterministic possible world: a set of tuple alternatives in
/// which no key appears twice.
///
/// Worlds are stored as sorted vectors so that equality, hashing, and set
/// operations are canonical and cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PossibleWorld {
    alternatives: Vec<Alternative>,
}

impl PossibleWorld {
    /// The empty world.
    pub fn empty() -> Self {
        PossibleWorld {
            alternatives: Vec::new(),
        }
    }

    /// Builds a world from alternatives, sorting them and checking the key
    /// constraint (no key may appear twice).
    pub fn new(mut alternatives: Vec<Alternative>) -> Result<Self, ModelError> {
        alternatives.sort();
        for pair in alternatives.windows(2) {
            if pair[0].key == pair[1].key {
                return Err(ModelError::DuplicateKey {
                    key: pair[0].key.0,
                    context: "possible world".to_string(),
                });
            }
        }
        Ok(PossibleWorld { alternatives })
    }

    /// Builds a world from alternatives that are already known to satisfy the
    /// key constraint (sorts them; does not re-validate). Intended for model
    /// enumerators that guarantee the constraint by construction.
    pub fn from_trusted(mut alternatives: Vec<Alternative>) -> Self {
        alternatives.sort();
        PossibleWorld { alternatives }
    }

    /// The alternatives of this world in sorted order.
    #[inline]
    pub fn alternatives(&self) -> &[Alternative] {
        &self.alternatives
    }

    /// Number of tuples present.
    #[inline]
    pub fn len(&self) -> usize {
        self.alternatives.len()
    }

    /// True when no tuples are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.alternatives.is_empty()
    }

    /// Whether this exact alternative (key *and* value) is present.
    pub fn contains(&self, alt: &Alternative) -> bool {
        self.alternatives.binary_search(alt).is_ok()
    }

    /// Whether any alternative with this key is present.
    pub fn contains_key(&self, key: TupleKey) -> bool {
        self.alternatives.iter().any(|a| a.key == key)
    }

    /// The value taken by `key` in this world, if present.
    pub fn value_of(&self, key: TupleKey) -> Option<f64> {
        self.alternatives
            .iter()
            .find(|a| a.key == key)
            .map(|a| a.value.0)
    }

    /// Symmetric-difference size `|W₁ Δ W₂|` between two worlds, treating
    /// different alternatives of the same tuple as different elements (as the
    /// paper does in §4.1).
    pub fn symmetric_difference(&self, other: &PossibleWorld) -> usize {
        let a: BTreeSet<_> = self.alternatives.iter().collect();
        let b: BTreeSet<_> = other.alternatives.iter().collect();
        a.symmetric_difference(&b).count()
    }

    /// Size of the intersection `|W₁ ∩ W₂|` over exact alternatives.
    pub fn intersection_size(&self, other: &PossibleWorld) -> usize {
        let a: BTreeSet<_> = self.alternatives.iter().collect();
        let b: BTreeSet<_> = other.alternatives.iter().collect();
        a.intersection(&b).count()
    }

    /// Size of the union `|W₁ ∪ W₂|` over exact alternatives.
    pub fn union_size(&self, other: &PossibleWorld) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Jaccard distance `|W₁ Δ W₂| / |W₁ ∪ W₂|`, defined as 0 when both worlds
    /// are empty.
    pub fn jaccard_distance(&self, other: &PossibleWorld) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            0.0
        } else {
            self.symmetric_difference(other) as f64 / union as f64
        }
    }

    /// The Top-k list of this world: the `k` alternatives with the highest
    /// value attribute (score), best first. Returns fewer than `k` entries
    /// when the world is smaller than `k`. Ties are broken by key so the
    /// result is deterministic.
    pub fn top_k(&self, k: usize) -> Vec<Alternative> {
        let mut sorted = self.alternatives.clone();
        sorted.sort_by(|a, b| b.value.cmp(&a.value).then_with(|| a.key.cmp(&b.key)));
        sorted.truncate(k);
        sorted
    }

    /// The rank (1-based) of `key` in this world under descending score, or
    /// `None` if the key is absent (the paper writes `r_pw(t) = ∞`).
    pub fn rank_of(&self, key: TupleKey) -> Option<usize> {
        let target = self.alternatives.iter().find(|a| a.key == key)?;
        let better = self
            .alternatives
            .iter()
            .filter(|a| a.value > target.value || (a.value == target.value && a.key < target.key))
            .count();
        Some(better + 1)
    }
}

impl fmt::Display for PossibleWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.alternatives.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

/// An explicit, enumerated distribution over possible worlds.
///
/// This is the ground-truth representation: every consensus algorithm in this
/// repository has a brute-force counterpart that minimises expected distance
/// directly over a `WorldSet`. It is only usable for small instances (the
/// number of worlds is generally exponential), which is exactly its role.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorldSet {
    worlds: Vec<(PossibleWorld, f64)>,
}

impl WorldSet {
    /// Builds a world set, validating that probabilities are in `[0,1]` and
    /// sum to 1 (within tolerance).
    pub fn new(worlds: Vec<(PossibleWorld, f64)>) -> Result<Self, ModelError> {
        if worlds.is_empty() {
            return Err(ModelError::Empty {
                context: "world set".to_string(),
            });
        }
        let mut total = 0.0;
        for (_, p) in &worlds {
            crate::error::validate_probability(*p, "world probability")?;
            total += p;
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(ModelError::Invalid {
                context: format!("world probabilities sum to {total}, expected 1"),
            });
        }
        Ok(WorldSet { worlds })
    }

    /// Builds a world set without validating the total mass. Useful for
    /// conditional distributions and intermediate computations.
    pub fn new_unchecked(worlds: Vec<(PossibleWorld, f64)>) -> Self {
        WorldSet { worlds }
    }

    /// The worlds and their probabilities.
    #[inline]
    pub fn worlds(&self) -> &[(PossibleWorld, f64)] {
        &self.worlds
    }

    /// Number of worlds with non-zero probability.
    pub fn support_size(&self) -> usize {
        self.worlds.iter().filter(|(_, p)| *p > 0.0).count()
    }

    /// Number of stored worlds.
    #[inline]
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True when no worlds are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Merges identical worlds, summing their probabilities, and drops
    /// zero-probability worlds. Useful after constructing a world set from a
    /// query's output where many input worlds map to the same answer.
    pub fn normalize(&self) -> WorldSet {
        let mut sorted = self.worlds.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(PossibleWorld, f64)> = Vec::with_capacity(sorted.len());
        for (w, p) in sorted {
            if p == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some((lw, lp)) if *lw == w => *lp += p,
                _ => merged.push((w, p)),
            }
        }
        WorldSet { worlds: merged }
    }

    /// Marginal probability that the exact alternative `alt` appears.
    pub fn marginal(&self, alt: &Alternative) -> f64 {
        self.worlds
            .iter()
            .filter(|(w, _)| w.contains(alt))
            .map(|(_, p)| p)
            .sum()
    }

    /// Marginal probability that any alternative of `key` appears.
    pub fn marginal_key(&self, key: TupleKey) -> f64 {
        self.worlds
            .iter()
            .filter(|(w, _)| w.contains_key(key))
            .map(|(_, p)| p)
            .sum()
    }

    /// Expected value of an arbitrary per-world statistic.
    pub fn expectation<F>(&self, mut f: F) -> f64
    where
        F: FnMut(&PossibleWorld) -> f64,
    {
        self.worlds.iter().map(|(w, p)| p * f(w)).sum()
    }

    /// All distinct alternatives appearing in any world (the set `T` of the
    /// paper), sorted.
    pub fn all_alternatives(&self) -> Vec<Alternative> {
        let mut set: BTreeSet<Alternative> = BTreeSet::new();
        for (w, _) in &self.worlds {
            set.extend(w.alternatives().iter().copied());
        }
        set.into_iter().collect()
    }

    /// All distinct keys appearing in any world, sorted.
    pub fn all_keys(&self) -> Vec<TupleKey> {
        let mut set: BTreeSet<TupleKey> = BTreeSet::new();
        for (w, _) in &self.worlds {
            set.extend(w.alternatives().iter().map(|a| a.key));
        }
        set.into_iter().collect()
    }

    /// Samples a world according to its probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PossibleWorld {
        let total: f64 = self.worlds.iter().map(|(_, p)| *p).sum();
        let mut u: f64 = rng.gen::<f64>() * total;
        for (w, p) in &self.worlds {
            if u < *p {
                return w.clone();
            }
            u -= p;
        }
        self.worlds
            .last()
            .map(|(w, _)| w.clone())
            .unwrap_or_default()
    }
}

/// A representation system for a probabilistic relation: anything that can
/// enumerate or sample its possible worlds.
pub trait WorldModel {
    /// All tuple alternatives that appear in at least one possible world
    /// (the set `T`), sorted.
    fn alternatives(&self) -> Vec<Alternative>;

    /// Exhaustively enumerates the possible worlds with their probabilities.
    /// Exponential in general; intended for ground-truth oracles on small
    /// instances.
    fn enumerate_worlds(&self) -> WorldSet;

    /// Samples one possible world.
    fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> PossibleWorld;

    /// Marginal probability that the exact alternative appears. The default
    /// implementation enumerates; models override it with closed forms.
    fn alternative_probability(&self, alt: &Alternative) -> f64 {
        self.enumerate_worlds().marginal(alt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn alt(k: u64, v: f64) -> Alternative {
        Alternative::new(k, v)
    }

    #[test]
    fn world_rejects_duplicate_keys() {
        let err = PossibleWorld::new(vec![alt(1, 2.0), alt(1, 3.0)]);
        assert!(matches!(err, Err(ModelError::DuplicateKey { key: 1, .. })));
    }

    #[test]
    fn world_set_operations() {
        let w1 = PossibleWorld::new(vec![alt(1, 1.0), alt(2, 2.0), alt(3, 3.0)]).unwrap();
        let w2 = PossibleWorld::new(vec![alt(2, 2.0), alt(3, 9.0), alt(4, 4.0)]).unwrap();
        assert_eq!(w1.intersection_size(&w2), 1); // only (2, 2.0) matches exactly
        assert_eq!(w1.symmetric_difference(&w2), 4);
        assert_eq!(w1.union_size(&w2), 5);
        assert!((w1.jaccard_distance(&w2) - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_worlds_have_zero_jaccard_distance() {
        let e = PossibleWorld::empty();
        assert_eq!(e.jaccard_distance(&PossibleWorld::empty()), 0.0);
    }

    #[test]
    fn top_k_and_rank() {
        let w = PossibleWorld::new(vec![alt(1, 5.0), alt(2, 9.0), alt(3, 7.0)]).unwrap();
        let top2 = w.top_k(2);
        assert_eq!(top2, vec![alt(2, 9.0), alt(3, 7.0)]);
        assert_eq!(w.rank_of(TupleKey(2)), Some(1));
        assert_eq!(w.rank_of(TupleKey(3)), Some(2));
        assert_eq!(w.rank_of(TupleKey(1)), Some(3));
        assert_eq!(w.rank_of(TupleKey(9)), None);
    }

    #[test]
    fn world_set_validation() {
        let w1 = PossibleWorld::new(vec![alt(1, 1.0)]).unwrap();
        let w2 = PossibleWorld::empty();
        assert!(WorldSet::new(vec![(w1.clone(), 0.6), (w2.clone(), 0.4)]).is_ok());
        assert!(WorldSet::new(vec![(w1.clone(), 0.6), (w2.clone(), 0.3)]).is_err());
        assert!(WorldSet::new(vec![(w1, 1.5), (w2, -0.5)]).is_err());
        assert!(WorldSet::new(vec![]).is_err());
    }

    #[test]
    fn world_set_marginals_and_expectation() {
        let w1 = PossibleWorld::new(vec![alt(1, 1.0), alt(2, 2.0)]).unwrap();
        let w2 = PossibleWorld::new(vec![alt(1, 5.0)]).unwrap();
        let ws = WorldSet::new(vec![(w1, 0.7), (w2, 0.3)]).unwrap();
        assert!((ws.marginal(&alt(1, 1.0)) - 0.7).abs() < 1e-12);
        assert!((ws.marginal_key(TupleKey(1)) - 1.0).abs() < 1e-12);
        assert!((ws.marginal_key(TupleKey(2)) - 0.7).abs() < 1e-12);
        let expected_size = ws.expectation(|w| w.len() as f64);
        assert!((expected_size - (0.7 * 2.0 + 0.3)).abs() < 1e-12);
        assert_eq!(ws.all_keys(), vec![TupleKey(1), TupleKey(2)]);
        assert_eq!(ws.all_alternatives().len(), 3);
    }

    #[test]
    fn normalize_merges_duplicate_worlds() {
        let w = PossibleWorld::new(vec![alt(1, 1.0)]).unwrap();
        let ws = WorldSet::new_unchecked(vec![
            (w.clone(), 0.25),
            (PossibleWorld::empty(), 0.5),
            (w.clone(), 0.25),
            (PossibleWorld::empty(), 0.0),
        ]);
        let n = ws.normalize();
        assert_eq!(n.len(), 2);
        assert!((n.marginal_key(TupleKey(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_world_sets_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(7);
        // Sampling an empty unchecked set falls back to the empty world.
        let empty = WorldSet::new_unchecked(vec![]);
        assert!(empty.sample(&mut rng).is_empty());
        assert!(empty.normalize().is_empty());
        assert_eq!(empty.support_size(), 0);
        // All-zero mass: sampling returns the last stored world instead of
        // dividing by the zero total.
        let w = PossibleWorld::new(vec![alt(1, 1.0)]).unwrap();
        let zero = WorldSet::new_unchecked(vec![(w.clone(), 0.0)]);
        assert_eq!(zero.sample(&mut rng), w);
        assert!(zero.normalize().is_empty());
    }

    #[test]
    fn sampling_respects_probabilities() {
        let w1 = PossibleWorld::new(vec![alt(1, 1.0)]).unwrap();
        let w2 = PossibleWorld::empty();
        let ws = WorldSet::new(vec![(w1, 0.8), (w2, 0.2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = 0;
        let n = 20_000;
        for _ in 0..n {
            if !ws.sample(&mut rng).is_empty() {
                hits += 1;
            }
        }
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.02, "frequency {freq}");
    }
}
