//! The MAX-2-SAT hardness gadget of §4.1.
//!
//! The paper shows that finding a *median* world under the symmetric
//! difference distance is NP-hard for arbitrarily correlated probabilistic
//! databases, by reduction from MAX-2-SAT: given clauses over literals
//! `x₁ … x_n`, build a probabilistic relation `S(x, b)` with two mutually
//! exclusive, equiprobable tuples `(x_i, 0)` and `(x_i, 1)` per variable, and
//! a certain relation `R(C, x, b)` with one tuple per (clause, satisfying
//! literal) pair. Every result tuple of `π_C(R ⋈ S)` then has probability
//! 3/4, and the median answer is the possible answer containing the maximum
//! number of clauses — i.e. the assignment maximising the number of satisfied
//! clauses.
//!
//! This module constructs the gadget, evaluates it both ways (via the SPJ
//! evaluator over enumerated worlds, and directly from a boolean assignment),
//! and provides a brute-force MAX-2-SAT solver so that tests and experiments
//! can confirm the reduction behaves exactly as the paper claims.

use crate::bid::{BidBlock, BidDb};
use crate::error::ModelError;
use crate::spj::{AnswerDistribution, Relation};
use crate::world::{PossibleWorld, WorldModel};

/// A literal: variable index plus polarity (`true` = positive literal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// Zero-based variable index.
    pub var: usize,
    /// `true` for `x_i`, `false` for `¬x_i`.
    pub positive: bool,
}

impl Literal {
    /// A positive literal `x_var`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// A negative literal `¬x_var`.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// Whether the literal is satisfied under the given assignment.
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A 2-SAT clause (disjunction of two literals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clause {
    /// First literal.
    pub a: Literal,
    /// Second literal.
    pub b: Literal,
}

impl Clause {
    /// Builds a clause.
    pub fn new(a: Literal, b: Literal) -> Self {
        Clause { a, b }
    }

    /// Whether the clause is satisfied under the given assignment.
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        self.a.satisfied(assignment) || self.b.satisfied(assignment)
    }
}

/// A MAX-2-SAT instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Max2SatInstance {
    /// Number of boolean variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Max2SatInstance {
    /// Builds an instance, validating that every literal refers to a variable.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Result<Self, ModelError> {
        for (i, c) in clauses.iter().enumerate() {
            if c.a.var >= num_vars || c.b.var >= num_vars {
                return Err(ModelError::Invalid {
                    context: format!("clause {i} references a variable out of range"),
                });
            }
        }
        Ok(Max2SatInstance { num_vars, clauses })
    }

    /// Number of clauses satisfied by `assignment`.
    pub fn satisfied_count(&self, assignment: &[bool]) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.satisfied(assignment))
            .count()
    }

    /// Brute-force optimum: the maximum number of simultaneously satisfiable
    /// clauses and one maximising assignment. Exponential in `num_vars`.
    pub fn brute_force_optimum(&self) -> (usize, Vec<bool>) {
        assert!(
            self.num_vars <= 24,
            "brute-force MAX-2-SAT limited to 24 variables"
        );
        let mut best = (0usize, vec![false; self.num_vars]);
        for mask in 0u64..(1u64 << self.num_vars) {
            let assignment: Vec<bool> = (0..self.num_vars).map(|i| mask >> i & 1 == 1).collect();
            let count = self.satisfied_count(&assignment);
            if count > best.0 {
                best = (count, assignment);
            }
        }
        best
    }
}

/// The probabilistic-database encoding of a MAX-2-SAT instance.
#[derive(Debug, Clone)]
pub struct HardnessGadget {
    /// The instance being encoded.
    pub instance: Max2SatInstance,
    /// The uncertain relation `S(x, b)`: one block per variable with two
    /// equiprobable, mutually exclusive alternatives (value encodes `2·x + b`).
    pub s_relation: BidDb,
    /// The certain relation `R(C, x, b)`: one row per (clause, literal).
    pub r_relation: Relation,
}

impl HardnessGadget {
    /// Builds the gadget from a MAX-2-SAT instance.
    ///
    /// Encoding: the alternative of variable `x_i` with boolean value `b` is
    /// the tuple alternative `(key = i, value = 2·i + b)`, so every value is
    /// distinct across the relation and the and/xor key constraint is easy to
    /// check. `R` rows are `[clause_index, var, b]`.
    pub fn build(instance: Max2SatInstance) -> Result<Self, ModelError> {
        let mut blocks = Vec::with_capacity(instance.num_vars);
        for var in 0..instance.num_vars {
            blocks.push(BidBlock::from_pairs(
                var as u64,
                &[((2 * var) as f64, 0.5), ((2 * var + 1) as f64, 0.5)],
            )?);
        }
        let s_relation = BidDb::new(blocks)?;
        let mut r_rows = Vec::with_capacity(2 * instance.clauses.len());
        for (ci, clause) in instance.clauses.iter().enumerate() {
            for lit in [clause.a, clause.b] {
                r_rows.push(vec![ci as i64, lit.var as i64, i64::from(lit.positive)]);
            }
        }
        let r_relation = Relation::new(3, r_rows);
        Ok(HardnessGadget {
            instance,
            s_relation,
            r_relation,
        })
    }

    /// Interprets a possible world of `S` as a boolean assignment.
    pub fn world_to_assignment(&self, world: &PossibleWorld) -> Vec<bool> {
        let mut assignment = vec![false; self.instance.num_vars];
        for alt in world.alternatives() {
            let var = alt.key.0 as usize;
            let bit = (alt.value.0 as i64) - 2 * var as i64;
            assignment[var] = bit == 1;
        }
        assignment
    }

    /// Evaluates the query `π_C(R ⋈ S)` on one possible world of `S`: the set
    /// of clause indices satisfied by the corresponding assignment.
    pub fn query_answer(&self, world: &PossibleWorld) -> Relation {
        // S rows for this world: (var, b).
        let s_rows: Vec<Vec<i64>> = world
            .alternatives()
            .iter()
            .map(|a| {
                let var = a.key.0 as i64;
                let b = a.value.0 as i64 - 2 * var;
                vec![var, b]
            })
            .collect();
        let s = Relation::new(2, s_rows);
        // R(C, x, b) ⋈ S(x, b) on (x, b), projected onto C.
        self.r_relation
            .equi_join(&s, &[(1, 0), (2, 1)])
            .project(&[0])
    }

    /// The full answer distribution of `π_C(R ⋈ S)` over all possible worlds
    /// of `S`. Exponential in the number of variables.
    pub fn answer_distribution(&self) -> AnswerDistribution {
        let worlds = self.s_relation.enumerate_worlds();
        AnswerDistribution::evaluate(&worlds, |w| self.query_answer(w))
    }

    /// Every result tuple (clause) of the query has this marginal probability
    /// when both of the clause's literals refer to distinct variables: the
    /// clause is satisfied unless both literals are falsified, i.e. 3/4.
    pub fn expected_clause_probability() -> f64 {
        0.75
    }

    /// The size of the largest possible answer — by the reduction, exactly the
    /// MAX-2-SAT optimum. Computed by enumerating the worlds of `S`.
    pub fn largest_possible_answer(&self) -> (usize, PossibleWorld) {
        let worlds = self.s_relation.enumerate_worlds();
        let mut best: Option<(usize, PossibleWorld)> = None;
        for (w, p) in worlds.worlds() {
            if *p <= 0.0 {
                continue;
            }
            let size = self.query_answer(w).len();
            if best.as_ref().is_none_or(|(b, _)| size > *b) {
                best = Some((size, w.clone()));
            }
        }
        best.expect("S has at least one possible world")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's example clause `c₁ = x₁ ∨ ¬x₂` plus a second clause, over
    /// three variables.
    fn small_instance() -> Max2SatInstance {
        Max2SatInstance::new(
            3,
            vec![
                Clause::new(Literal::pos(0), Literal::neg(1)),
                Clause::new(Literal::pos(1), Literal::pos(2)),
                Clause::new(Literal::neg(0), Literal::neg(2)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn literal_and_clause_satisfaction() {
        let a = [true, false];
        assert!(Literal::pos(0).satisfied(&a));
        assert!(!Literal::pos(1).satisfied(&a));
        assert!(Literal::neg(1).satisfied(&a));
        let c = Clause::new(Literal::neg(0), Literal::pos(1));
        assert!(!c.satisfied(&a));
    }

    #[test]
    fn instance_validation() {
        assert!(
            Max2SatInstance::new(1, vec![Clause::new(Literal::pos(0), Literal::pos(1))]).is_err()
        );
    }

    #[test]
    fn brute_force_optimum_is_correct_on_small_instance() {
        let inst = small_instance();
        let (best, assignment) = inst.brute_force_optimum();
        assert_eq!(best, 3);
        assert_eq!(inst.satisfied_count(&assignment), 3);
    }

    #[test]
    fn gadget_query_matches_direct_satisfaction_count() {
        let gadget = HardnessGadget::build(small_instance()).unwrap();
        let worlds = gadget.s_relation.enumerate_worlds();
        for (w, _) in worlds.worlds() {
            let assignment = gadget.world_to_assignment(w);
            let via_query = gadget.query_answer(w).len();
            let direct = gadget.instance.satisfied_count(&assignment);
            assert_eq!(via_query, direct);
        }
    }

    #[test]
    fn result_tuple_probability_is_three_quarters() {
        let gadget = HardnessGadget::build(small_instance()).unwrap();
        let dist = gadget.answer_distribution();
        for (row, p) in dist.row_marginals() {
            assert!(
                (p - HardnessGadget::expected_clause_probability()).abs() < 1e-9,
                "clause {row:?} has probability {p}"
            );
        }
    }

    #[test]
    fn median_answer_size_equals_max2sat_optimum() {
        let inst = small_instance();
        let (optimum, _) = inst.brute_force_optimum();
        let gadget = HardnessGadget::build(inst).unwrap();
        let (largest, world) = gadget.largest_possible_answer();
        assert_eq!(largest, optimum);
        // The witnessing world decodes to an optimal assignment.
        let assignment = gadget.world_to_assignment(&world);
        assert_eq!(gadget.instance.satisfied_count(&assignment), optimum);
    }

    #[test]
    fn gadget_sizes_scale_with_instance() {
        let inst = Max2SatInstance::new(
            4,
            vec![
                Clause::new(Literal::pos(0), Literal::pos(1)),
                Clause::new(Literal::neg(2), Literal::pos(3)),
            ],
        )
        .unwrap();
        let gadget = HardnessGadget::build(inst).unwrap();
        assert_eq!(gadget.s_relation.len(), 4);
        assert_eq!(gadget.s_relation.alternative_count(), 8);
        assert_eq!(gadget.r_relation.len(), 4);
    }
}
