//! Typed errors for model construction and validation.

use std::fmt;

/// Errors raised while constructing or validating probabilistic relations.
///
/// Marked `#[non_exhaustive]`: downstream crates must keep a wildcard arm so
/// new validation failures can be added without a breaking release. The
/// engine-facing counterpart is `cpdb_engine::EngineError`, which converts
/// into and from this type via `From`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A probability was outside `[0, 1]` (or not finite).
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Human-readable description of where the value was found.
        context: String,
    },
    /// The probabilities of mutually exclusive alternatives summed to more
    /// than one.
    ProbabilityMassExceeded {
        /// The offending sum.
        total: f64,
        /// Human-readable description of the block/node.
        context: String,
    },
    /// Two alternatives with the same possible-worlds key were allowed to
    /// co-exist (violating the key constraint of the model).
    DuplicateKey {
        /// The duplicated key.
        key: u64,
        /// Human-readable description of where the duplicate appeared.
        context: String,
    },
    /// A structure was empty where at least one element is required.
    Empty {
        /// Human-readable description of the empty structure.
        context: String,
    },
    /// A caller-supplied index or identifier did not refer to anything.
    NotFound {
        /// Human-readable description of the missing reference.
        context: String,
    },
    /// A structural invariant was violated (catch-all with description).
    Invalid {
        /// Human-readable description of the violation.
        context: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidProbability { value, context } => {
                write!(f, "invalid probability {value} ({context})")
            }
            ModelError::ProbabilityMassExceeded { total, context } => {
                write!(f, "probability mass {total} exceeds 1 ({context})")
            }
            ModelError::DuplicateKey { key, context } => {
                write!(f, "duplicate possible-worlds key {key} ({context})")
            }
            ModelError::Empty { context } => write!(f, "empty structure: {context}"),
            ModelError::NotFound { context } => write!(f, "not found: {context}"),
            ModelError::Invalid { context } => write!(f, "invalid structure: {context}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Validates that `p` is a finite probability in `[0, 1]` (with a tiny
/// tolerance for accumulated rounding).
pub fn validate_probability(p: f64, context: &str) -> Result<(), ModelError> {
    if !p.is_finite() || !(-1e-9..=1.0 + 1e-9).contains(&p) {
        Err(ModelError::InvalidProbability {
            value: p,
            context: context.to_string(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_probability_accepts_unit_interval() {
        assert!(validate_probability(0.0, "t").is_ok());
        assert!(validate_probability(1.0, "t").is_ok());
        assert!(validate_probability(0.5, "t").is_ok());
    }

    #[test]
    fn validate_probability_rejects_invalid() {
        assert!(validate_probability(-0.1, "t").is_err());
        assert!(validate_probability(1.1, "t").is_err());
        assert!(validate_probability(f64::NAN, "t").is_err());
    }

    #[test]
    fn errors_render_context() {
        let e = ModelError::DuplicateKey {
            key: 7,
            context: "block 3".into(),
        };
        let s = format!("{e}");
        assert!(s.contains('7'));
        assert!(s.contains("block 3"));
    }
}
