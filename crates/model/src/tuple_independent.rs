//! The tuple-independent probabilistic database model.
//!
//! Every tuple alternative is present independently with its own probability.
//! This is the simplest and most widely studied model (it is the setting of
//! the Dalvi–Suciu dichotomy) and the setting in which the paper's Jaccard
//! consensus-world algorithm (§4.2, Lemmas 1–2) operates.

use crate::error::{validate_probability, ModelError};
use crate::tuple::{Alternative, TupleKey};
use crate::world::{PossibleWorld, WorldModel, WorldSet};
use rand::Rng;

/// A tuple-independent probabilistic relation: a list of `(alternative,
/// probability)` pairs where every alternative's presence is an independent
/// event.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleIndependentDb {
    tuples: Vec<(Alternative, f64)>,
}

impl TupleIndependentDb {
    /// Builds the database, validating probabilities and key uniqueness
    /// (a key may appear only once — tuple-independent relations have exactly
    /// one alternative per tuple).
    pub fn new(tuples: Vec<(Alternative, f64)>) -> Result<Self, ModelError> {
        let mut keys: Vec<TupleKey> = tuples.iter().map(|(a, _)| a.key).collect();
        keys.sort();
        for pair in keys.windows(2) {
            if pair[0] == pair[1] {
                return Err(ModelError::DuplicateKey {
                    key: pair[0].0,
                    context: "tuple-independent database".to_string(),
                });
            }
        }
        for (a, p) in &tuples {
            validate_probability(*p, &format!("tuple {a}"))?;
        }
        Ok(TupleIndependentDb { tuples })
    }

    /// Convenience constructor from `(key, value, probability)` triples.
    pub fn from_triples(triples: &[(u64, f64, f64)]) -> Result<Self, ModelError> {
        Self::new(
            triples
                .iter()
                .map(|&(k, v, p)| (Alternative::new(k, v), p))
                .collect(),
        )
    }

    /// The `(alternative, probability)` pairs.
    #[inline]
    pub fn tuples(&self) -> &[(Alternative, f64)] {
        &self.tuples
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The probability of the tuple with the given key, if present.
    pub fn probability_of(&self, key: TupleKey) -> Option<f64> {
        self.tuples
            .iter()
            .find(|(a, _)| a.key == key)
            .map(|(_, p)| *p)
    }

    /// The expected number of tuples in a possible world (`Σ p_i`).
    pub fn expected_world_size(&self) -> f64 {
        self.tuples.iter().map(|(_, p)| *p).sum()
    }

    /// Tuples sorted by decreasing probability — the candidate prefix order
    /// used by the Jaccard mean/median world algorithm (Lemma 2).
    pub fn sorted_by_probability_desc(&self) -> Vec<(Alternative, f64)> {
        let mut sorted = self.tuples.clone();
        sorted.sort_by(|(a1, p1), (a2, p2)| {
            p2.partial_cmp(p1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a1.key.cmp(&a2.key))
        });
        sorted
    }
}

impl WorldModel for TupleIndependentDb {
    fn alternatives(&self) -> Vec<Alternative> {
        let mut alts: Vec<Alternative> = self.tuples.iter().map(|(a, _)| *a).collect();
        alts.sort();
        alts
    }

    fn enumerate_worlds(&self) -> WorldSet {
        let n = self.tuples.len();
        assert!(
            n <= 25,
            "exhaustive enumeration of {n} independent tuples would produce 2^{n} worlds"
        );
        let mut worlds = Vec::with_capacity(1usize << n);
        for mask in 0u64..(1u64 << n) {
            let mut prob = 1.0;
            let mut alts = Vec::new();
            for (i, (a, p)) in self.tuples.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    prob *= p;
                    alts.push(*a);
                } else {
                    prob *= 1.0 - p;
                }
            }
            if prob > 0.0 {
                worlds.push((PossibleWorld::from_trusted(alts), prob));
            }
        }
        WorldSet::new_unchecked(worlds).normalize()
    }

    fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> PossibleWorld {
        let alts: Vec<Alternative> = self
            .tuples
            .iter()
            .filter(|(_, p)| rng.gen::<f64>() < *p)
            .map(|(a, _)| *a)
            .collect();
        PossibleWorld::from_trusted(alts)
    }

    fn alternative_probability(&self, alt: &Alternative) -> f64 {
        self.tuples
            .iter()
            .find(|(a, _)| a == alt)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db3() -> TupleIndependentDb {
        TupleIndependentDb::from_triples(&[(1, 10.0, 0.9), (2, 20.0, 0.5), (3, 30.0, 0.2)]).unwrap()
    }

    #[test]
    fn construction_validates_keys_and_probabilities() {
        assert!(TupleIndependentDb::from_triples(&[(1, 1.0, 0.5), (1, 2.0, 0.5)]).is_err());
        assert!(TupleIndependentDb::from_triples(&[(1, 1.0, 1.5)]).is_err());
        assert!(TupleIndependentDb::from_triples(&[]).is_ok());
    }

    #[test]
    fn enumeration_covers_all_combinations() {
        let db = db3();
        let ws = db.enumerate_worlds();
        assert_eq!(ws.len(), 8);
        let total: f64 = ws.worlds().iter().map(|(_, p)| *p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Marginals recovered from enumeration match the input probabilities.
        assert!((ws.marginal_key(TupleKey(1)) - 0.9).abs() < 1e-12);
        assert!((ws.marginal_key(TupleKey(2)) - 0.5).abs() < 1e-12);
        assert!((ws.marginal_key(TupleKey(3)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn enumeration_drops_zero_probability_worlds() {
        let db = TupleIndependentDb::from_triples(&[(1, 1.0, 1.0), (2, 2.0, 0.5)]).unwrap();
        let ws = db.enumerate_worlds();
        // Worlds missing tuple 1 have probability 0 and are dropped.
        assert_eq!(ws.len(), 2);
        assert!(ws.worlds().iter().all(|(w, _)| w.contains_key(TupleKey(1))));
    }

    #[test]
    fn expected_world_size_is_sum_of_probabilities() {
        let db = db3();
        assert!((db.expected_world_size() - 1.6).abs() < 1e-12);
        let ws = db.enumerate_worlds();
        let brute = ws.expectation(|w| w.len() as f64);
        assert!((brute - 1.6).abs() < 1e-12);
    }

    #[test]
    fn sorted_by_probability_desc_orders_correctly() {
        let db = db3();
        let sorted = db.sorted_by_probability_desc();
        let probs: Vec<f64> = sorted.iter().map(|(_, p)| *p).collect();
        assert_eq!(probs, vec![0.9, 0.5, 0.2]);
    }

    #[test]
    fn sampling_matches_marginals() {
        let db = db3();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 30_000;
        let mut count1 = 0;
        for _ in 0..n {
            if db.sample_world(&mut rng).contains_key(TupleKey(1)) {
                count1 += 1;
            }
        }
        let freq = count1 as f64 / n as f64;
        assert!((freq - 0.9).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn probability_lookups() {
        let db = db3();
        assert_eq!(db.probability_of(TupleKey(2)), Some(0.5));
        assert_eq!(db.probability_of(TupleKey(99)), None);
        assert!((db.alternative_probability(&Alternative::new(3, 30.0)) - 0.2).abs() < 1e-12);
        assert_eq!(db.alternative_probability(&Alternative::new(3, 31.0)), 0.0);
    }
}
