//! X-tuples (a.k.a. p-or-sets / maybe-tuples).
//!
//! An *x-tuple* is a set of mutually exclusive tuple alternatives of which at
//! most one (for a "maybe" x-tuple) or exactly one (for a "certain" x-tuple)
//! appears in any possible world; different x-tuples are independent. The
//! model is equivalent in expressive power to the BID scheme — this module
//! provides the x-tuple vocabulary used by the uncertain-ranking literature
//! the paper builds on ([34, 41]) and a lossless conversion to [`BidDb`].

use crate::bid::{BidBlock, BidDb};
use crate::error::ModelError;
use crate::tuple::{Alternative, AttrValue, TupleKey};
use crate::world::{PossibleWorld, WorldModel, WorldSet};
use rand::Rng;

/// One x-tuple: a set of mutually exclusive alternatives.
#[derive(Debug, Clone, PartialEq)]
pub struct XTuple {
    key: TupleKey,
    alternatives: Vec<(AttrValue, f64)>,
    /// When `false`, the alternatives' probabilities must sum to exactly 1
    /// (the tuple certainly appears, only its value is uncertain).
    maybe: bool,
}

impl XTuple {
    /// Builds a "maybe" x-tuple: the probabilities may sum to less than 1 and
    /// the tuple may be entirely absent.
    pub fn maybe(key: u64, alternatives: &[(f64, f64)]) -> Result<Self, ModelError> {
        let block = BidBlock::from_pairs(key, alternatives)?;
        Ok(XTuple {
            key: TupleKey(key),
            alternatives: block.alternatives().to_vec(),
            maybe: true,
        })
    }

    /// Builds a "certain" x-tuple: the probabilities must sum to 1 (within
    /// tolerance); some alternative always appears.
    pub fn certain(key: u64, alternatives: &[(f64, f64)]) -> Result<Self, ModelError> {
        let block = BidBlock::from_pairs(key, alternatives)?;
        let mass = block.presence_probability();
        if (mass - 1.0).abs() > 1e-9 {
            return Err(ModelError::Invalid {
                context: format!("certain x-tuple {key} has total probability {mass}, expected 1"),
            });
        }
        Ok(XTuple {
            key: TupleKey(key),
            alternatives: block.alternatives().to_vec(),
            maybe: false,
        })
    }

    /// The x-tuple's key.
    #[inline]
    pub fn key(&self) -> TupleKey {
        self.key
    }

    /// The `(value, probability)` alternatives.
    #[inline]
    pub fn alternatives(&self) -> &[(AttrValue, f64)] {
        &self.alternatives
    }

    /// Whether the x-tuple may be absent from a possible world.
    #[inline]
    pub fn is_maybe(&self) -> bool {
        self.maybe
    }
}

/// A relation of independent x-tuples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XTupleDb {
    xtuples: Vec<XTuple>,
}

impl XTupleDb {
    /// Builds the relation, rejecting duplicate keys.
    pub fn new(xtuples: Vec<XTuple>) -> Result<Self, ModelError> {
        let mut keys: Vec<TupleKey> = xtuples.iter().map(|x| x.key).collect();
        keys.sort();
        for pair in keys.windows(2) {
            if pair[0] == pair[1] {
                return Err(ModelError::DuplicateKey {
                    key: pair[0].0,
                    context: "x-tuple relation".to_string(),
                });
            }
        }
        Ok(XTupleDb { xtuples })
    }

    /// The x-tuples.
    #[inline]
    pub fn xtuples(&self) -> &[XTuple] {
        &self.xtuples
    }

    /// Number of x-tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.xtuples.len()
    }

    /// True when the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xtuples.is_empty()
    }

    /// Lossless conversion to the equivalent BID relation.
    ///
    /// Never panics: every `XTuple` is built through [`BidBlock`] validation
    /// (non-empty alternatives, valid probabilities, mass ≤ 1) and
    /// [`XTupleDb::new`] rejects duplicate keys, so both conversions below
    /// are infallible by construction.
    pub fn to_bid(&self) -> BidDb {
        BidDb::new(
            self.xtuples
                .iter()
                .map(|x| {
                    BidBlock::new(x.key, x.alternatives.clone())
                        .expect("x-tuple invariants imply BID invariants")
                })
                .collect(),
        )
        .expect("x-tuple keys are unique")
    }
}

impl WorldModel for XTupleDb {
    fn alternatives(&self) -> Vec<Alternative> {
        self.to_bid().alternatives()
    }

    fn enumerate_worlds(&self) -> WorldSet {
        self.to_bid().enumerate_worlds()
    }

    fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> PossibleWorld {
        self.to_bid().sample_world(rng)
    }

    fn alternative_probability(&self, alt: &Alternative) -> f64 {
        self.to_bid().alternative_probability(alt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certain_xtuple_requires_full_mass() {
        assert!(XTuple::certain(1, &[(1.0, 0.5), (2.0, 0.5)]).is_ok());
        assert!(XTuple::certain(1, &[(1.0, 0.5), (2.0, 0.4)]).is_err());
        assert!(XTuple::maybe(1, &[(1.0, 0.5), (2.0, 0.4)]).is_ok());
    }

    #[test]
    fn duplicate_keys_rejected() {
        let a = XTuple::maybe(1, &[(1.0, 0.5)]).unwrap();
        let b = XTuple::maybe(1, &[(2.0, 0.5)]).unwrap();
        assert!(XTupleDb::new(vec![a, b]).is_err());
    }

    #[test]
    fn conversion_to_bid_preserves_distribution() {
        let db = XTupleDb::new(vec![
            XTuple::certain(1, &[(5.0, 0.3), (6.0, 0.7)]).unwrap(),
            XTuple::maybe(2, &[(7.0, 0.4)]).unwrap(),
        ])
        .unwrap();
        let ws_x = db.enumerate_worlds();
        let ws_b = db.to_bid().enumerate_worlds();
        assert_eq!(ws_x, ws_b);
        assert_eq!(ws_x.len(), 4);
        assert!((ws_x.marginal_key(TupleKey(1)) - 1.0).abs() < 1e-12);
        assert!((ws_x.marginal_key(TupleKey(2)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_alternative_lists_are_typed_errors_never_panics() {
        // to_bid's expects are unreachable because construction already
        // rejects anything that would violate the BID invariants.
        assert!(XTuple::maybe(1, &[]).is_err());
        assert!(XTuple::certain(1, &[]).is_err());
        assert!(XTuple::maybe(1, &[(1.0, 1.5)]).is_err());
    }

    #[test]
    fn empty_relation_converts_and_enumerates() {
        let db = XTupleDb::new(vec![]).unwrap();
        assert!(db.is_empty());
        let bid = db.to_bid();
        assert!(bid.is_empty());
        let ws = db.enumerate_worlds();
        assert_eq!(ws.len(), 1);
        assert!(ws.worlds()[0].0.is_empty());
    }

    #[test]
    fn accessors() {
        let x = XTuple::certain(3, &[(1.0, 1.0)]).unwrap();
        assert_eq!(x.key(), TupleKey(3));
        assert!(!x.is_maybe());
        assert_eq!(x.alternatives().len(), 1);
        let db = XTupleDb::new(vec![x]).unwrap();
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
        assert_eq!(db.alternatives(), vec![Alternative::new(3, 1.0)]);
    }
}
