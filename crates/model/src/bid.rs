//! The block-independent-disjoint (BID) probabilistic database model.
//!
//! A BID relation `R(K; A; Pr)` groups tuple alternatives into *blocks* by
//! their possible-worlds key: the alternatives within one block are mutually
//! exclusive (at most one appears in a world, possibly none), and different
//! blocks are independent. This is the model of Figure 1(i) of the paper and
//! the direct ancestor of the probabilistic and/xor tree.

use crate::error::{validate_probability, ModelError};
use crate::tuple::{Alternative, AttrValue, TupleKey};
use crate::world::{PossibleWorld, WorldModel, WorldSet};
use rand::Rng;

/// One block: the mutually exclusive alternatives of a single probabilistic
/// tuple, each with its probability. The probabilities must sum to at most 1;
/// the leftover mass is the probability that the tuple is absent.
#[derive(Debug, Clone, PartialEq)]
pub struct BidBlock {
    key: TupleKey,
    alternatives: Vec<(AttrValue, f64)>,
}

impl BidBlock {
    /// Builds a block, validating each probability and the total mass.
    pub fn new(key: TupleKey, alternatives: Vec<(AttrValue, f64)>) -> Result<Self, ModelError> {
        if alternatives.is_empty() {
            return Err(ModelError::Empty {
                context: format!("BID block for key {key}"),
            });
        }
        let mut total = 0.0;
        for (v, p) in &alternatives {
            validate_probability(*p, &format!("alternative ({key}, {v})"))?;
            total += p;
        }
        if total > 1.0 + 1e-9 {
            return Err(ModelError::ProbabilityMassExceeded {
                total,
                context: format!("BID block for key {key}"),
            });
        }
        Ok(BidBlock { key, alternatives })
    }

    /// Convenience constructor from `(value, probability)` pairs.
    pub fn from_pairs(key: u64, pairs: &[(f64, f64)]) -> Result<Self, ModelError> {
        Self::new(
            TupleKey(key),
            pairs.iter().map(|&(v, p)| (AttrValue(v), p)).collect(),
        )
    }

    /// The block's possible-worlds key.
    #[inline]
    pub fn key(&self) -> TupleKey {
        self.key
    }

    /// The block's `(value, probability)` alternatives.
    #[inline]
    pub fn alternatives(&self) -> &[(AttrValue, f64)] {
        &self.alternatives
    }

    /// Probability that the tuple is present at all (sum over alternatives).
    pub fn presence_probability(&self) -> f64 {
        self.alternatives.iter().map(|(_, p)| *p).sum()
    }

    /// The highest-probability alternative of this block (used by the
    /// BID Jaccard-median heuristic of §4.2).
    ///
    /// Never panics: both constructors ([`BidBlock::new`] and
    /// [`BidBlock::from_pairs`]) reject empty alternative lists with
    /// [`ModelError::Empty`], so a `BidBlock` always has at least one
    /// alternative.
    pub fn best_alternative(&self) -> (Alternative, f64) {
        let (v, p) = self
            .alternatives
            .iter()
            .max_by(|(v1, p1), (v2, p2)| {
                p1.partial_cmp(p2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| v1.cmp(v2))
            })
            .expect("blocks are non-empty by construction");
        (
            Alternative {
                key: self.key,
                value: *v,
            },
            *p,
        )
    }
}

/// A block-independent-disjoint probabilistic relation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BidDb {
    blocks: Vec<BidBlock>,
}

impl BidDb {
    /// Builds the relation, rejecting duplicate block keys.
    pub fn new(blocks: Vec<BidBlock>) -> Result<Self, ModelError> {
        let mut keys: Vec<TupleKey> = blocks.iter().map(|b| b.key).collect();
        keys.sort();
        for pair in keys.windows(2) {
            if pair[0] == pair[1] {
                return Err(ModelError::DuplicateKey {
                    key: pair[0].0,
                    context: "BID relation".to_string(),
                });
            }
        }
        Ok(BidDb { blocks })
    }

    /// The blocks of the relation.
    #[inline]
    pub fn blocks(&self) -> &[BidBlock] {
        &self.blocks
    }

    /// Number of blocks (probabilistic tuples).
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the relation has no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total number of alternatives across all blocks.
    pub fn alternative_count(&self) -> usize {
        self.blocks.iter().map(|b| b.alternatives.len()).sum()
    }

    /// Builds a BID relation in which every block has exactly one alternative
    /// — i.e. the embedding of a tuple-independent database.
    pub fn from_tuple_independent(db: &crate::TupleIndependentDb) -> Self {
        let blocks = db
            .tuples()
            .iter()
            .map(|(a, p)| BidBlock {
                key: a.key,
                alternatives: vec![(a.value, *p)],
            })
            .collect();
        BidDb { blocks }
    }
}

impl WorldModel for BidDb {
    fn alternatives(&self) -> Vec<Alternative> {
        let mut alts: Vec<Alternative> = self
            .blocks
            .iter()
            .flat_map(|b| {
                b.alternatives.iter().map(move |(v, _)| Alternative {
                    key: b.key,
                    value: *v,
                })
            })
            .collect();
        alts.sort();
        alts
    }

    fn enumerate_worlds(&self) -> WorldSet {
        // Each block contributes (its alternatives + "absent"); the number of
        // worlds is the product of (|block| + 1) over blocks (or |block| when
        // the block's mass is exactly 1).
        let mut worlds: Vec<(Vec<Alternative>, f64)> = vec![(Vec::new(), 1.0)];
        for block in &self.blocks {
            let absent = 1.0 - block.presence_probability();
            let mut next = Vec::with_capacity(worlds.len() * (block.alternatives.len() + 1));
            for (alts, p) in &worlds {
                if absent > 1e-12 {
                    next.push((alts.clone(), p * absent));
                }
                for (v, q) in &block.alternatives {
                    if *q == 0.0 {
                        continue;
                    }
                    let mut with = alts.clone();
                    with.push(Alternative {
                        key: block.key,
                        value: *v,
                    });
                    next.push((with, p * q));
                }
            }
            worlds = next;
            assert!(
                worlds.len() <= 4_000_000,
                "exhaustive BID enumeration grew past 4M worlds"
            );
        }
        WorldSet::new_unchecked(
            worlds
                .into_iter()
                .map(|(alts, p)| (PossibleWorld::from_trusted(alts), p))
                .collect(),
        )
        .normalize()
    }

    fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> PossibleWorld {
        let mut alts = Vec::new();
        for block in &self.blocks {
            let mut u: f64 = rng.gen();
            for (v, p) in &block.alternatives {
                if u < *p {
                    alts.push(Alternative {
                        key: block.key,
                        value: *v,
                    });
                    break;
                }
                u -= p;
            }
        }
        PossibleWorld::from_trusted(alts)
    }

    fn alternative_probability(&self, alt: &Alternative) -> f64 {
        self.blocks
            .iter()
            .find(|b| b.key == alt.key)
            .and_then(|b| {
                b.alternatives
                    .iter()
                    .find(|(v, _)| *v == alt.value)
                    .map(|(_, p)| *p)
            })
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The block-independent relation of Figure 1(i): four tuples, each with
    /// two alternatives. The per-block presence probabilities are 0.6, 0.8,
    /// 1.0, 1.0, giving the world-size generating function
    /// `0.08·x² + 0.44·x³ + 0.48·x⁴` stated in the figure.
    pub(crate) fn figure1_bid() -> BidDb {
        BidDb::new(vec![
            BidBlock::from_pairs(1, &[(8.0, 0.1), (2.0, 0.5)]).unwrap(),
            BidBlock::from_pairs(2, &[(3.0, 0.4), (4.0, 0.4)]).unwrap(),
            BidBlock::from_pairs(3, &[(1.0, 0.2), (9.0, 0.8)]).unwrap(),
            BidBlock::from_pairs(4, &[(6.0, 0.5), (5.0, 0.5)]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn block_validation() {
        assert!(BidBlock::from_pairs(1, &[(1.0, 0.6), (2.0, 0.5)]).is_err());
        assert!(BidBlock::from_pairs(1, &[(1.0, -0.1)]).is_err());
        assert!(BidBlock::from_pairs(1, &[]).is_err());
        let b = BidBlock::from_pairs(1, &[(1.0, 0.6), (2.0, 0.4)]).unwrap();
        assert!((b.presence_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn db_rejects_duplicate_blocks() {
        let b1 = BidBlock::from_pairs(1, &[(1.0, 0.5)]).unwrap();
        let b2 = BidBlock::from_pairs(1, &[(2.0, 0.5)]).unwrap();
        assert!(BidDb::new(vec![b1, b2]).is_err());
    }

    #[test]
    fn figure1_enumeration_probabilities() {
        let db = figure1_bid();
        let ws = db.enumerate_worlds();
        let total: f64 = ws.worlds().iter().map(|(_, p)| *p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Tuple 2 has total presence probability 0.8; each alternative 0.4.
        assert!((ws.marginal_key(TupleKey(2)) - 0.8).abs() < 1e-9);
        assert!((ws.marginal(&Alternative::new(2, 3.0)) - 0.4).abs() < 1e-9);
        // World-size distribution stated in Figure 1(i):
        // 0.08·x² + 0.44·x³ + 0.48·x⁴.
        let size_prob = |s: usize| -> f64 {
            ws.worlds()
                .iter()
                .filter(|(w, _)| w.len() == s)
                .map(|(_, p)| *p)
                .sum()
        };
        assert!((size_prob(2) - 0.08).abs() < 1e-9);
        assert!((size_prob(3) - 0.44).abs() < 1e-9);
        assert!((size_prob(4) - 0.48).abs() < 1e-9);
    }

    #[test]
    fn best_alternative_picks_highest_probability() {
        let b = BidBlock::from_pairs(5, &[(1.0, 0.3), (2.0, 0.5), (3.0, 0.2)]).unwrap();
        let (alt, p) = b.best_alternative();
        assert_eq!(alt, Alternative::new(5, 2.0));
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_block_is_a_typed_error_never_a_panic() {
        // best_alternative's non-empty invariant is enforced at construction:
        // an empty alternative list is a typed ModelError, so no BidBlock can
        // reach the expect in best_alternative.
        let err = BidBlock::new(TupleKey(7), vec![]).unwrap_err();
        assert!(matches!(err, ModelError::Empty { .. }));
        let err = BidBlock::from_pairs(7, &[]).unwrap_err();
        assert!(matches!(err, ModelError::Empty { .. }));
        // Degenerate but valid: a single zero-probability alternative still
        // has a best alternative.
        let b = BidBlock::from_pairs(7, &[(4.0, 0.0)]).unwrap();
        let (alt, p) = b.best_alternative();
        assert_eq!(alt, Alternative::new(7, 4.0));
        assert_eq!(p, 0.0);
    }

    #[test]
    fn empty_relation_enumerates_the_single_empty_world() {
        let db = BidDb::new(vec![]).unwrap();
        assert!(db.is_empty());
        let ws = db.enumerate_worlds();
        assert_eq!(ws.len(), 1);
        assert!(ws.worlds()[0].0.is_empty());
        assert!((ws.worlds()[0].1 - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(db.sample_world(&mut rng).is_empty());
    }

    #[test]
    fn from_tuple_independent_round_trip() {
        let ti =
            crate::TupleIndependentDb::from_triples(&[(1, 5.0, 0.25), (2, 7.0, 0.75)]).unwrap();
        let bid = BidDb::from_tuple_independent(&ti);
        assert_eq!(bid.len(), 2);
        assert!((bid.alternative_probability(&Alternative::new(1, 5.0)) - 0.25).abs() < 1e-12);
        let ws_ti = ti.enumerate_worlds();
        let ws_bid = bid.enumerate_worlds();
        assert_eq!(ws_ti, ws_bid);
    }

    #[test]
    fn sampling_matches_marginals() {
        let db = figure1_bid();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 30_000;
        let mut count = 0;
        for _ in 0..n {
            let w = db.sample_world(&mut rng);
            if w.contains(&Alternative::new(3, 9.0)) {
                count += 1;
            }
        }
        let freq = count as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn alternative_count_counts_all() {
        assert_eq!(figure1_bid().alternative_count(), 8);
    }
}
