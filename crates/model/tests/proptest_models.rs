//! Property-based tests for the representation systems: enumeration,
//! sampling, and marginals must be mutually consistent for every generated
//! instance.

use cpdb_model::{BidBlock, BidDb, TupleIndependentDb, WorldModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_ti_db() -> impl Strategy<Value = TupleIndependentDb> {
    prop::collection::vec((0.0f64..=1.0, 0.0f64..100.0), 0..9).prop_map(|rows| {
        let triples: Vec<(u64, f64, f64)> = rows
            .iter()
            .enumerate()
            .map(|(i, (p, s))| (i as u64, *s, *p))
            .collect();
        TupleIndependentDb::from_triples(&triples).expect("valid")
    })
}

fn small_bid_db() -> impl Strategy<Value = BidDb> {
    prop::collection::vec(prop::collection::vec(0.05f64..1.0, 1..4), 1..5).prop_map(|blocks| {
        let bid: Vec<BidBlock> = blocks
            .iter()
            .enumerate()
            .map(|(key, weights)| {
                let total: f64 = weights.iter().sum::<f64>() * 1.2;
                let pairs: Vec<(f64, f64)> = weights
                    .iter()
                    .enumerate()
                    .map(|(j, w)| ((key * 10 + j) as f64, w / total))
                    .collect();
                BidBlock::from_pairs(key as u64, &pairs).expect("normalised")
            })
            .collect();
        BidDb::new(bid).expect("distinct keys")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Enumerated world probabilities always form a distribution and the
    /// per-alternative marginals recover the input probabilities.
    #[test]
    fn tuple_independent_enumeration_is_consistent(db in small_ti_db()) {
        let ws = db.enumerate_worlds();
        let total: f64 = ws.worlds().iter().map(|(_, p)| *p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (alt, p) in db.tuples() {
            prop_assert!((ws.marginal(alt) - p).abs() < 1e-9);
        }
    }

    /// The expected world size equals the sum of presence probabilities
    /// (linearity of expectation) under enumeration.
    #[test]
    fn expected_size_matches(db in small_ti_db()) {
        let ws = db.enumerate_worlds();
        let brute = ws.expectation(|w| w.len() as f64);
        prop_assert!((brute - db.expected_world_size()).abs() < 1e-9);
    }

    /// BID enumeration: block alternatives are mutually exclusive in every
    /// world and marginals match the block probabilities.
    #[test]
    fn bid_enumeration_is_consistent(db in small_bid_db()) {
        let ws = db.enumerate_worlds();
        let total: f64 = ws.worlds().iter().map(|(_, p)| *p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for block in db.blocks() {
            let presence = ws.marginal_key(block.key());
            prop_assert!((presence - block.presence_probability()).abs() < 1e-9);
        }
        for (w, p) in ws.worlds() {
            if *p == 0.0 { continue; }
            for block in db.blocks() {
                let count = w
                    .alternatives()
                    .iter()
                    .filter(|a| a.key == block.key())
                    .count();
                prop_assert!(count <= 1);
            }
        }
    }

    /// Sampling frequencies converge to the enumerated marginal of the first
    /// tuple (Monte-Carlo sanity bound).
    #[test]
    fn sampling_matches_marginals(db in small_bid_db()) {
        let ws = db.enumerate_worlds();
        let key = db.blocks()[0].key();
        let expected = ws.marginal_key(key);
        let mut rng = StdRng::seed_from_u64(42);
        let samples = 4_000;
        let mut hits = 0usize;
        for _ in 0..samples {
            if db.sample_world(&mut rng).contains_key(key) {
                hits += 1;
            }
        }
        let freq = hits as f64 / samples as f64;
        prop_assert!((freq - expected).abs() < 0.06,
            "sampled {} vs enumerated {}", freq, expected);
    }

    /// The x-tuple embedding of a BID database (one certain x-tuple per
    /// fully-saturated block, maybe x-tuples otherwise) round-trips through
    /// `to_bid` without changing the distribution.
    #[test]
    fn worldset_normalisation_is_idempotent(db in small_bid_db()) {
        let ws = db.enumerate_worlds();
        prop_assert_eq!(ws.normalize(), ws.clone().normalize().normalize());
        prop_assert!(ws.support_size() <= ws.len());
    }
}
