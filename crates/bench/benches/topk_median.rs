//! E5: median Top-k answers via the Theorem 4 dynamic program.

use cpdb_bench::experiments::scaling_tree;
use cpdb_consensus::topk::median_dp;
use cpdb_consensus::TopKContext;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_topk_median(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_median_dp");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        for &k in &[5usize, 10] {
            let tree = scaling_tree(n, 3);
            let ctx = TopKContext::new(&tree, k);
            group.bench_with_input(
                BenchmarkId::new("theorem4_dp", format!("n{n}_k{k}")),
                &(&tree, &ctx),
                |b, (tree, ctx)| b.iter(|| black_box(median_dp::median_topk_sym_diff(tree, ctx))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk_median);
criterion_main!(benches);
