//! E1/E2: consensus worlds under the symmetric-difference distance.

use cpdb_consensus::set_distance;
use cpdb_workloads::{random_tuple_independent, TupleIndependentConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_set_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_distance");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let db = random_tuple_independent(&TupleIndependentConfig {
            num_tuples: n,
            ..Default::default()
        });
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        group.bench_with_input(BenchmarkId::new("mean_world", n), &tree, |b, tree| {
            b.iter(|| black_box(set_distance::mean_world(tree)));
        });
        let mean = set_distance::mean_world(&tree);
        group.bench_with_input(
            BenchmarkId::new("expected_distance", n),
            &(tree, mean),
            |b, (tree, mean)| b.iter(|| black_box(set_distance::expected_distance(tree, mean))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_set_distance);
criterion_main!(benches);
