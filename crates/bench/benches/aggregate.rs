//! E10: consensus group-by count aggregates (mean vector + min-cost-flow
//! rounding to the closest possible answer).

use cpdb_consensus::aggregate::GroupByInstance;
use cpdb_workloads::{random_groupby_instance, GroupByConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &(n, m) in &[(1_000usize, 8usize), (2_000, 16)] {
        let probs = random_groupby_instance(&GroupByConfig {
            num_tuples: n,
            num_groups: m,
            skew: 1.2,
            seed: 5,
        });
        let inst = GroupByInstance::new(probs).unwrap();
        group.bench_with_input(
            BenchmarkId::new("mean_answer", format!("n{n}_m{m}")),
            &inst,
            |b, inst| b.iter(|| black_box(inst.mean_answer())),
        );
        group.bench_with_input(
            BenchmarkId::new("closest_possible_flow", format!("n{n}_m{m}")),
            &inst,
            |b, inst| b.iter(|| black_box(inst.closest_possible_answer().unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregate);
criterion_main!(benches);
