//! Replication micro-benchmarks: the one-shot segment ship and the cold
//! follower catch-up (anchor bootstrap + segment replay), per shipped-WAL
//! length. The JSON emitter `src/bin/replication.rs` measures the same
//! pipeline end-to-end with divergence gates; this harness tracks the two
//! hot stages under criterion's statistics.

use cpdb_bench::update_throughput::{live_engine, live_tree};
use cpdb_live::{LiveEngine, TreeDelta};
use cpdb_replica::{Follower, Primary, Transport};
use cpdb_store::{std_vfs, StoreOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "cpdb_bench_replication_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn leaf_deltas(tree: &cpdb_andxor::AndXorTree, count: usize) -> Vec<TreeDelta> {
    let leaves = tree.leaf_nodes();
    (0..count)
        .map(|i| TreeDelta::LeafValue {
            leaf: leaves[i % leaves.len()],
            value: 40.0 + (i % 53) as f64,
        })
        .collect()
}

/// A primary with `records` unshipped WAL records and an anchored outbox.
fn loaded_primary(n: usize, records: usize) -> (Primary, PathBuf, PathBuf) {
    let store_dir = temp_dir("pstore");
    let outbox = temp_dir("outbox");
    let live = LiveEngine::new_durable(live_engine(live_tree(n, 7), 7), &store_dir)
        .expect("fresh store directory is creatable");
    live.set_snapshot_every(u64::MAX);
    let primary = Primary::attach(live, std_vfs(), &outbox).expect("fresh outbox is claimable");
    primary.ship().expect("anchor ship succeeds");
    for delta in leaf_deltas(primary.snapshot().tree(), records) {
        primary.apply(&delta).expect("leaf updates are valid");
    }
    (primary, store_dir, outbox)
}

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    const N: usize = 40;
    for &records in &[8usize, 64] {
        // One replication batch on a long-lived primary: apply `records`
        // deltas, cut one segment (WAL filter + CRC framing + atomic
        // write + manifest commit), then rotate the anchor so the chain
        // and outbox stay bounded across iterations.
        let (primary, store_dir, outbox) = loaded_primary(N, 0);
        // Periodic snapshots let compaction drop rotated-past WAL records,
        // keeping the scanned WAL bounded across iterations.
        primary.live().set_snapshot_every(records.max(1) as u64 * 4);
        let deltas = leaf_deltas(primary.snapshot().tree(), records);
        group.bench_with_input(BenchmarkId::new("ship", records), &deltas, |b, deltas| {
            b.iter(|| {
                for delta in deltas {
                    primary.apply(delta).expect("leaf updates are valid");
                }
                black_box(primary.ship().expect("segment ship succeeds"));
                primary.rotate_anchor().expect("anchor rotation succeeds");
            })
        });
        drop(primary);
        std::fs::remove_dir_all(&store_dir).ok();
        std::fs::remove_dir_all(&outbox).ok();

        // The cold catch-up: anchor bootstrap + verified segment replay.
        let (primary, store_dir, outbox) = loaded_primary(N, records);
        primary.ship().expect("segment ship succeeds");
        let target = primary.epoch();
        group.bench_with_input(
            BenchmarkId::new("catch_up", records),
            &outbox,
            |b, outbox| {
                b.iter(|| {
                    let inbox = temp_dir("inbox");
                    let fstore = temp_dir("fstore");
                    let transport = Transport::new(std_vfs(), outbox, std_vfs(), &inbox)
                        .expect("inbox directory is creatable");
                    let mut follower = Follower::open(transport, &fstore, StoreOptions::default())
                        .expect("follower bootstraps");
                    follower.sync().expect("catch-up sync succeeds");
                    assert_eq!(follower.applied_epoch(), target);
                    drop(follower);
                    std::fs::remove_dir_all(&inbox).ok();
                    std::fs::remove_dir_all(&fstore).ok();
                })
            },
        );
        drop(primary);
        std::fs::remove_dir_all(&store_dir).ok();
        std::fs::remove_dir_all(&outbox).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
