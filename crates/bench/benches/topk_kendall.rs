//! E8: Kendall-tau consensus via pivot aggregation over exact pairwise order
//! probabilities.

use cpdb_bench::experiments::scaling_tree;
use cpdb_consensus::topk::kendall;
use cpdb_consensus::TopKContext;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_topk_kendall(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_kendall");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[50usize, 100] {
        let k = 10usize;
        let tree = scaling_tree(n, 11);
        let ctx = TopKContext::new(&tree, k);
        group.bench_with_input(
            BenchmarkId::new("preference_matrix", n),
            &tree,
            |b, tree| {
                let keys = tree.keys();
                b.iter(|| black_box(kendall::preference_matrix(tree, &keys)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pivot_consensus", n),
            &(&tree, &ctx),
            |b, (tree, ctx)| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(kendall::mean_topk_kendall_pivot(tree, ctx, 30, 4, &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_topk_kendall);
criterion_main!(benches);
