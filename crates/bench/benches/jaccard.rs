//! E3: consensus worlds under the Jaccard distance (Lemmas 1–2).

use cpdb_consensus::jaccard;
use cpdb_model::WorldModel;
use cpdb_workloads::{random_tuple_independent, TupleIndependentConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_jaccard(c: &mut Criterion) {
    let mut group = c.benchmark_group("jaccard");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[25usize, 50, 100] {
        let db = random_tuple_independent(&TupleIndependentConfig {
            num_tuples: n,
            ..Default::default()
        });
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        let candidate = cpdb_model::PossibleWorld::from_trusted(
            db.tuples().iter().take(n / 2).map(|(a, _)| *a).collect(),
        );
        group.bench_with_input(
            BenchmarkId::new("lemma1_expected_distance", n),
            &(&tree, &candidate),
            |b, (tree, candidate)| {
                b.iter(|| black_box(jaccard::expected_jaccard_distance(tree, candidate)))
            },
        );
        group.bench_with_input(BenchmarkId::new("lemma2_mean_world", n), &db, |b, db| {
            b.iter(|| black_box(jaccard::mean_world_tuple_independent(db)));
        });
    }
    // One small exhaustive check to keep the bench honest about correctness.
    let db = random_tuple_independent(&TupleIndependentConfig {
        num_tuples: 8,
        ..Default::default()
    });
    let brute = db.enumerate_worlds();
    group.bench_function("oracle_enumeration_n8", |b| {
        b.iter(|| {
            black_box(cpdb_consensus::oracle::brute_force_mean_world(
                &brute,
                |a, w| a.jaccard_distance(w),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_jaccard);
criterion_main!(benches);
