//! Sustained query throughput of one shared `ConsensusEngine`: the serial
//! `run` loop vs. the two-phase parallel `run_batch` on mixed serving
//! batches, warm (artifacts cached — the paper's serving regime) and cold
//! (first batch pays the artifact builds). The `query_throughput` binary
//! emits the same measurements as JSON for the perf-smoke CI gate.

use cpdb_bench::query_throughput::{assert_identical, mixed_batch, serving_engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_query_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_throughput");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[120usize] {
        for &dup in &[1usize, 4] {
            let batch = mixed_batch(&[5, 10], dup);
            // Warm: one engine holds every artifact; both executors answer
            // the same batch from cache.
            let warm = serving_engine(n, 7, 0);
            assert_identical(&warm.run_batch_serial(&batch), &warm.run_batch(&batch));
            group.bench_with_input(
                BenchmarkId::new("warm_serial_loop", format!("n{n}_dup{dup}")),
                &(&warm, &batch),
                |b, (engine, batch)| b.iter(|| black_box(engine.run_batch_serial(batch))),
            );
            group.bench_with_input(
                BenchmarkId::new("warm_parallel_batch", format!("n{n}_dup{dup}")),
                &(&warm, &batch),
                |b, (engine, batch)| b.iter(|| black_box(engine.run_batch(batch))),
            );
            // Cold: a fresh engine per iteration, so the measured time
            // includes the artifact builds the batch planner parallelises.
            group.bench_with_input(
                BenchmarkId::new("cold_parallel_batch", format!("n{n}_dup{dup}")),
                &batch,
                |b, batch| {
                    b.iter(|| {
                        let engine = serving_engine(n, 7, 0);
                        black_box(engine.run_batch(batch))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_throughput);
criterion_main!(benches);
