//! Cold-build cost of the engine's shared artifacts: the legacy per-tuple
//! generating-function paths (one sweep per key / per pair) against the
//! single-sweep batch evaluator, single-threaded and at the automatic thread
//! count. The `rank_artifacts` binary emits the same comparisons as
//! `BENCH_rank_artifacts.json` for the perf-smoke CI gate.

use cpdb_bench::rank_artifacts::{
    batch_cocluster, batch_rank_table, batch_tournament, clustering_workload, legacy_cocluster,
    legacy_rank_table, legacy_tournament, rank_workload,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_rank_artifacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_artifacts");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.sample_size(10);

    for &(n, k) in &[(100usize, 10usize), (200, 20)] {
        let tree = rank_workload(n, 7);
        let keys = tree.keys();

        group.bench_with_input(
            BenchmarkId::new("rank_pmf_table_legacy", format!("n{n}_k{k}")),
            &tree,
            |b, tree| b.iter(|| black_box(legacy_rank_table(tree, k))),
        );
        group.bench_with_input(
            BenchmarkId::new("rank_pmf_table_batch1", format!("n{n}_k{k}")),
            &tree,
            |b, tree| b.iter(|| black_box(batch_rank_table(tree, k, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("rank_pmf_table_batch_auto", format!("n{n}_k{k}")),
            &tree,
            |b, tree| b.iter(|| black_box(batch_rank_table(tree, k, 0))),
        );

        group.bench_with_input(
            BenchmarkId::new("kendall_tournament_legacy", format!("n{n}")),
            &(&tree, &keys),
            |b, (tree, keys)| b.iter(|| black_box(legacy_tournament(tree, keys))),
        );
        group.bench_with_input(
            BenchmarkId::new("kendall_tournament_batch1", format!("n{n}")),
            &(&tree, &keys),
            |b, (tree, keys)| b.iter(|| black_box(batch_tournament(tree, keys, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("kendall_tournament_batch_auto", format!("n{n}")),
            &(&tree, &keys),
            |b, (tree, keys)| b.iter(|| black_box(batch_tournament(tree, keys, 0))),
        );
    }

    for &n in &[100usize, 200] {
        let ctree = clustering_workload(n, 7);
        group.bench_with_input(
            BenchmarkId::new("coclustering_legacy", format!("n{n}")),
            &ctree,
            |b, tree| b.iter(|| black_box(legacy_cocluster(tree))),
        );
        group.bench_with_input(
            BenchmarkId::new("coclustering_batch1", format!("n{n}")),
            &ctree,
            |b, tree| b.iter(|| black_box(batch_cocluster(tree, 1))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rank_artifacts);
criterion_main!(benches);
