//! E11: consensus clustering — pairwise weight computation and pivot
//! clustering.

use cpdb_consensus::clustering::{pivot_clustering_best_of, CoClusteringWeights};
use cpdb_workloads::{random_clustering_tree, ClusteringConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[30usize, 60, 100] {
        let tree = random_clustering_tree(&ClusteringConfig {
            num_tuples: n,
            num_values: 5,
            cohesion: 0.7,
            absence: 0.1,
            seed: 17,
        });
        group.bench_with_input(BenchmarkId::new("pairwise_weights", n), &tree, |b, tree| {
            b.iter(|| black_box(CoClusteringWeights::from_tree(tree)))
        });
        let weights = CoClusteringWeights::from_tree(&tree);
        group.bench_with_input(
            BenchmarkId::new("pivot_best_of_16", n),
            &weights,
            |b, weights| {
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| black_box(pivot_clustering_best_of(weights, 16, &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
