//! E6: mean Top-k answers under the intersection metric — exact assignment
//! vs the Υ_H ranking shortcut.

use cpdb_bench::experiments::scaling_tree;
use cpdb_consensus::topk::intersection;
use cpdb_consensus::TopKContext;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_topk_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_intersection");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[200usize, 500] {
        for &k in &[10usize, 25] {
            let tree = scaling_tree(n, 5);
            let ctx = TopKContext::new(&tree, k);
            group.bench_with_input(
                BenchmarkId::new("assignment_exact", format!("n{n}_k{k}")),
                &ctx,
                |b, ctx| b.iter(|| black_box(intersection::mean_topk_intersection(ctx))),
            );
            group.bench_with_input(
                BenchmarkId::new("upsilon_h_approx", format!("n{n}_k{k}")),
                &ctx,
                |b, ctx| b.iter(|| black_box(intersection::mean_topk_upsilon_h(ctx))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk_intersection);
criterion_main!(benches);
