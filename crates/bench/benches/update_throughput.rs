//! Criterion benchmark for live-update maintenance: `apply_delta` (the
//! delta-aware keep/patch/invalidate path) vs a full rebuild of the same
//! warm artifact families, per delta kind. The `update_throughput` binary
//! emits the committed JSON report from the same workload module.

use cpdb_bench::update_throughput::{
    delta_suite, live_engine, live_tree, warm_maintained_artifacts,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_update_throughput(c: &mut Criterion) {
    let seed = 7;
    for n in [40usize, 120] {
        let tree = live_tree(n, seed);
        let warm = live_engine(tree.clone(), seed);
        warm_maintained_artifacts(&warm);
        let mut group = c.benchmark_group(format!("update_throughput/n{n}"));
        for (kind, delta) in delta_suite(&tree) {
            group.bench_function(format!("patch_{kind}"), |b| {
                b.iter(|| warm.apply_delta(&delta).expect("suite deltas are valid"))
            });
        }
        let (probability_epoch, _) = warm
            .apply_delta(&delta_suite(&tree)[0].1)
            .expect("suite deltas are valid");
        group.bench_function("full_rebuild", |b| {
            b.iter(|| {
                let fresh = live_engine(probability_epoch.tree().clone(), seed);
                warm_maintained_artifacts(&fresh);
                fresh
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_update_throughput);
criterion_main!(benches);
