//! E9: exact rank-distribution and pairwise-order computations on the
//! and/xor tree (the generating-function engine's hot path).

use cpdb_bench::experiments::scaling_tree;
use cpdb_model::TupleKey;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_rank_probs(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_probs");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[200usize, 500, 1000] {
        let tree = scaling_tree(n, 13);
        let key = tree.keys()[n / 2];
        group.bench_with_input(
            BenchmarkId::new("rank_pmf_single_tuple_k10", n),
            &(&tree, key),
            |b, (tree, key)| b.iter(|| black_box(tree.rank_pmf(*key, 10))),
        );
        let other = tree.keys()[n / 3];
        group.bench_with_input(
            BenchmarkId::new("pairwise_order_probability", n),
            &(&tree, key, other),
            |b, (tree, key, other)| {
                b.iter(|| black_box(tree.pairwise_order_probability(*key, *other)))
            },
        );
    }
    // The Figure 1(iii) correlated fixture as a micro-benchmark.
    let tree = cpdb_andxor::figure1::figure1_correlated_tree();
    group.bench_function("figure1iii_pairwise_t3_t2", |b| {
        b.iter(|| black_box(tree.pairwise_order_probability(TupleKey(3), TupleKey(2))))
    });
    group.finish();
}

criterion_group!(benches, bench_rank_probs);
criterion_main!(benches);
