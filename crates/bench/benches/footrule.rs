//! F2/E7: the footrule decomposition of Figure 2 and the assignment-based
//! mean answer.

use cpdb_bench::experiments::scaling_tree;
use cpdb_consensus::topk::footrule;
use cpdb_consensus::TopKContext;
use cpdb_rankagg::TopKList;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_footrule(c: &mut Criterion) {
    let mut group = c.benchmark_group("footrule");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[200usize, 500] {
        for &k in &[10usize, 25] {
            let tree = scaling_tree(n, 9);
            let ctx = TopKContext::new(&tree, k);
            group.bench_with_input(
                BenchmarkId::new("assignment_mean", format!("n{n}_k{k}")),
                &ctx,
                |b, ctx| b.iter(|| black_box(footrule::mean_topk_footrule(ctx))),
            );
            let candidate =
                TopKList::new(tree.keys().iter().take(k).map(|t| t.0).collect()).unwrap();
            group.bench_with_input(
                BenchmarkId::new("figure2_expected_distance", format!("n{n}_k{k}")),
                &(&ctx, &candidate),
                |b, (ctx, candidate)| {
                    b.iter(|| black_box(footrule::expected_footrule_distance(ctx, candidate)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_footrule);
criterion_main!(benches);
