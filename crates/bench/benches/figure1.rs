//! F1: regenerating the Figure 1 generating functions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("fig1i_world_size_distribution", |b| {
        let tree = cpdb_andxor::figure1::figure1_bid_tree();
        b.iter(|| black_box(tree.world_size_distribution()));
    });
    group.bench_function("fig1iii_rank_generating_function", |b| {
        let tree = cpdb_andxor::figure1::figure1_correlated_tree();
        b.iter(|| black_box(tree.rank_pmf(cpdb_model::TupleKey(3), 3)));
    });
    group.bench_function("fig1_full_table", |b| {
        b.iter(|| black_box(cpdb_bench::experiments::figure1_table().render()));
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
