//! E4: mean Top-k answers under the symmetric-difference metric (Theorem 3).

use cpdb_bench::experiments::scaling_tree;
use cpdb_consensus::topk::sym_diff;
use cpdb_consensus::TopKContext;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_topk_sym_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_sym_diff");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[200usize, 500, 1000] {
        for &k in &[5usize, 25] {
            let tree = scaling_tree(n, 7);
            group.bench_with_input(
                BenchmarkId::new("context_build", format!("n{n}_k{k}")),
                &(&tree, k),
                |b, (tree, k)| b.iter(|| black_box(TopKContext::new(tree, *k))),
            );
            let ctx = TopKContext::new(&tree, k);
            group.bench_with_input(
                BenchmarkId::new("theorem3_selection", format!("n{n}_k{k}")),
                &ctx,
                |b, ctx| b.iter(|| black_box(sym_diff::mean_topk_sym_diff(ctx))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk_sym_diff);
criterion_main!(benches);
