//! E12: the previously proposed ranking semantics vs the consensus answers.

use cpdb_bench::experiments::scaling_tree;
use cpdb_consensus::topk::{footrule, intersection, sym_diff};
use cpdb_consensus::{baselines, TopKContext};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_vs_consensus");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let n = 300usize;
    let k = 10usize;
    let tree = scaling_tree(n, 21);
    let ctx = TopKContext::new(&tree, k);
    group.bench_with_input(BenchmarkId::new("consensus_sym_diff", n), &ctx, |b, ctx| {
        b.iter(|| black_box(sym_diff::mean_topk_sym_diff(ctx)))
    });
    group.bench_with_input(BenchmarkId::new("consensus_footrule", n), &ctx, |b, ctx| {
        b.iter(|| black_box(footrule::mean_topk_footrule(ctx)))
    });
    group.bench_with_input(
        BenchmarkId::new("consensus_intersection", n),
        &ctx,
        |b, ctx| b.iter(|| black_box(intersection::mean_topk_intersection(ctx))),
    );
    group.bench_with_input(BenchmarkId::new("expected_score", n), &tree, |b, tree| {
        b.iter(|| black_box(baselines::expected_score_topk(tree, k)))
    });
    group.bench_with_input(
        BenchmarkId::new("expected_rank_5k_samples", n),
        &tree,
        |b, tree| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(baselines::expected_rank_topk(tree, k, 5_000, &mut rng)))
        },
    );
    group.bench_with_input(
        BenchmarkId::new("u_topk_5k_samples", n),
        &tree,
        |b, tree| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(baselines::u_topk(tree, k, 5_000, &mut rng)))
        },
    );
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
