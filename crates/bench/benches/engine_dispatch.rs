//! Engine dispatch overhead and the caching win: a 4-metric Top-k batch
//! through `ConsensusEngine::run_batch` (rank-probability PMFs computed once
//! and shared) against four direct free-function calls that each rebuild
//! their `TopKContext` from scratch.

use cpdb_bench::experiments::scaling_tree;
use cpdb_consensus::topk::{footrule, intersection, sym_diff};
use cpdb_consensus::TopKContext;
use cpdb_engine::{ConsensusEngineBuilder, Query, TopKMetric, Variant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The PMF-bound metrics: rank-context construction dominates each of these,
/// so sharing one context across the batch is the measurable win. (Kendall is
/// excluded from the cold comparison — its n² pairwise tournament dwarfs the
/// PMF cost on both sides and would mask the effect; it joins the warm-cache
/// measurement below instead.)
fn exact_metric_batch(k: usize) -> Vec<Query> {
    [
        TopKMetric::SymmetricDifference,
        TopKMetric::Intersection,
        TopKMetric::Footrule,
    ]
    .into_iter()
    .map(|metric| Query::TopK {
        k,
        metric,
        variant: Variant::Mean,
    })
    .collect()
}

/// All four metrics, for the warm-cache (steady-state serving) measurement.
fn full_metric_batch(k: usize) -> Vec<Query> {
    let mut queries = exact_metric_batch(k);
    queries.push(Query::TopK {
        k,
        metric: TopKMetric::Kendall,
        variant: Variant::Mean,
    });
    queries
}

fn bench_engine_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_dispatch");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[200usize, 500] {
        for &k in &[5usize, 10] {
            let tree = scaling_tree(n, 7);
            let queries = exact_metric_batch(k);

            // Batched: one engine per iteration (cold caches), so the
            // measured time includes exactly one PMF construction shared by
            // the three queries.
            group.bench_with_input(
                BenchmarkId::new("run_batch_shared_pmf", format!("n{n}_k{k}")),
                &(&tree, &queries),
                |b, (tree, queries)| {
                    b.iter(|| {
                        let engine = ConsensusEngineBuilder::new((*tree).clone())
                            .seed(7)
                            .kendall_distance_samples(64)
                            .build()
                            .expect("valid configuration");
                        let results = engine.run_batch(queries);
                        // The caching contract of the batch: the rank PMFs
                        // were built once, not once per query.
                        assert_eq!(engine.cache_stats().rank_context_builds, 1);
                        black_box(results)
                    })
                },
            );

            // Direct: three free-function calls, each rebuilding its context
            // the way pre-engine callers had to.
            group.bench_with_input(
                BenchmarkId::new("direct_rebuilt_contexts", format!("n{n}_k{k}")),
                &tree,
                |b, tree| {
                    b.iter(|| {
                        let ctx = TopKContext::new(tree, k);
                        let a = sym_diff::mean_topk_sym_diff(&ctx);
                        let ctx = TopKContext::new(tree, k);
                        let b2 = intersection::mean_topk_intersection(&ctx);
                        let ctx = TopKContext::new(tree, k);
                        let c2 = footrule::mean_topk_footrule(&ctx);
                        black_box((a, b2, c2))
                    })
                },
            );
        }
    }

    // Warm engine over all four metrics: the steady-state serving cost once
    // every artifact (PMF + Kendall tournament) is cached — the
    // batching/caching seam the ROADMAP asks for.
    for &n in &[200usize] {
        for &k in &[5usize, 10] {
            let tree = scaling_tree(n, 7);
            let queries = full_metric_batch(k);
            let warm = ConsensusEngineBuilder::new(tree)
                .seed(7)
                .kendall_distance_samples(64)
                .build()
                .expect("valid configuration");
            let _ = warm.run_batch(&queries);
            group.bench_with_input(
                BenchmarkId::new("run_batch_warm_cache", format!("n{n}_k{k}")),
                &queries,
                |b, queries| b.iter(|| black_box(warm.run_batch(queries))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_dispatch);
criterion_main!(benches);
