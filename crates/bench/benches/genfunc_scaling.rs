//! E13: raw generating-function engine scaling (polynomial products over
//! trees of increasing size, with and without truncation).

use cpdb_bench::experiments::scaling_tree;
use cpdb_genfunc::{Poly1, Truncation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_genfunc_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("genfunc_scaling");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("bernoulli_product_full", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut acc = Poly1::constant(1.0);
                    for i in 0..n {
                        let p = (i % 97) as f64 / 100.0;
                        acc.mul_bernoulli_assign(1.0 - p, p, Truncation::None);
                    }
                    black_box(acc)
                })
            },
        );
    }
    for &n in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("bernoulli_product_truncated_k25", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut acc = Poly1::constant(1.0);
                    for i in 0..n {
                        let p = (i % 97) as f64 / 100.0;
                        acc.mul_bernoulli_assign(1.0 - p, p, Truncation::Degree(25));
                    }
                    black_box(acc)
                })
            },
        );
    }
    for &n in &[500usize, 1000, 2000] {
        let tree = scaling_tree(n, 23);
        group.bench_with_input(
            BenchmarkId::new("tree_world_size_distribution", n),
            &tree,
            |b, tree| b.iter(|| black_box(tree.world_size_distribution())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_genfunc_scaling);
criterion_main!(benches);
