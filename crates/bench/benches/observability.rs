//! Observability micro-benchmarks under criterion's statistics: the hot
//! query path with the sink attached vs detached, the per-query span
//! bundle, the flight-recorder event record, and the snapshot/JSON
//! introspection path. The JSON emitter `src/bin/observability.rs`
//! measures the same costs with the 2% overhead gate.

use cpdb_bench::update_throughput::live_tree;
use cpdb_engine::{ConsensusEngine, ConsensusEngineBuilder, Query, TopKMetric, Variant};
use cpdb_obs::{EventKind, Obs};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 40;

fn engine(obs: Obs) -> ConsensusEngine {
    ConsensusEngineBuilder::new(live_tree(N, 7))
        .seed(7)
        .kendall_distance_samples(64)
        .obs(obs)
        .build()
        .expect("valid bench configuration")
}

fn bench_observability(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let query = Query::TopK {
        k: 10,
        metric: TopKMetric::SymmetricDifference,
        variant: Variant::Mean,
    };

    // The hot query path, sink detached vs attached: the two distributions
    // must be indistinguishable (the emitter gates the delta at 2%).
    let plain = engine(Obs::disabled());
    let _ = plain.run(&query).expect("bench query is valid");
    group.bench_function("query_sink_detached", |b| {
        b.iter(|| black_box(plain.run(&query).expect("bench query is valid")));
    });
    let obs = Obs::enabled();
    let instrumented = engine(obs.clone());
    let _ = instrumented.run(&query).expect("bench query is valid");
    group.bench_function("query_sink_attached", |b| {
        b.iter(|| black_box(instrumented.run(&query).expect("bench query is valid")));
    });

    // What one query pays the sink: the full span bundle (two clock
    // reads, one histogram record, a start/finish event pair).
    let hist = obs.histogram("bench.obs.span");
    group.bench_function("per_query_span_bundle", |b| {
        b.iter(|| {
            black_box(obs.span_with_events(
                &hist,
                EventKind::QueryStart,
                EventKind::QueryFinish,
                || "bench".to_string(),
            ))
        });
    });

    // One flight-recorder event with the ring at capacity (eviction
    // included), and the introspection path cpdb_stat runs.
    group.bench_function("flight_recorder_event", |b| {
        b.iter(|| obs.event_with(EventKind::WalAppend, || "bench event".to_string()));
    });
    let snapshot = instrumented.metrics_snapshot();
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(obs.snapshot()));
    });
    group.bench_function("snapshot_to_json", |b| {
        b.iter(|| black_box(snapshot.to_json()));
    });

    group.finish();
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
