//! Persistence round-trip: warm start (snapshot decode + WAL replay) vs the
//! cold rebuild it replaces, plus the snapshot write itself.

use cpdb_bench::persistence::scratch_engine;
use cpdb_bench::update_throughput::{live_engine, warm_maintained_artifacts};
use cpdb_live::LiveEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_persistence(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistence");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[30usize, 60] {
        // A durable engine with a WAL tail of one delta per kind.
        let (dir, deltas_applied) = scratch_engine(n, 7);
        group.bench_with_input(BenchmarkId::new("warm_open", n), &dir, |b, dir| {
            b.iter(|| {
                let reopened = LiveEngine::open(dir).expect("warm reopen");
                assert_eq!(reopened.epoch(), deltas_applied as u64);
                black_box(reopened)
            })
        });
        group.bench_with_input(BenchmarkId::new("snapshot_write", n), &dir, |b, dir| {
            let live = LiveEngine::open(dir).expect("warm reopen");
            b.iter(|| black_box(live.persist_snapshot().expect("snapshot write")))
        });
        let final_tree = LiveEngine::open(&dir)
            .expect("warm reopen")
            .snapshot()
            .tree()
            .clone();
        group.bench_with_input(BenchmarkId::new("cold_build", n), &final_tree, |b, tree| {
            b.iter(|| {
                let cold = live_engine(tree.clone(), 7);
                warm_maintained_artifacts(&cold);
                black_box(cold)
            })
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
