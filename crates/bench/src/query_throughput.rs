//! Sustained query-throughput workload shared by the `query_throughput`
//! Criterion bench and the `query_throughput` JSON emitter binary, so both
//! report the same computation.
//!
//! The workload models production serving traffic against one
//! [`ConsensusEngine`]: mixed batches of Top-k queries (all four metrics plus
//! the symmetric-difference median), set-consensus, aggregate, clustering,
//! and baseline queries at several `k`, with each distinct query repeated
//! `dup` times — real traffic repeats popular queries, which is exactly what
//! the batch executor's dedup amortises. Two executors answer the same batch:
//!
//! * **serial** — [`ConsensusEngine::run_batch_serial`], the plain `run`
//!   loop (one query at a time, no prefetch, no dedup);
//! * **parallel** — [`ConsensusEngine::run_batch`], the two-phase executor
//!   (concurrent artifact prefetch, deduplicated fan-out dispatch).
//!
//! Both are measured **cold** (fresh engine, artifact builds included) and
//! **warm** (engine already holds every artifact — the paper's serving
//! regime, where consensus answers are cheap once the generating-function
//! work is done). Answers are bit-identical between the two executors; the
//! emitter asserts it on every run.

use cpdb_consensus::aggregate::GroupByInstance;
use cpdb_engine::{
    Answer, BaselineKind, ConsensusEngine, ConsensusEngineBuilder, EngineError, Query, SetMetric,
    TopKMetric, Variant,
};
use std::time::Instant;

/// The scored-BID serving tree (`n` blocks × 2 alternatives, the same
/// `scaling_tree` family the artifact benches use).
pub fn serving_tree(n: usize, seed: u64) -> cpdb_andxor::AndXorTree {
    crate::experiments::scaling_tree(n, seed)
}

/// A deterministic group-by instance so aggregate queries participate in the
/// mixed traffic.
pub fn serving_groupby(groups: usize, tuples: usize) -> GroupByInstance {
    let probs: Vec<Vec<f64>> = (0..tuples)
        .map(|t| {
            let mut row: Vec<f64> = (0..groups)
                .map(|v| ((t * 7 + v * 13) % 10) as f64 + 1.0)
                .collect();
            let total: f64 = row.iter().sum();
            row.iter_mut().for_each(|p| *p /= total);
            row
        })
        .collect();
    GroupByInstance::new(probs).expect("rows are normalised")
}

/// Builds the serving engine for the workload (`threads` = builder knob, `0`
/// = auto).
pub fn serving_engine(n: usize, seed: u64, threads: usize) -> ConsensusEngine {
    ConsensusEngineBuilder::new(serving_tree(n, seed))
        .seed(seed)
        .kendall_distance_samples(64)
        .groupby(serving_groupby(4, 12))
        .threads(threads)
        .build()
        .expect("valid serving configuration")
}

/// The mixed serving batch: every query family over the given `k`s, each
/// distinct query repeated `dup` times (interleaved, as traffic would
/// arrive). `dup = 1` gives an all-unique batch.
pub fn mixed_batch(ks: &[usize], dup: usize) -> Vec<Query> {
    let mut distinct = Vec::new();
    for &k in ks {
        for metric in [
            TopKMetric::SymmetricDifference,
            TopKMetric::Intersection,
            TopKMetric::Footrule,
            TopKMetric::Kendall,
        ] {
            distinct.push(Query::TopK {
                k,
                metric,
                variant: Variant::Mean,
            });
        }
        distinct.push(Query::TopK {
            k,
            metric: TopKMetric::SymmetricDifference,
            variant: Variant::Median,
        });
        distinct.push(Query::Baseline {
            kind: BaselineKind::GlobalTopK { k },
        });
        distinct.push(Query::Baseline {
            kind: BaselineKind::ProbabilisticThreshold { k, threshold: 0.4 },
        });
    }
    distinct.push(Query::SetConsensus {
        metric: SetMetric::SymmetricDifference,
        variant: Variant::Mean,
    });
    distinct.push(Query::SetConsensus {
        metric: SetMetric::Jaccard,
        variant: Variant::Mean,
    });
    distinct.push(Query::Aggregate {
        variant: Variant::Mean,
    });
    distinct.push(Query::Clustering { restarts: 4 });
    let mut batch = Vec::with_capacity(distinct.len() * dup.max(1));
    for _ in 0..dup.max(1) {
        batch.extend(distinct.iter().cloned());
    }
    batch
}

/// Asserts the two executors returned bit-identical batches (the contract
/// every throughput number in the report relies on).
pub fn assert_identical(
    serial: &[Result<Answer, EngineError>],
    parallel: &[Result<Answer, EngineError>],
) {
    assert_eq!(
        serial, parallel,
        "parallel run_batch diverged from the serial loop"
    );
}

/// Queries per second of the best of `reps` timed runs of `f` over a batch
/// of `batch_len` queries (minimum wall-clock, the least-noisy estimator).
pub fn qps_best_of<T>(reps: usize, batch_len: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    batch_len as f64 / best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_batch_executors_agree_and_dedup_counts() {
        let engine = serving_engine(16, 3, 2);
        let batch = mixed_batch(&[2, 4], 3);
        let parallel = engine.run_batch(&batch);
        let serial = serving_engine(16, 3, 1).run_batch_serial(&batch);
        assert_identical(&serial, &parallel);
        // dup = 3 ⇒ two thirds of the batch are dedup clones.
        assert_eq!(
            engine.cache_stats().batch_dedup_hits,
            batch.len() / 3 * 2,
            "{:?}",
            engine.cache_stats()
        );
    }

    #[test]
    fn qps_counts_the_whole_batch() {
        let qps = qps_best_of(2, 100, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!(qps > 0.0 && qps.is_finite());
    }
}
