//! The experiment implementations (F1, F2, E1–E13 of DESIGN.md).
//!
//! Every function returns one or more [`Table`]s; the `experiments` binary
//! prints them and `EXPERIMENTS.md` records a captured run next to what the
//! paper states. The Criterion benches in `benches/` time the same building
//! blocks.

use crate::table::Table;
use cpdb_andxor::figure1;
use cpdb_andxor::AndXorTree;
use cpdb_consensus::aggregate::GroupByInstance;
use cpdb_consensus::clustering::brute_force_clustering;
use cpdb_consensus::topk::{footrule, intersection, median_dp, sym_diff};
use cpdb_consensus::{jaccard, oracle, set_distance, TopKContext};
use cpdb_engine::{
    BaselineKind, ConsensusEngine, ConsensusEngineBuilder, IntersectionStrategy, KendallStrategy,
    Query, SetMetric, TopKMetric, Variant,
};
use cpdb_model::{TupleKey, WorldModel};
use cpdb_rankagg::metrics::{footrule_distance, intersection_metric, kendall_tau_topk};
use cpdb_rankagg::TopKList;
use cpdb_workloads::{
    groupby_tree, random_clustering_tree, random_groupby_instance, random_scored_bid_tree,
    random_tuple_independent, BidConfig, ClusteringConfig, GroupByConfig, ProbabilityDistribution,
    ScoreDistribution, TupleIndependentConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Default small-instance seeds used by the validation experiments.
pub const VALIDATION_SEEDS: [u64; 5] = [11, 23, 37, 53, 71];

fn fmt(x: f64) -> String {
    format!("{x:.6}")
}

fn fmt_ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Builds the standard scored-BID workload tree used by the Top-k scaling
/// experiments.
pub fn scaling_tree(num_blocks: usize, seed: u64) -> AndXorTree {
    random_scored_bid_tree(&BidConfig {
        num_blocks,
        alternatives_per_block: 2,
        maybe_fraction: 0.3,
        scores: ScoreDistribution::Uniform { lo: 0.0, hi: 1e6 },
        seed,
    })
}

/// Builds a small BID tree suitable for exhaustive enumeration.
pub fn small_tree(seed: u64) -> AndXorTree {
    random_scored_bid_tree(&BidConfig {
        num_blocks: 5,
        alternatives_per_block: 2,
        maybe_fraction: 0.4,
        scores: ScoreDistribution::Uniform { lo: 0.0, hi: 100.0 },
        seed,
    })
}

/// The standard engine the validation experiments run their queries through
/// (seeded so randomised paths are reproducible).
pub fn validation_engine(tree: AndXorTree, seed: u64) -> ConsensusEngine {
    ConsensusEngineBuilder::new(tree)
        .seed(seed)
        .build()
        .expect("default engine configuration is valid")
}

/// F1 — reproduces both generating functions of Figure 1.
pub fn figure1_table() -> Table {
    let mut t = Table::new(
        "F1: Figure 1 generating functions (paper value vs computed)",
        &["quantity", "paper", "computed"],
    );
    let tree_i = figure1::figure1_bid_tree();
    let dist = tree_i.world_size_distribution();
    for (size, coeff) in figure1::FIGURE1_I_SIZE_DISTRIBUTION {
        t.add_row(vec![
            format!("Fig 1(i) Pr(|pw| = {size})"),
            fmt(coeff),
            fmt(dist.coeff(size)),
        ]);
    }
    let tree_iii = figure1::figure1_correlated_tree();
    let poly = tree_iii.genfunc2(
        cpdb_genfunc::Truncation::None,
        cpdb_genfunc::Truncation::None,
        |a| {
            if *a == cpdb_model::Alternative::new(3, 6.0) {
                cpdb_andxor::VarAssignment::Y
            } else if a.value.0 > 6.0 {
                cpdb_andxor::VarAssignment::X
            } else {
                cpdb_andxor::VarAssignment::One
            }
        },
    );
    for ((i, j), coeff) in figure1::FIGURE1_III_COEFFICIENTS {
        t.add_row(vec![
            format!("Fig 1(iii) coefficient of x^{i} y^{j}"),
            fmt(coeff),
            fmt(poly.coeff(i, j)),
        ]);
    }
    t.add_row(vec![
        "Fig 1(iii) Pr(r(t3,6) = 1)".to_string(),
        fmt(0.3),
        fmt(poly.coeff(0, 1)),
    ]);
    t
}

/// F2 — validates the Figure 2 closed form of `E[F*(τ, τ_pw)]` against
/// brute-force enumeration on random instances.
pub fn figure2_table() -> Table {
    let mut t = Table::new(
        "F2: Figure 2 footrule decomposition vs enumeration (corrected sign)",
        &[
            "seed",
            "k",
            "candidate",
            "closed form",
            "enumeration",
            "|diff|",
        ],
    );
    for &seed in &VALIDATION_SEEDS {
        let tree = small_tree(seed);
        let ws = tree.enumerate_worlds();
        for k in [2usize, 3] {
            let ctx = TopKContext::new(&tree, k);
            let keys: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
            let candidate = TopKList::new(keys.into_iter().take(k).collect()).unwrap();
            let closed = footrule::expected_footrule_distance(&ctx, &candidate);
            let direct = oracle::expected_topk_distance(&candidate, &ws, k, footrule_distance);
            t.add_row(vec![
                seed.to_string(),
                k.to_string(),
                format!("{candidate}"),
                fmt(closed),
                fmt(direct),
                format!("{:.2e}", (closed - direct).abs()),
            ]);
        }
    }
    t
}

/// E1/E2 — consensus worlds under the symmetric difference: Theorem 2 /
/// Corollary 1 validation plus scaling of the closed-form computation.
pub fn set_distance_tables() -> Vec<Table> {
    vec![
        set_distance_validation_table(),
        set_distance_scaling_table(),
    ]
}

/// E1/E2 validation table only (cheap; used by the harness self-tests).
pub fn set_distance_validation_table() -> Table {
    let mut validation = Table::new(
        "E1/E2: mean world under symmetric difference (engine) vs brute force",
        &[
            "seed",
            "n alts",
            "engine E[d]",
            "brute force E[d]",
            "optimal?",
        ],
    );
    for &seed in &VALIDATION_SEEDS {
        let db = random_tuple_independent(&TupleIndependentConfig {
            num_tuples: 8,
            probabilities: ProbabilityDistribution::NearHalf,
            scores: ScoreDistribution::Uniform { lo: 0.0, hi: 100.0 },
            seed,
        });
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        let ws = db.enumerate_worlds();
        let engine = validation_engine(tree, seed);
        let answer = engine
            .run(&Query::SetConsensus {
                metric: SetMetric::SymmetricDifference,
                variant: Variant::Mean,
            })
            .expect("supported");
        let cost = answer.expected_distance;
        let (_, brute) =
            oracle::brute_force_mean_world(&ws, |a, b| a.symmetric_difference(b) as f64);
        validation.add_row(vec![
            seed.to_string(),
            db.len().to_string(),
            fmt(cost),
            fmt(brute),
            ((cost - brute).abs() < 1e-9).to_string(),
        ]);
    }
    validation
}

/// E1 scaling table only.
pub fn set_distance_scaling_table() -> Table {
    let mut scaling = Table::new(
        "E1 scaling: mean-world computation time (closed form)",
        &["n tuples", "time (ms)"],
    );
    for n in [1_000usize, 10_000, 100_000] {
        let db = random_tuple_independent(&TupleIndependentConfig {
            num_tuples: n,
            ..Default::default()
        });
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        let start = Instant::now();
        let mean = set_distance::mean_world(&tree);
        let elapsed = start.elapsed().as_secs_f64();
        scaling.add_row(vec![
            format!("{n} ({} in answer)", mean.len()),
            fmt_ms(elapsed),
        ]);
    }
    scaling
}

/// E3 — Jaccard mean world (Lemmas 1–2) validation and scaling.
pub fn jaccard_tables() -> Vec<Table> {
    vec![jaccard_validation_table(), jaccard_scaling_table()]
}

/// E3 validation table only.
pub fn jaccard_validation_table() -> Table {
    let mut validation = Table::new(
        "E3: Jaccard mean world (engine prefix scan) vs brute force",
        &["seed", "n", "engine E[d]", "brute force E[d]", "optimal?"],
    );
    for &seed in &VALIDATION_SEEDS {
        let db = random_tuple_independent(&TupleIndependentConfig {
            num_tuples: 9,
            probabilities: ProbabilityDistribution::Uniform { lo: 0.1, hi: 0.95 },
            scores: ScoreDistribution::Uniform { lo: 0.0, hi: 100.0 },
            seed,
        });
        let ws = db.enumerate_worlds();
        let tree = cpdb_andxor::convert::from_tuple_independent(&db).unwrap();
        let engine = validation_engine(tree, seed);
        let answer = engine
            .run(&Query::SetConsensus {
                metric: SetMetric::Jaccard,
                variant: Variant::Mean,
            })
            .expect("supported");
        let (_, brute) = oracle::brute_force_mean_world(&ws, |a, b| a.jaccard_distance(b));
        validation.add_row(vec![
            seed.to_string(),
            db.len().to_string(),
            fmt(answer.expected_distance),
            fmt(brute),
            ((answer.expected_distance - brute).abs() < 1e-9).to_string(),
        ]);
    }
    validation
}

/// E3 scaling table only.
pub fn jaccard_scaling_table() -> Table {
    let mut scaling = Table::new(
        "E3 scaling: Jaccard mean world (n prefixes × O(n²) genfunc each)",
        &["n tuples", "time (ms)"],
    );
    for n in [50usize, 100, 200] {
        let db = random_tuple_independent(&TupleIndependentConfig {
            num_tuples: n,
            ..Default::default()
        });
        let start = Instant::now();
        let _ = jaccard::mean_world_tuple_independent(&db);
        scaling.add_row(vec![n.to_string(), fmt_ms(start.elapsed().as_secs_f64())]);
    }
    scaling
}

/// E4 — mean Top-k under the symmetric difference (Theorem 3): validation
/// plus scaling in `n` and `k`.
pub fn topk_sym_diff_tables() -> Vec<Table> {
    vec![
        topk_sym_diff_validation_table(),
        topk_sym_diff_scaling_table(),
    ]
}

/// E4 validation table only.
pub fn topk_sym_diff_validation_table() -> Table {
    let mut validation = Table::new(
        "E4: mean Top-k under d_Δ (Theorem 3, engine) vs brute force",
        &["seed", "k", "engine E[d]", "brute force E[d]", "optimal?"],
    );
    for &seed in &VALIDATION_SEEDS {
        let tree = small_tree(seed);
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        let engine = validation_engine(tree, seed);
        for k in [2usize, 3] {
            let answer = engine
                .run(&Query::TopK {
                    k,
                    metric: TopKMetric::SymmetricDifference,
                    variant: Variant::Mean,
                })
                .expect("supported");
            let cost = answer.expected_distance;
            let (_, brute) = oracle::brute_force_mean_topk(&items, k, &ws, |a, b| {
                oracle::sym_diff_distance_fixed_k(k, a, b)
            });
            validation.add_row(vec![
                seed.to_string(),
                k.to_string(),
                fmt(cost),
                fmt(brute),
                ((cost - brute).abs() < 1e-9).to_string(),
            ]);
        }
    }
    validation
}

/// E4 scaling table only.
pub fn topk_sym_diff_scaling_table() -> Table {
    let mut scaling = Table::new(
        "E4 scaling: Theorem 3 answer (rank distributions + selection)",
        &["n blocks", "k", "time (ms)"],
    );
    for &n in &[200usize, 500, 1000] {
        for &k in &[5usize, 25] {
            let tree = scaling_tree(n, 7);
            let start = Instant::now();
            let ctx = TopKContext::new(&tree, k);
            let _ = sym_diff::mean_topk_sym_diff(&ctx);
            scaling.add_row(vec![
                n.to_string(),
                k.to_string(),
                fmt_ms(start.elapsed().as_secs_f64()),
            ]);
        }
    }
    scaling
}

/// E5 — median Top-k under the symmetric difference (Theorem 4 DP).
pub fn topk_median_tables() -> Vec<Table> {
    let mut validation = Table::new(
        "E5: median Top-k under d_Δ (Theorem 4 DP, engine) vs brute force",
        &["seed", "k", "engine E[d]", "brute force E[d]", "optimal?"],
    );
    for &seed in &VALIDATION_SEEDS {
        let tree = small_tree(seed);
        let ws = tree.enumerate_worlds();
        let engine = validation_engine(tree, seed);
        for k in [2usize, 3] {
            let answer = engine
                .run(&Query::TopK {
                    k,
                    metric: TopKMetric::SymmetricDifference,
                    variant: Variant::Median,
                })
                .expect("supported");
            let median = answer.value.as_topk().expect("Top-k answer");
            let cost = oracle::expected_topk_distance(median, &ws, k, |a, b| {
                oracle::sym_diff_distance_fixed_k(k, a, b)
            });
            let (_, brute) = oracle::brute_force_median_topk(&ws, k, |a, b| {
                oracle::sym_diff_distance_fixed_k(k, a, b)
            });
            validation.add_row(vec![
                seed.to_string(),
                k.to_string(),
                fmt(cost),
                fmt(brute),
                ((cost - brute).abs() < 1e-9).to_string(),
            ]);
        }
    }

    let mut scaling = Table::new(
        "E5 scaling: Theorem 4 DP (threshold loop × tree knapsack)",
        &["n blocks", "k", "time (ms)"],
    );
    for &n in &[50usize, 100, 200] {
        for &k in &[5usize, 10] {
            let tree = scaling_tree(n, 3);
            let ctx = TopKContext::new(&tree, k);
            let start = Instant::now();
            let _ = median_dp::median_topk_sym_diff(&tree, &ctx);
            scaling.add_row(vec![
                n.to_string(),
                k.to_string(),
                fmt_ms(start.elapsed().as_secs_f64()),
            ]);
        }
    }
    vec![validation, scaling]
}

/// E6 — intersection-metric mean answer: optimality of the assignment
/// formulation and measured quality of the Υ_H approximation.
pub fn topk_intersection_tables() -> Vec<Table> {
    let mut validation = Table::new(
        "E6: intersection-metric mean Top-k (engine assignment) vs brute force; Υ_H quality",
        &[
            "seed",
            "k",
            "assignment E[d]",
            "brute E[d]",
            "optimal?",
            "A(τ_H)/A(τ*)",
            "1/H_k bound",
        ],
    );
    for &seed in &VALIDATION_SEEDS {
        let tree = small_tree(seed);
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        // Two engines over the same tree: the exact assignment solver and the
        // Υ_H shortcut, selected by the builder's approximation knob.
        let exact_engine = validation_engine(tree.clone(), seed);
        let upsilon_engine = ConsensusEngineBuilder::new(tree)
            .seed(seed)
            .intersection_strategy(IntersectionStrategy::Harmonic)
            .build()
            .expect("valid configuration");
        for k in [2usize, 3] {
            let query = Query::TopK {
                k,
                metric: TopKMetric::Intersection,
                variant: Variant::Mean,
            };
            let answer = exact_engine.run(&query).expect("supported");
            let opt = answer.value.as_topk().expect("Top-k answer").clone();
            let cost = answer.expected_distance;
            let (_, brute) = oracle::brute_force_mean_topk(&items, k, &ws, intersection_metric);
            let approx_answer = upsilon_engine.run(&query).expect("supported");
            let approx = approx_answer.value.as_topk().expect("Top-k answer");
            let ctx = exact_engine.context(k).expect("k is in range").clone();
            let ratio = intersection::objective_a(&ctx, approx)
                / intersection::objective_a(&ctx, &opt).max(1e-12);
            validation.add_row(vec![
                seed.to_string(),
                k.to_string(),
                fmt(cost),
                fmt(brute),
                ((cost - brute).abs() < 1e-9).to_string(),
                fmt(ratio),
                fmt(1.0 / intersection::harmonic(k)),
            ]);
        }
    }

    let mut scaling = Table::new(
        "E6 scaling: assignment (Hungarian) vs Υ_H ranking shortcut",
        &["n blocks", "k", "assignment (ms)", "Υ_H (ms)"],
    );
    for &n in &[200usize, 500] {
        for &k in &[10usize, 25] {
            let tree = scaling_tree(n, 5);
            let ctx = TopKContext::new(&tree, k);
            let start = Instant::now();
            let _ = intersection::mean_topk_intersection(&ctx);
            let t_assign = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let _ = intersection::mean_topk_upsilon_h(&ctx);
            let t_upsilon = start.elapsed().as_secs_f64();
            scaling.add_row(vec![
                n.to_string(),
                k.to_string(),
                fmt_ms(t_assign),
                fmt_ms(t_upsilon),
            ]);
        }
    }
    vec![validation, scaling]
}

/// E7 — footrule mean answer optimality (the algorithmic side of Figure 2).
pub fn topk_footrule_tables() -> Vec<Table> {
    let mut validation = Table::new(
        "E7: footrule mean Top-k (engine assignment) vs brute force",
        &["seed", "k", "engine E[F*]", "brute E[F*]", "optimal?"],
    );
    for &seed in &VALIDATION_SEEDS {
        let tree = small_tree(seed);
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        let engine = validation_engine(tree, seed);
        for k in [2usize, 3] {
            let answer = engine
                .run(&Query::TopK {
                    k,
                    metric: TopKMetric::Footrule,
                    variant: Variant::Mean,
                })
                .expect("supported");
            let cost = answer.expected_distance;
            let (_, brute) = oracle::brute_force_mean_topk(&items, k, &ws, footrule_distance);
            validation.add_row(vec![
                seed.to_string(),
                k.to_string(),
                fmt(cost),
                fmt(brute),
                ((cost - brute).abs() < 1e-9).to_string(),
            ]);
        }
    }
    let mut scaling = Table::new(
        "E7 scaling: footrule assignment",
        &["n blocks", "k", "time (ms)"],
    );
    for &n in &[200usize, 500] {
        for &k in &[10usize, 25] {
            let tree = scaling_tree(n, 9);
            let ctx = TopKContext::new(&tree, k);
            let start = Instant::now();
            let _ = footrule::mean_topk_footrule(&ctx);
            scaling.add_row(vec![
                n.to_string(),
                k.to_string(),
                fmt_ms(start.elapsed().as_secs_f64()),
            ]);
        }
    }
    vec![validation, scaling]
}

/// E8 — Kendall-tau consensus: measured approximation ratios of the pivot
/// and footrule answers against the brute-force optimum.
pub fn topk_kendall_table() -> Table {
    let mut t = Table::new(
        "E8: Kendall-tau consensus answers (engine strategies) — measured approximation ratios",
        &[
            "seed",
            "k",
            "optimal E[d_K]",
            "pivot ratio",
            "footrule ratio",
        ],
    );
    for &seed in &VALIDATION_SEEDS {
        let tree = small_tree(seed);
        let ws = tree.enumerate_worlds();
        let items: Vec<u64> = tree.keys().iter().map(|t| t.0).collect();
        // One engine per Kendall strategy knob.
        let pivot_engine = validation_engine(tree.clone(), seed);
        let proxy_engine = ConsensusEngineBuilder::new(tree)
            .seed(seed)
            .kendall_strategy(KendallStrategy::FootruleProxy)
            .build()
            .expect("valid configuration");
        for k in [2usize, 3] {
            let query = Query::TopK {
                k,
                metric: TopKMetric::Kendall,
                variant: Variant::Mean,
            };
            let (_, opt) = oracle::brute_force_mean_topk(&items, k, &ws, kendall_tau_topk);
            let pivot = pivot_engine.run(&query).expect("supported");
            let pivot_cost = oracle::expected_topk_distance(
                pivot.value.as_topk().expect("Top-k answer"),
                &ws,
                k,
                kendall_tau_topk,
            );
            let foot = proxy_engine.run(&query).expect("supported");
            let foot_cost = oracle::expected_topk_distance(
                foot.value.as_topk().expect("Top-k answer"),
                &ws,
                k,
                kendall_tau_topk,
            );
            let denom = opt.max(1e-12);
            t.add_row(vec![
                seed.to_string(),
                k.to_string(),
                fmt(opt),
                fmt(pivot_cost / denom),
                fmt(foot_cost / denom),
            ]);
        }
    }
    t
}

/// E9 — pairwise order probabilities: generating-function values vs
/// Monte-Carlo estimates on a non-enumerable instance.
pub fn rank_probability_table() -> Table {
    let mut t = Table::new(
        "E9: Pr(r(t_i) < r(t_j)) — generating functions vs Monte-Carlo (100k samples)",
        &["pair", "genfunc", "sampled", "|diff|"],
    );
    let tree = scaling_tree(60, 13);
    let keys = tree.keys();
    let mut rng = StdRng::seed_from_u64(99);
    let samples = 100_000;
    // Estimate for the five highest-presence tuples to keep the table small.
    let probs = tree.key_presence_probabilities();
    let mut sorted: Vec<TupleKey> = keys.clone();
    sorted.sort_by(|a, b| probs[b].partial_cmp(&probs[a]).unwrap());
    let chosen: Vec<TupleKey> = sorted.into_iter().take(4).collect();
    let mut counts = vec![vec![0usize; chosen.len()]; chosen.len()];
    for _ in 0..samples {
        let w = tree.sample_world(&mut rng);
        for (x, &a) in chosen.iter().enumerate() {
            for (y, &b) in chosen.iter().enumerate() {
                if x == y {
                    continue;
                }
                match (w.rank_of(a), w.rank_of(b)) {
                    (Some(ra), Some(rb)) if ra < rb => counts[x][y] += 1,
                    (Some(_), None) => counts[x][y] += 1,
                    _ => {}
                }
            }
        }
    }
    for (x, &a) in chosen.iter().enumerate() {
        for (y, &b) in chosen.iter().enumerate() {
            if x >= y {
                continue;
            }
            let exact = tree.pairwise_order_probability(a, b);
            let sampled = counts[x][y] as f64 / samples as f64;
            t.add_row(vec![
                format!("Pr(r({a}) < r({b}))"),
                fmt(exact),
                fmt(sampled),
                format!("{:.4}", (exact - sampled).abs()),
            ]);
        }
    }
    t
}

/// E10 — aggregate consensus: Lemma 3 / Theorem 5 optimality of the rounded
/// vector among possible answers, measured 4-approximation ratio, scaling.
pub fn aggregate_tables() -> Vec<Table> {
    let mut validation = Table::new(
        "E10: group-by median 4-approximation (Theorem 5 / Corollary 2, engine)",
        &[
            "seed",
            "n×m",
            "approx E[d²]",
            "optimal median E[d²]",
            "ratio",
            "≤ 4?",
        ],
    );
    for &seed in &VALIDATION_SEEDS {
        let probs = random_groupby_instance(&GroupByConfig {
            num_tuples: 9,
            num_groups: 3,
            skew: 1.0,
            seed,
        });
        let inst = GroupByInstance::new(probs.clone()).unwrap();
        let engine = ConsensusEngineBuilder::new(groupby_tree(&probs))
            .seed(seed)
            .groupby(inst.clone())
            .build()
            .expect("valid configuration");
        let approx = engine
            .run(&Query::Aggregate {
                variant: Variant::Median,
            })
            .expect("instance attached");
        let approx_cost = approx.expected_distance;
        let (_, opt) = inst.median_answer_brute_force();
        let ratio = approx_cost / opt.max(1e-12);
        validation.add_row(vec![
            seed.to_string(),
            format!("{}×{}", inst.num_tuples(), inst.num_groups()),
            fmt(approx_cost),
            fmt(opt),
            fmt(ratio),
            (ratio <= 4.0 + 1e-9).to_string(),
        ]);
    }

    let mut scaling = Table::new(
        "E10 scaling: min-cost-flow rounding",
        &["n tuples", "m groups", "time (ms)"],
    );
    for &(n, m) in &[(1_000usize, 8usize), (2_000, 16), (5_000, 32)] {
        let probs = random_groupby_instance(&GroupByConfig {
            num_tuples: n,
            num_groups: m,
            skew: 1.2,
            seed: 5,
        });
        let inst = GroupByInstance::new(probs).unwrap();
        let start = Instant::now();
        let _ = inst.closest_possible_answer().unwrap();
        scaling.add_row(vec![
            n.to_string(),
            m.to_string(),
            fmt_ms(start.elapsed().as_secs_f64()),
        ]);
    }
    vec![validation, scaling]
}

/// E11 — consensus clustering: measured approximation ratio of the pivot
/// algorithm and scaling of the weight computation.
pub fn clustering_tables() -> Vec<Table> {
    let mut validation = Table::new(
        "E11: consensus clustering (engine) — pivot vs brute-force optimum",
        &["seed", "n", "pivot E[d]", "optimal E[d]", "ratio"],
    );
    for &seed in &VALIDATION_SEEDS {
        let tree = random_clustering_tree(&ClusteringConfig {
            num_tuples: 7,
            num_values: 3,
            cohesion: 0.75,
            absence: 0.1,
            seed,
        });
        let engine = validation_engine(tree, seed);
        let answer = engine
            .run(&Query::Clustering { restarts: 32 })
            .expect("supported");
        let (_, opt_cost) = brute_force_clustering(engine.coclustering_weights());
        validation.add_row(vec![
            seed.to_string(),
            "7".to_string(),
            fmt(answer.expected_distance),
            fmt(opt_cost),
            fmt(answer.expected_distance / opt_cost.max(1e-12)),
        ]);
    }

    let mut scaling = Table::new(
        "E11 scaling: pairwise weight computation (cold engine) + pivot reusing them (warm)",
        &["n tuples", "weights (ms)", "pivot (ms)"],
    );
    for &n in &[30usize, 60, 100] {
        let tree = random_clustering_tree(&ClusteringConfig {
            num_tuples: n,
            num_values: 5,
            cohesion: 0.7,
            absence: 0.1,
            seed: 17,
        });
        let engine = validation_engine(tree, 17);
        let start = Instant::now();
        let _ = engine.coclustering_weights();
        let t_weights = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let _ = engine
            .run(&Query::Clustering { restarts: 16 })
            .expect("supported");
        let t_pivot = start.elapsed().as_secs_f64();
        scaling.add_row(vec![n.to_string(), fmt_ms(t_weights), fmt_ms(t_pivot)]);
    }
    vec![validation, scaling]
}

/// E12 — how much the previously proposed ranking semantics diverge from the
/// consensus answers, measured by normalised symmetric difference and by
/// each answer's expected footrule distance.
pub fn baselines_table() -> Table {
    let mut t = Table::new(
        "E12: baseline ranking semantics vs consensus Top-k answers \
         (n = 300, k = 10, one engine batch)",
        &[
            "semantics",
            "overlap with d_Δ consensus",
            "E[d_Δ]",
            "E[F*] (footrule)",
        ],
    );
    let tree = scaling_tree(300, 21);
    let k = 10;
    let engine = validation_engine(tree, 7);
    // Consensus answers and baselines flow through one heterogeneous batch;
    // the rank-probability PMFs are computed once for all eight queries.
    let batch: Vec<(&str, Query)> = vec![
        (
            "consensus d_Δ / Global Top-k",
            Query::TopK {
                k,
                metric: TopKMetric::SymmetricDifference,
                variant: Variant::Mean,
            },
        ),
        (
            "consensus footrule",
            Query::TopK {
                k,
                metric: TopKMetric::Footrule,
                variant: Variant::Mean,
            },
        ),
        (
            "consensus intersection",
            Query::TopK {
                k,
                metric: TopKMetric::Intersection,
                variant: Variant::Mean,
            },
        ),
        (
            "expected score",
            Query::Baseline {
                kind: BaselineKind::ExpectedScore { k },
            },
        ),
        (
            "expected rank",
            Query::Baseline {
                kind: BaselineKind::ExpectedRank { k, samples: 20_000 },
            },
        ),
        (
            "U-Top-k (sampled)",
            Query::Baseline {
                kind: BaselineKind::UTopK { k, samples: 20_000 },
            },
        ),
    ];
    let queries: Vec<Query> = batch.iter().map(|(_, q)| q.clone()).collect();
    let results = engine.run_batch(&queries);
    assert_eq!(
        engine.cache_stats().rank_context_builds,
        1,
        "E12 batch must share one rank-PMF build"
    );
    let mut answers: Vec<(&str, TopKList)> = batch
        .iter()
        .zip(results)
        .map(|((name, _), r)| {
            let answer = r.expect("all E12 queries are supported");
            (*name, answer.value.as_topk().expect("Top-k answer").clone())
        })
        .collect();
    // The Υ_H shortcut comes from a second engine with the harmonic knob set.
    let upsilon_engine = ConsensusEngineBuilder::new(engine.tree().clone())
        .seed(7)
        .intersection_strategy(IntersectionStrategy::Harmonic)
        .build()
        .expect("valid configuration");
    let upsilon = upsilon_engine
        .run(&Query::TopK {
            k,
            metric: TopKMetric::Intersection,
            variant: Variant::Mean,
        })
        .expect("supported");
    answers.insert(
        3,
        (
            "Υ_H ranking",
            upsilon.value.as_topk().expect("list").clone(),
        ),
    );
    let ctx = engine.context(k).expect("k is in range").clone();
    let consensus_sym = answers[0].1.clone();
    for (name, answer) in answers {
        let overlap = answer.overlap(&consensus_sym);
        t.add_row(vec![
            name.to_string(),
            format!("{overlap}/{k}"),
            fmt(sym_diff::expected_sym_diff_distance(&ctx, &answer)),
            fmt(footrule::expected_footrule_distance(&ctx, &answer)),
        ]);
    }
    t
}

/// E13 — scaling of the generating-function engine itself.
pub fn genfunc_scaling_table() -> Table {
    let mut t = Table::new(
        "E13: generating-function engine scaling",
        &[
            "n blocks",
            "world-size dist (ms)",
            "Pr(r ≤ 10) for all tuples (ms)",
        ],
    );
    for &n in &[100usize, 500, 1000, 2000] {
        let tree = scaling_tree(n, 23);
        let start = Instant::now();
        let _ = tree.world_size_distribution();
        let t_size = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let _ = tree.rank_pmf_all(10);
        let t_rank = start.elapsed().as_secs_f64();
        t.add_row(vec![n.to_string(), fmt_ms(t_size), fmt_ms(t_rank)]);
    }
    t
}

/// Runs every experiment, returning the tables in report order.
pub fn run_all() -> Vec<Table> {
    let mut tables = Vec::new();
    tables.push(figure1_table());
    tables.push(figure2_table());
    tables.extend(set_distance_tables());
    tables.extend(jaccard_tables());
    tables.extend(topk_sym_diff_tables());
    tables.extend(topk_median_tables());
    tables.extend(topk_intersection_tables());
    tables.extend(topk_footrule_tables());
    tables.push(topk_kendall_table());
    tables.push(rank_probability_table());
    tables.extend(aggregate_tables());
    tables.extend(clustering_tables());
    tables.push(baselines_table());
    tables.push(genfunc_scaling_table());
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_table_reports_exact_match() {
        let t = figure1_table();
        let rendered = t.render();
        // Paper and computed columns must coincide digit for digit at the
        // printed precision.
        assert!(rendered.contains("0.080000 | 0.080000"));
        assert!(rendered.contains("0.440000 | 0.440000"));
        assert!(rendered.contains("0.480000 | 0.480000"));
        assert!(rendered.contains("0.300000 | 0.300000"));
    }

    #[test]
    fn validation_experiments_report_optimal_everywhere() {
        for table in [
            set_distance_validation_table(),
            jaccard_validation_table(),
            topk_sym_diff_validation_table(),
        ] {
            let rendered = table.render();
            assert!(!rendered.contains("false"), "{rendered}");
        }
    }

    #[test]
    fn kendall_ratios_stay_below_two() {
        let t = topk_kendall_table();
        for row in t.render().lines().skip(4) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() >= 6 {
                if let (Ok(pivot), Ok(foot)) = (cols[4].parse::<f64>(), cols[5].parse::<f64>()) {
                    assert!(pivot <= 2.0 + 1e-6, "pivot ratio {pivot}");
                    assert!(foot <= 2.0 + 1e-6, "footrule ratio {foot}");
                }
            }
        }
    }

    #[test]
    fn aggregate_ratios_stay_below_four() {
        let t = aggregate_tables().remove(0);
        assert!(!t.render().contains("false"));
    }
}
