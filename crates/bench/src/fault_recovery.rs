//! Fault-recovery workload behind the `fault_recovery` JSON emitter binary.
//!
//! Two questions the robustness layer must answer with numbers:
//!
//! * **How fast is recovery, as a function of WAL length?** Per WAL length
//!   the workload measures the store-level recovery scan
//!   ([`cpdb_store::Store::open`]: snapshot read + WAL scan/validate), the
//!   full warm start ([`cpdb_live::LiveEngine::open`]: scan, export
//!   decode, delta replay), and the degraded-mode round-trip
//!   ([`cpdb_live::LiveEngine::try_recover`] after an injected append
//!   failure: re-probe + epoch verification + resume) — the last one on a
//!   [`cpdb_store::FaultVfs`], which is how the fault is injected
//!   deterministically. Every measurement asserts the recovered engine
//!   serves the writer's exact epoch.
//!
//! * **What does the [`cpdb_store::Vfs`] indirection cost on the durable
//!   hot path?** The durable-apply hot path is `write_all` + `sync_data`
//!   per record; the workload times identical operations through the
//!   production [`cpdb_store::StdVfs`] (dynamic dispatch through
//!   `Box<dyn VfsFile>`) and through `std::fs::File` directly, on the same
//!   buffers. The emitter's `--check` gate asserts the indirection costs
//!   at most 2% of a durable append: the dispatch delta is resolved on
//!   the buffered write path (where ~25 ns is measurable) and divided by
//!   the durable-append floor (see [`VfsOverheadResult::overhead_pct`]).
//!   The abstraction the fault injection hangs off must be free in
//!   production.

use cpdb_engine::TreeDelta;
use cpdb_live::{LiveEngine, LiveError};
use cpdb_store::{std_vfs, FaultVfs, RetryPolicy, Store, StoreOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Recovery latencies at one WAL length.
pub struct RecoveryResult {
    /// WAL records replayed by recovery.
    pub wal_records: usize,
    /// WAL file size (header + records).
    pub wal_bytes: u64,
    /// Milliseconds for the store-level recovery scan
    /// ([`Store::open`]: snapshot read + WAL scan, best of `reps`).
    pub store_scan_ms: f64,
    /// Milliseconds for the full warm start ([`LiveEngine::open`]:
    /// scan + export decode + delta replay, best of `reps`).
    pub warm_open_ms: f64,
    /// Milliseconds for the degraded-mode round-trip
    /// ([`LiveEngine::try_recover`]: WAL re-probe + epoch verification,
    /// best of `reps`).
    pub try_recover_ms: f64,
}

/// The VFS-indirection measurement on the durable-apply hot path.
pub struct VfsOverheadResult {
    /// Buffered `write_all` samples per side in the gated measurement.
    pub writes: usize,
    /// Bytes per write.
    pub buf_bytes: usize,
    /// Interquartile-mean microseconds per buffered `write_all` through
    /// `std::fs::File`, sampled op-interleaved with the VFS side.
    pub direct_write_us: f64,
    /// The same statistic through the production [`cpdb_store::StdVfs`]
    /// (dynamic dispatch through `Box<dyn VfsFile>`).
    pub via_vfs_write_us: f64,
    /// Durable appends (`write_all` + `sync_data`) per side in the
    /// floor measurement that supplies the gate's denominator.
    pub durable_appends: usize,
    /// Fastest single durable append through `std::fs::File`, in
    /// microseconds — the cost of one hot-path operation, and the
    /// denominator of [`overhead_pct`](Self::overhead_pct).
    pub direct_durable_us: f64,
    /// The same floor through the production [`cpdb_store::StdVfs`].
    pub via_vfs_durable_us: f64,
}

impl VfsOverheadResult {
    /// The indirection's measured cost per call, in microseconds:
    /// `via_vfs_write_us - direct_write_us`.
    ///
    /// Measured on the buffered write path because that is where a
    /// ~tens-of-nanoseconds dynamic dispatch is actually resolvable:
    /// op-interleaved sampling puts both sides in every noise regime the
    /// machine passes through, and the interquartile mean discards the
    /// scheduler/steal spikes that make extreme statistics (minima,
    /// burst totals) diverge by several percent on virtualised hardware.
    pub fn indirection_us(&self) -> f64 {
        self.via_vfs_write_us - self.direct_write_us
    }

    /// The gated number: the indirection cost as a percentage of one
    /// durable append — `indirection_us / direct_durable_us`.
    ///
    /// The durable-apply hot path pays the dispatch in front of the same
    /// syscalls on both sides, so its overhead is the dispatch cost
    /// ([`indirection_us`](Self::indirection_us), ~25 ns with
    /// retpoline-era indirect calls) against the cost of one durable
    /// append (`write_all` + `sync_data`, ~100 µs — the fsync dominates
    /// by two orders of magnitude). Dividing the *measured delta* by the
    /// *measured append floor* asserts exactly that claim while staying
    /// numerically stable: timing whole durable appends on both sides
    /// and comparing them directly would put the device's run-to-run
    /// fast-path drift (several percent on virtualised disks) in the
    /// numerator and swamp a 2% budget with noise.
    pub fn overhead_pct(&self) -> f64 {
        self.indirection_us() / self.direct_durable_us * 100.0
    }
}

/// Mean of the middle half of `samples` — robust to the heavy upper tail
/// (scheduler preemption, CPU steal) and to the occasional
/// too-fast-to-trust clock reading at the bottom.
fn iq_mean(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let (lo, hi) = (samples.len() / 4, samples.len() * 3 / 4);
    samples[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
}

fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "cpdb_fault_recovery_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A WAL-growing delta sequence: leaf-value updates cycling over the
/// tree's leaves — always valid, and each one replays through the
/// delta-aware maintenance path on recovery.
fn leaf_deltas(tree: &cpdb_andxor::AndXorTree, count: usize) -> Vec<TreeDelta> {
    let leaves = tree.leaf_nodes();
    (0..count)
        .map(|i| TreeDelta::LeafValue {
            leaf: leaves[i % leaves.len()],
            value: 40.0 + (i % 53) as f64,
        })
        .collect()
}

/// Measures recovery latency at each WAL length in `wal_lens` for an
/// `n`-block fleet: the writer logs that many deltas (compaction held
/// off), then the store scan, the warm start, and the degraded-mode
/// round-trip are each timed best-of-`reps`.
pub fn measure_recovery(
    n: usize,
    seed: u64,
    reps: usize,
    wal_lens: &[usize],
) -> Vec<RecoveryResult> {
    wal_lens
        .iter()
        .map(|&records| {
            let tree = crate::update_throughput::live_tree(n, seed);
            let deltas = leaf_deltas(&tree, records);

            // On-disk writer for the open-path measurements.
            let dir = temp_dir("open");
            let _ = std::fs::remove_dir_all(&dir);
            let live = LiveEngine::new_durable(
                crate::update_throughput::live_engine(tree.clone(), seed),
                &dir,
            )
            .expect("fresh store directory is creatable");
            live.set_snapshot_every(u64::MAX); // hold compaction off: pure WAL replay
            for delta in &deltas {
                live.apply(delta).expect("leaf updates are valid");
            }
            let final_epoch = live.epoch();
            drop(live);
            let wal_bytes = std::fs::metadata(dir.join("wal.cpdb"))
                .expect("wal file exists")
                .len();

            let store_scan_ms = best_ms(reps, || {
                let (_store, recovered) = Store::open(&dir).expect("store recovers");
                assert_eq!(recovered.epoch(), final_epoch, "scan lost an epoch");
            });
            let warm_open_ms = best_ms(reps, || {
                let reopened = LiveEngine::open(&dir).expect("warm start succeeds");
                assert_eq!(reopened.epoch(), final_epoch, "warm start lost an epoch");
            });
            let _ = std::fs::remove_dir_all(&dir);

            // Degraded round-trip on a FaultVfs: one injected append
            // failure degrades the writer; try_recover re-probes the same
            // WAL and resumes. Each rep re-degrades so the probe always
            // covers the full log.
            let vfs = FaultVfs::new();
            let options = || StoreOptions {
                vfs: Arc::new(vfs.clone()),
                retry: RetryPolicy::no_delay(1),
                ..StoreOptions::default()
            };
            let fault_dir = PathBuf::from("/bench/fault");
            let live = LiveEngine::new_durable_with(
                crate::update_throughput::live_engine(tree, seed),
                &fault_dir,
                options(),
            )
            .expect("fresh in-memory store is creatable");
            live.set_snapshot_every(u64::MAX);
            for delta in &deltas {
                live.apply(delta).expect("leaf updates are valid");
            }
            let poison = &deltas[0];
            let mut try_recover_ms = f64::INFINITY;
            for _ in 0..reps.max(1) {
                vfs.fail_at(vfs.op_count(), std::io::ErrorKind::StorageFull, false);
                match live.apply(poison) {
                    Err(LiveError::Degraded(_)) => {}
                    other => panic!("injected fault did not degrade the writer: {other:?}"),
                }
                vfs.clear_faults();
                let start = Instant::now();
                let health = live.try_recover().expect("recovery succeeds");
                try_recover_ms = try_recover_ms.min(start.elapsed().as_secs_f64() * 1e3);
                assert!(health.is_healthy(), "recovery left the engine degraded");
            }

            RecoveryResult {
                wal_records: records,
                wal_bytes,
                store_scan_ms,
                warm_open_ms,
                try_recover_ms,
            }
        })
        .collect()
}

/// Times identical operations through the production
/// [`cpdb_store::StdVfs`] and through `std::fs::File` directly: the cost
/// of the VFS indirection on the durable-apply hot path. The gated
/// statistic is the op-interleaved interquartile mean of buffered
/// `write_all` latencies; full durable appends (`write_all` +
/// `sync_data`, `appends × reps` per side) are floor-timed for context.
pub fn measure_vfs_overhead(appends: usize, buf_bytes: usize, reps: usize) -> VfsOverheadResult {
    let dir = temp_dir("vfs");
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    let buf = vec![0xA5u8; buf_bytes];

    let vfs = std_vfs();

    // Gated measurement: op-interleaved buffered writes. Alternating a
    // single direct op with a single VFS op puts both sides in every
    // noise regime the machine passes through; the interquartile mean
    // then discards the scheduler/steal spikes that make extreme
    // statistics (minima, burst totals) diverge by several percent on
    // virtualised hardware. Both files are truncated back periodically
    // so the working set stays in a few pages of cache on each side.
    const WRITES: usize = 16_384;
    const TRUNCATE_EVERY: usize = 256;
    let mut f_direct = std::fs::File::create(dir.join("direct.bin")).expect("file is creatable");
    let mut f_via = vfs
        .create_truncated(&dir.join("via_vfs.bin"))
        .expect("file is creatable");
    let mut direct_samples = Vec::with_capacity(WRITES);
    let mut via_samples = Vec::with_capacity(WRITES);
    for i in 0..WRITES {
        if i % TRUNCATE_EVERY == 0 {
            f_direct.set_len(0).expect("truncate succeeds");
            f_direct.seek(SeekFrom::End(0)).expect("seek succeeds");
            f_via.set_len(0).expect("truncate succeeds");
            f_via.seek_end().expect("seek succeeds");
        }
        let start = Instant::now();
        f_direct.write_all(&buf).expect("write succeeds");
        direct_samples.push(start.elapsed().as_secs_f64() * 1e6);
        let start = Instant::now();
        f_via.write_all(&buf).expect("write succeeds");
        via_samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let direct_write_us = iq_mean(direct_samples);
    let via_vfs_write_us = iq_mean(via_samples);

    // Floors on the full durable append (write + fsync), also
    // op-interleaved: the denominator of the gated overhead. The two
    // sides' floors are reported for context but never compared against
    // each other — the device's fast path drifts several percent
    // run-to-run, which is exactly the noise the gate's delta/floor
    // construction keeps out of the numerator.
    let durable_appends = appends * reps.max(1);
    let mut d_direct =
        std::fs::File::create(dir.join("durable_direct.bin")).expect("file is creatable");
    let mut d_via = vfs
        .create_truncated(&dir.join("durable_via_vfs.bin"))
        .expect("file is creatable");
    let mut direct_durable_us = f64::INFINITY;
    let mut via_vfs_durable_us = f64::INFINITY;
    for _ in 0..durable_appends {
        let start = Instant::now();
        d_direct.write_all(&buf).expect("write succeeds");
        d_direct.sync_data().expect("fsync succeeds");
        direct_durable_us = direct_durable_us.min(start.elapsed().as_secs_f64() * 1e6);
        let start = Instant::now();
        d_via.write_all(&buf).expect("write succeeds");
        d_via.sync_data().expect("fsync succeeds");
        via_vfs_durable_us = via_vfs_durable_us.min(start.elapsed().as_secs_f64() * 1e6);
    }

    let _ = std::fs::remove_dir_all(&dir);
    VfsOverheadResult {
        writes: WRITES,
        buf_bytes,
        direct_write_us,
        via_vfs_write_us,
        durable_appends,
        direct_durable_us,
        via_vfs_durable_us,
    }
}
