//! Live-update maintenance workload shared by the `update_throughput`
//! Criterion bench and the `update_throughput` JSON emitter binary.
//!
//! The workload models a warm serving engine absorbing one [`TreeDelta`] of
//! each kind and compares, per kind:
//!
//! * **patch** — [`ConsensusEngine::apply_delta`]: the delta-aware
//!   maintenance that keeps untouched artifacts (`Arc`-shared), patches the
//!   pairwise/marginal artifacts selectively, and drops only globally-
//!   invalidated ones;
//! * **full rebuild** — the pre-`cpdb_live` alternative: build a fresh
//!   engine from the mutated tree and recompute the same artifact families
//!   the patch path hands over warm (the `O(n²)` pairwise tournament, the
//!   co-clustering weights, and the set-query tables).
//!
//! Every measurement first asserts the two engines answer a probe batch
//! identically — the speedups below are for *bit-identical* serving state.

use cpdb_engine::{
    ConsensusEngine, ConsensusEngineBuilder, DeltaReport, Query, SetMetric, TopKMetric, TreeDelta,
    Variant,
};
use std::time::Instant;

/// The warm serving tree (`n` scored BID blocks × 2 alternatives — the same
/// family the artifact and throughput benches use).
pub fn live_tree(n: usize, seed: u64) -> cpdb_andxor::AndXorTree {
    crate::experiments::scaling_tree(n, seed)
}

/// Builds the serving engine for the workload.
pub fn live_engine(tree: cpdb_andxor::AndXorTree, seed: u64) -> ConsensusEngine {
    ConsensusEngineBuilder::new(tree)
        .seed(seed)
        .kendall_distance_samples(64)
        .build()
        .expect("valid live configuration")
}

/// Warms exactly the artifact families the delta maintenance manages
/// eagerly: the pairwise tournament, the co-clustering weights, and the
/// marginal/candidate tables (via the two set queries). This is also the
/// "full rebuild" work the patch path is measured against.
pub fn warm_maintained_artifacts(engine: &ConsensusEngine) {
    let _ = engine.preference_matrix();
    let _ = engine.coclustering_weights();
    for metric in [SetMetric::SymmetricDifference, SetMetric::Jaccard] {
        engine
            .run(&Query::SetConsensus {
                metric,
                variant: Variant::Mean,
            })
            .expect("set queries are always supported");
    }
}

/// The probe used to assert patched ≡ rebuilt serving state.
pub fn probe() -> Vec<Query> {
    vec![
        Query::SetConsensus {
            metric: SetMetric::SymmetricDifference,
            variant: Variant::Mean,
        },
        Query::SetConsensus {
            metric: SetMetric::Jaccard,
            variant: Variant::Mean,
        },
        Query::TopK {
            k: 5,
            metric: TopKMetric::Footrule,
            variant: Variant::Mean,
        },
        Query::Clustering { restarts: 4 },
    ]
}

/// One delta per supported kind, addressed against `tree` by content. The
/// probability/value targets pick a mid-fleet block so the affected set is a
/// strict subset of the keys.
pub fn delta_suite(tree: &cpdb_andxor::AndXorTree) -> Vec<(&'static str, TreeDelta)> {
    let keys = tree.keys();
    let mid = keys[keys.len() / 2];
    let leaf = tree.leaves_of_key(mid.0)[0];
    let xor = tree.parent_of(leaf).expect("BID leaves live in blocks");
    let (_, old_p) = tree.children(xor)[0];
    // Order-preserving nudge: move the leaf's value to the midpoint between
    // it and the next distinct value above (the sorted sequence of values —
    // and hence the rank sweep's activation order — is provably unchanged).
    let nudged = tree
        .leaf_alternative(leaf)
        .expect("leaf by construction")
        .value
        .0;
    let values = tree.distinct_values();
    let above = values.iter().copied().find(|&v| v > nudged);
    let preserved_value = match above {
        Some(v) => nudged + (v - nudged) * 0.5,
        None => nudged + 1.0,
    };
    // Insert target: a block with real slack (maybe_fraction leaves ~30% of
    // blocks under-full); falling back to a zero-mass alternative keeps the
    // delta valid even on a fully saturated tree.
    let (insert_xor, insert_key, insert_p) = keys
        .iter()
        .filter_map(|key| {
            let leaf = tree.leaves_of_key(key.0)[0];
            let xor = tree.parent_of(leaf)?;
            let mass: f64 = tree.children(xor).iter().map(|(_, p)| *p).sum();
            (mass < 0.99).then_some((xor, key.0, (1.0 - mass) * 0.5))
        })
        .next()
        .unwrap_or((xor, mid.0, 0.0));
    let other = keys[keys.len() / 3];
    let other_leaf = tree.leaves_of_key(other.0)[0];
    let other_xor = tree.parent_of(other_leaf).expect("BID block");
    vec![
        (
            "xor_probability",
            TreeDelta::XorEdgeProbability {
                xor,
                child: leaf,
                probability: (old_p * 0.5).max(1e-3),
            },
        ),
        (
            "leaf_value_order_preserving",
            TreeDelta::LeafValue {
                leaf,
                value: preserved_value,
            },
        ),
        (
            "insert_alternative",
            TreeDelta::InsertAlternative {
                xor: insert_xor,
                key: insert_key,
                value: nudged * 0.5,
                probability: insert_p,
            },
        ),
        (
            "remove_alternative",
            TreeDelta::RemoveAlternative {
                xor: other_xor,
                leaf: other_leaf,
            },
        ),
        (
            "insert_tuple_block",
            TreeDelta::InsertTupleBlock {
                under: tree.root(),
                key: keys.iter().map(|k| k.0).max().unwrap_or(0) + 1,
                alternatives: vec![(5e5, 0.4), (2e5, 0.3)],
            },
        ),
    ]
}

/// One measured delta kind.
pub struct KindResult {
    /// Delta-kind label.
    pub kind: &'static str,
    /// Milliseconds for `apply_delta` (best of `reps`).
    pub patch_ms: f64,
    /// Milliseconds for the fresh-engine rebuild of the same warm artifact
    /// families (best of `reps`).
    pub rebuild_ms: f64,
    /// Artifact decisions of the patch path.
    pub report: DeltaReport,
}

impl KindResult {
    /// `rebuild / patch` — how much faster the maintenance path publishes a
    /// warm next epoch.
    pub fn speedup(&self) -> f64 {
        self.rebuild_ms / self.patch_ms
    }
}

fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e3
}

/// Measures every delta kind against one warm engine of `n` blocks,
/// asserting patched ≡ rebuilt answers on each kind.
pub fn measure_kinds(n: usize, seed: u64, reps: usize) -> Vec<KindResult> {
    let tree = live_tree(n, seed);
    let warm = live_engine(tree.clone(), seed);
    warm_maintained_artifacts(&warm);
    let queries = probe();
    delta_suite(&tree)
        .into_iter()
        .map(|(kind, delta)| {
            let (patched, report) = warm.apply_delta(&delta).expect("suite deltas are valid");
            assert!(
                kind != "leaf_value_order_preserving" || report.impact.rank_order_preserved,
                "the order-preserving nudge changed the rank order; the kind would \
                 measure the wrong maintenance path"
            );
            let rebuilt = live_engine(patched.tree().clone(), seed);
            warm_maintained_artifacts(&rebuilt);
            assert_eq!(
                patched.run_batch_serial(&queries),
                rebuilt.run_batch_serial(&queries),
                "patched epoch diverges from full rebuild for {kind}"
            );
            let patch_ms = best_ms(reps, || warm.apply_delta(&delta).expect("valid"));
            let rebuild_ms = best_ms(reps, || {
                let fresh = live_engine(patched.tree().clone(), seed);
                warm_maintained_artifacts(&fresh);
                fresh
            });
            KindResult {
                kind,
                patch_ms,
                rebuild_ms,
                report,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_every_delta_kind_and_patches_win_shape() {
        let results = measure_kinds(24, 5, 1);
        assert_eq!(results.len(), 5);
        let prob = &results[0];
        assert_eq!(prob.kind, "xor_probability");
        // The selective contract: a probability delta keeps and patches.
        assert!(prob.report.kept() >= 1, "{:?}", prob.report);
        assert!(prob.report.patched() >= 1, "{:?}", prob.report);
        // The order-preserving value delta keeps its rank contexts… none are
        // built in this workload (set/pairwise only), so just check it ran.
        assert!(results
            .iter()
            .all(|r| r.patch_ms > 0.0 && r.rebuild_ms > 0.0));
    }
}
