//! # cpdb-bench — experiment harness shared by the benches and the
//! `experiments` binary.
//!
//! The paper has no empirical section, so the "tables and figures" this
//! harness regenerates are (a) the two figures of the paper, reproduced
//! exactly, and (b) one validation + one scaling experiment per algorithmic
//! claim, as catalogued in `DESIGN.md` and reported in `EXPERIMENTS.md`.
//!
//! The heavy lifting lives here so that the Criterion benches and the
//! `experiments` binary print exactly the same numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fault_recovery;
pub mod observability;
pub mod persistence;
pub mod query_throughput;
pub mod rank_artifacts;
pub mod replication;
pub mod table;
pub mod update_throughput;

pub use experiments::*;
pub use table::Table;
