//! Experiment runner: regenerates every figure of the paper and every
//! validation/scaling table recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cpdb_bench --bin experiments            # run everything
//! cargo run --release -p cpdb_bench --bin experiments fig1 e4    # run a subset
//! ```
//!
//! Experiment names: `fig1`, `fig2`, `e1` (set distance), `e3` (Jaccard),
//! `e4` (Top-k d_Δ mean), `e5` (Top-k median DP), `e6` (intersection),
//! `e7` (footrule), `e8` (Kendall), `e9` (rank probabilities),
//! `e10` (aggregates), `e11` (clustering), `e12` (baselines),
//! `e13` (generating-function scaling).

use cpdb_bench::experiments;
use cpdb_bench::table::Table;

fn tables_for(name: &str) -> Vec<Table> {
    match name {
        "fig1" => vec![experiments::figure1_table()],
        "fig2" => vec![experiments::figure2_table()],
        "e1" | "e2" => experiments::set_distance_tables(),
        "e3" => experiments::jaccard_tables(),
        "e4" => experiments::topk_sym_diff_tables(),
        "e5" => experiments::topk_median_tables(),
        "e6" => experiments::topk_intersection_tables(),
        "e7" => experiments::topk_footrule_tables(),
        "e8" => vec![experiments::topk_kendall_table()],
        "e9" => vec![experiments::rank_probability_table()],
        "e10" => experiments::aggregate_tables(),
        "e11" => experiments::clustering_tables(),
        "e12" => vec![experiments::baselines_table()],
        "e13" => vec![experiments::genfunc_scaling_table()],
        other => {
            eprintln!("unknown experiment '{other}' (see --help text in the module docs)");
            Vec::new()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("# Consensus answers over probabilistic databases — experiment report");
    println!("# (paper: Li & Deshpande, PODS 2009; see EXPERIMENTS.md for the archived run)");
    let tables = if args.is_empty() {
        experiments::run_all()
    } else {
        args.iter().flat_map(|a| tables_for(a)).collect()
    };
    for table in tables {
        table.print();
    }
}
