//! `BENCH_fault_recovery.json` emitter: measures recovery latency as a
//! function of WAL length — the store-level scan, the full warm start, and
//! the degraded-mode [`try_recover`](cpdb_live::LiveEngine::try_recover)
//! round-trip after an injected append failure — plus the cost of the
//! [`cpdb_store::Vfs`] indirection on the durable-apply hot path
//! (`write_all` + `sync_data` through the production
//! [`cpdb_store::StdVfs`] vs `std::fs::File` directly).
//!
//! ```text
//! cargo run --release -p cpdb_bench --bin fault_recovery -- \
//!     --n 80 --lens 8,64,256 --reps 3 --out BENCH_fault_recovery.json --check
//! ```
//!
//! `--check` exits non-zero when the VFS indirection costs more than 2% of
//! one durable append (the dispatch delta resolved on the buffered write
//! path, divided by the durable-append floor — see
//! [`cpdb_bench::fault_recovery::VfsOverheadResult::overhead_pct`]) — the
//! abstraction the fault injection hangs off must be free in production —
//! or when any recovery misses an epoch (asserted inside the workload).

use cpdb_bench::fault_recovery::{measure_recovery, measure_vfs_overhead, RecoveryResult};

struct Args {
    n: usize,
    seed: u64,
    reps: usize,
    lens: Vec<usize>,
    appends: usize,
    buf_bytes: usize,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 80,
        seed: 7,
        reps: 3,
        lens: vec![8, 64, 256],
        appends: 256,
        buf_bytes: 4096,
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n").parse().expect("--n takes an integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes an integer"),
            "--lens" => {
                args.lens = value("--lens")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--lens takes integers"))
                    .collect();
            }
            "--appends" => {
                args.appends = value("--appends")
                    .parse()
                    .expect("--appends takes an integer");
            }
            "--buf" => {
                args.buf_bytes = value("--buf").parse().expect("--buf takes an integer");
            }
            "--out" => args.out = Some(value("--out")),
            "--check" => args.check = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

fn len_json(r: &RecoveryResult) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"wal_bytes\": {},\n",
            "      \"store_scan_ms\": {:.3},\n",
            "      \"warm_open_ms\": {:.3},\n",
            "      \"try_recover_ms\": {:.3}\n",
            "    }}"
        ),
        r.wal_records, r.wal_bytes, r.store_scan_ms, r.warm_open_ms, r.try_recover_ms,
    )
}

fn main() {
    let args = parse_args();
    let results = measure_recovery(args.n, args.seed, args.reps, &args.lens);
    let overhead = measure_vfs_overhead(args.appends, args.buf_bytes, args.reps);

    println!(
        "fault_recovery — n = {}, seed = {}, best of {}",
        args.n, args.seed, args.reps
    );
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>16}",
        "wal records", "wal bytes", "store scan ms", "warm open ms", "try_recover ms"
    );
    for r in &results {
        println!(
            "{:<12} {:>12} {:>14.3} {:>14.3} {:>16.3}",
            r.wal_records, r.wal_bytes, r.store_scan_ms, r.warm_open_ms, r.try_recover_ms
        );
    }
    println!(
        "vfs indirection — {} buffered writes × {} B: direct {:.4} µs/op, via vfs {:.4} µs/op (delta {:+.4} µs)",
        overhead.writes,
        overhead.buf_bytes,
        overhead.direct_write_us,
        overhead.via_vfs_write_us,
        overhead.indirection_us()
    );
    println!(
        "durable floor — {} appends: direct {:.1} µs, via vfs {:.1} µs; indirection = {:+.3}% of one durable append",
        overhead.durable_appends,
        overhead.direct_durable_us,
        overhead.via_vfs_durable_us,
        overhead.overhead_pct()
    );

    if let Some(path) = &args.out {
        let lens: Vec<String> = results.iter().map(len_json).collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"fault_recovery\",\n",
                "  \"n\": {},\n",
                "  \"seed\": {},\n",
                "  \"reps\": {},\n",
                "  \"wal_lengths\": {{\n{}\n  }},\n",
                "  \"vfs_overhead\": {{\n",
                "    \"writes\": {},\n",
                "    \"buf_bytes\": {},\n",
                "    \"direct_write_us\": {:.4},\n",
                "    \"via_vfs_write_us\": {:.4},\n",
                "    \"indirection_us\": {:.4},\n",
                "    \"durable_appends\": {},\n",
                "    \"direct_durable_us\": {:.1},\n",
                "    \"via_vfs_durable_us\": {:.1},\n",
                "    \"overhead_pct\": {:.3}\n",
                "  }}\n",
                "}}\n"
            ),
            args.n,
            args.seed,
            args.reps,
            lens.join(",\n"),
            overhead.writes,
            overhead.buf_bytes,
            overhead.direct_write_us,
            overhead.via_vfs_write_us,
            overhead.indirection_us(),
            overhead.durable_appends,
            overhead.direct_durable_us,
            overhead.via_vfs_durable_us,
            overhead.overhead_pct(),
        );
        std::fs::write(path, json).expect("bench JSON is writable");
        println!("wrote {path}");
    }

    if args.check {
        let pct = overhead.overhead_pct();
        assert!(
            pct <= 2.0,
            "VFS indirection costs {pct:.3}% of a durable append (budget: 2%)"
        );
        println!("check passed: VFS indirection {pct:+.3}% of a durable append (≤ 2% budget)");
    }
}
