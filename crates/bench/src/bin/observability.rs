//! `BENCH_observability.json` emitter: measures what an attached
//! [`cpdb_obs::Obs`] sink costs on the hot query path — each recording
//! primitive, the full per-query span bundle enabled vs disabled, and an
//! op-interleaved end-to-end query comparison — plus the introspection
//! path (`snapshot`, `to_json`, full-ring `recent_events`) against a
//! populated registry.
//!
//! ```text
//! cargo run --release -p cpdb_bench --bin observability -- \
//!     --n 80 --reps 3 --out BENCH_observability.json --check
//! ```
//!
//! `--check` exits non-zero when the sink's per-query cost exceeds 2% of
//! one uninstrumented query of the standard probe mix (the span-bundle
//! delta divided by the mix's per-query floor — see
//! [`cpdb_bench::observability::ObsOverheadResult::overhead_pct`]): the
//! sink must be attachable in production without moving any number the
//! other benches report. The worst-case ratio against the mix's cheapest
//! kind is reported alongside but never gated.

use cpdb_bench::observability::{measure_obs_overhead, measure_snapshot_cost};

struct Args {
    n: usize,
    seed: u64,
    reps: usize,
    ops: usize,
    series: usize,
    events: usize,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 80,
        seed: 7,
        reps: 3,
        ops: 200_000,
        series: 48,
        events: 1024,
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n").parse().expect("--n takes an integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes an integer"),
            "--ops" => args.ops = value("--ops").parse().expect("--ops takes an integer"),
            "--series" => {
                args.series = value("--series")
                    .parse()
                    .expect("--series takes an integer");
            }
            "--events" => {
                args.events = value("--events")
                    .parse()
                    .expect("--events takes an integer");
            }
            "--out" => args.out = Some(value("--out")),
            "--check" => args.check = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let overhead = measure_obs_overhead(args.n, args.seed, args.reps, args.ops);
    let introspection = measure_snapshot_cost(args.series, args.events, args.reps);

    println!(
        "observability — n = {}, seed = {}, {} interleaved queries/side/kind, {} ops/primitive",
        args.n, args.seed, overhead.queries, overhead.ops
    );
    println!(
        "{:<16} {:>14} {:>18}",
        "mix kind", "plain µs", "instrumented µs"
    );
    for m in &overhead.mix {
        println!(
            "{:<16} {:>14.2} {:>18.2}",
            m.kind, m.plain_us, m.instrumented_us
        );
    }
    println!(
        "mix mean — plain {:.2} µs, instrumented {:.2} µs (end-to-end, context only)",
        overhead.plain_query_us(),
        overhead.instrumented_query_us()
    );
    println!(
        "primitives — counter {:.1} ns, histogram record {:.1} ns, event {:.1} ns ({:.1} Mevents/s)",
        overhead.counter_ns,
        overhead.histogram_ns,
        overhead.event_ns,
        overhead.events_per_us()
    );
    println!(
        "per-query bundle — enabled {:.1} ns, disabled {:.1} ns; sink adds {:.1} ns = {:+.4}% of one mix query ({:+.2}% of the cheapest kind, not gated)",
        overhead.enabled_span_ns,
        overhead.disabled_span_ns,
        overhead.per_query_obs_ns(),
        overhead.overhead_pct(),
        overhead.worst_case_pct()
    );
    println!(
        "introspection — {} series, {} events: snapshot {:.2} µs, to_json {:.2} µs, recent_events {:.2} µs",
        introspection.series,
        introspection.events,
        introspection.snapshot_us,
        introspection.to_json_us,
        introspection.recent_events_us
    );

    if let Some(path) = &args.out {
        let mix: Vec<String> = overhead
            .mix
            .iter()
            .map(|m| {
                format!(
                    concat!(
                        "      \"{}\": {{\n",
                        "        \"plain_us\": {:.3},\n",
                        "        \"instrumented_us\": {:.3}\n",
                        "      }}"
                    ),
                    m.kind, m.plain_us, m.instrumented_us,
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"observability\",\n",
                "  \"n\": {},\n",
                "  \"seed\": {},\n",
                "  \"reps\": {},\n",
                "  \"hot_path\": {{\n",
                "    \"queries_per_kind\": {},\n",
                "    \"mix\": {{\n{}\n    }},\n",
                "    \"plain_query_us\": {:.3},\n",
                "    \"instrumented_query_us\": {:.3},\n",
                "    \"min_plain_query_us\": {:.3},\n",
                "    \"ops\": {},\n",
                "    \"counter_ns\": {:.2},\n",
                "    \"histogram_ns\": {:.2},\n",
                "    \"event_ns\": {:.2},\n",
                "    \"enabled_span_ns\": {:.2},\n",
                "    \"disabled_span_ns\": {:.2},\n",
                "    \"per_query_obs_ns\": {:.2},\n",
                "    \"overhead_pct\": {:.4},\n",
                "    \"worst_case_pct\": {:.4}\n",
                "  }},\n",
                "  \"introspection\": {{\n",
                "    \"series\": {},\n",
                "    \"events\": {},\n",
                "    \"snapshot_us\": {:.3},\n",
                "    \"to_json_us\": {:.3},\n",
                "    \"recent_events_us\": {:.3}\n",
                "  }}\n",
                "}}\n"
            ),
            args.n,
            args.seed,
            args.reps,
            overhead.queries,
            mix.join(",\n"),
            overhead.plain_query_us(),
            overhead.instrumented_query_us(),
            overhead.min_plain_query_us(),
            overhead.ops,
            overhead.counter_ns,
            overhead.histogram_ns,
            overhead.event_ns,
            overhead.enabled_span_ns,
            overhead.disabled_span_ns,
            overhead.per_query_obs_ns(),
            overhead.overhead_pct(),
            overhead.worst_case_pct(),
            introspection.series,
            introspection.events,
            introspection.snapshot_us,
            introspection.to_json_us,
            introspection.recent_events_us,
        );
        std::fs::write(path, json).expect("bench JSON is writable");
        println!("wrote {path}");
    }

    if args.check {
        let pct = overhead.overhead_pct();
        assert!(
            pct <= 2.0,
            "observability sink costs {pct:.4}% of a mix query (budget: 2%)"
        );
        println!("check passed: observability sink {pct:+.4}% of a mix query (≤ 2% budget)");
    }
}
