//! `BENCH_persistence.json` emitter: measures, per fleet size, the durable
//! write path (WAL append + fsync per delta), the snapshot write, and the
//! restart paths — warm start ([`cpdb_live::LiveEngine::open`]: snapshot
//! decode + WAL replay) and snapshot-only start (after compaction) — against
//! the cold rebuild they replace (fresh engine + recomputing the warm
//! artifact families), verifying on every measurement that the recovered
//! engine serves bit-identical answers.
//!
//! ```text
//! cargo run --release -p cpdb_bench --bin persistence_roundtrip -- \
//!     --sizes 50,120,200 --reps 3 --out BENCH_persistence.json --check
//! ```
//!
//! `--check` exits non-zero when the warm start is not faster than the cold
//! rebuild at any measured size (the `perf-smoke` CI gate), or when any
//! recovered engine diverges from its writer (asserted inside the workload).

use cpdb_bench::persistence::{measure_persistence, PersistenceResult};

struct Args {
    sizes: Vec<usize>,
    seed: u64,
    reps: usize,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![50, 120, 200],
        seed: 7,
        reps: 3,
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--sizes" => {
                args.sizes = value("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes takes integers"))
                    .collect();
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes an integer"),
            "--out" => args.out = Some(value("--out")),
            "--check" => args.check = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

fn size_json(r: &PersistenceResult) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"deltas_logged\": {},\n",
            "      \"snapshot_bytes\": {},\n",
            "      \"wal_bytes\": {},\n",
            "      \"durable_apply_ms\": {:.3},\n",
            "      \"snapshot_write_ms\": {:.3},\n",
            "      \"snapshot_write_mb_per_s\": {:.1},\n",
            "      \"warm_open_ms\": {:.3},\n",
            "      \"snapshot_only_open_ms\": {:.3},\n",
            "      \"snapshot_load_mb_per_s\": {:.1},\n",
            "      \"cold_build_ms\": {:.3},\n",
            "      \"cold_over_warm\": {:.2}\n",
            "    }}"
        ),
        r.n,
        r.deltas_applied,
        r.snapshot_bytes,
        r.wal_bytes,
        r.durable_apply_ms,
        r.snapshot_write_ms,
        r.snapshot_write_mbps(),
        r.warm_open_ms,
        r.snapshot_only_open_ms,
        r.snapshot_load_mbps(),
        r.cold_build_ms,
        r.cold_over_warm(),
    )
}

fn main() {
    let args = parse_args();
    let results: Vec<PersistenceResult> = args
        .sizes
        .iter()
        .map(|&n| measure_persistence(n, args.seed, args.reps))
        .collect();

    println!(
        "persistence_roundtrip — sizes = {:?}, seed = {}, best of {}",
        args.sizes, args.seed, args.reps
    );
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>12} {:>14} {:>14} {:>8}",
        "n",
        "snap bytes",
        "write ms",
        "warm open ms",
        "snap open ms",
        "cold build ms",
        "apply ms",
        "x"
    );
    for r in &results {
        println!(
            "{:<6} {:>12} {:>12.3} {:>14.3} {:>12.3} {:>14.3} {:>14.3} {:>7.2}x",
            r.n,
            r.snapshot_bytes,
            r.snapshot_write_ms,
            r.warm_open_ms,
            r.snapshot_only_open_ms,
            r.cold_build_ms,
            r.durable_apply_ms,
            r.cold_over_warm(),
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"cpdb.persistence.v1\",\n",
            "  \"workload\": {{ \"seed\": {}, \"reps\": {}, \"deltas\": \"one per TreeDelta kind\" }},\n",
            "  \"note\": \"durable scored-BID serving engine: every apply appends a checksummed, ",
            "fsynced WAL record before the epoch publishes. warm open = LiveEngine::open ",
            "(versioned snapshot decode with per-section CRC verification + WAL tail replay ",
            "through the delta-aware maintenance path); snapshot-only open = the same after ",
            "persist_snapshot compacted the WAL; cold build = fresh engine from the final tree ",
            "+ recomputing the warm artifact families. Recovered engines answer bit-identically ",
            "to their writer on every measurement.\",\n",
            "  \"sizes\": {{\n",
            "{}\n",
            "  }}\n",
            "}}\n"
        ),
        args.seed,
        args.reps,
        results
            .iter()
            .map(size_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    if let Some(path) = &args.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    } else {
        println!("{json}");
    }

    if args.check {
        for r in &results {
            if r.cold_over_warm() < 1.0 {
                eprintln!(
                    "CHECK FAILED: warm start at n = {} ({:.3} ms) is slower than the cold \
                     rebuild ({:.3} ms)",
                    r.n, r.warm_open_ms, r.cold_build_ms
                );
                std::process::exit(1);
            }
        }
        let min = results
            .iter()
            .map(PersistenceResult::cold_over_warm)
            .fold(f64::INFINITY, f64::min);
        println!(
            "check passed: warm start at least {min:.2}x faster than a cold rebuild at every \
             size, recovered answers bit-identical"
        );
    }
}
