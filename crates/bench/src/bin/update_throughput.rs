//! `BENCH_update_throughput.json` emitter: measures, per [`cpdb_engine::TreeDelta`]
//! kind, the latency of the delta-aware maintenance path (`apply_delta`:
//! keep / patch / invalidate per artifact) against a full rebuild (fresh
//! engine + recomputation of the same warm artifact families), verifying on
//! every measurement that the two engines serve bit-identical answers.
//!
//! ```text
//! cargo run --release -p cpdb_bench --bin update_throughput -- \
//!     --n 120 --reps 3 --out BENCH_update_throughput.json --check
//! ```
//!
//! `--check` exits non-zero when the patch path is not faster than the full
//! rebuild for the single-∨ probability update (the `perf-smoke` CI gate),
//! or when any patched epoch diverges from its rebuilt twin (asserted inside
//! the workload).

use cpdb_bench::update_throughput::{measure_kinds, KindResult};

struct Args {
    n: usize,
    seed: u64,
    reps: usize,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 120,
        seed: 7,
        reps: 3,
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n").parse().expect("--n takes an integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes an integer"),
            "--out" => args.out = Some(value("--out")),
            "--check" => args.check = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

fn kind_json(r: &KindResult) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"patch_ms\": {:.3},\n",
            "      \"full_rebuild_ms\": {:.3},\n",
            "      \"rebuild_over_patch\": {:.2},\n",
            "      \"artifacts_kept\": {},\n",
            "      \"artifacts_patched\": {},\n",
            "      \"artifacts_invalidated\": {}\n",
            "    }}"
        ),
        r.kind,
        r.patch_ms,
        r.rebuild_ms,
        r.speedup(),
        r.report.kept(),
        r.report.patched(),
        r.report.invalidated(),
    )
}

fn main() {
    let args = parse_args();
    let results = measure_kinds(args.n, args.seed, args.reps);

    println!(
        "update_throughput — n = {}, seed = {}, best of {}",
        args.n, args.seed, args.reps
    );
    println!(
        "{:<28} {:>10} {:>16} {:>8} {:>6} {:>8} {:>12}",
        "delta kind", "patch ms", "full rebuild ms", "x", "kept", "patched", "invalidated"
    );
    for r in &results {
        println!(
            "{:<28} {:>10.3} {:>16.3} {:>7.2}x {:>6} {:>8} {:>12}",
            r.kind,
            r.patch_ms,
            r.rebuild_ms,
            r.speedup(),
            r.report.kept(),
            r.report.patched(),
            r.report.invalidated(),
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"cpdb.update_throughput.v1\",\n",
            "  \"workload\": {{ \"n\": {}, \"seed\": {}, \"reps\": {} }},\n",
            "  \"note\": \"warm scored-BID serving engine absorbing one delta per kind. ",
            "patch = apply_delta (delta-aware maintenance: untouched artifacts Arc-shared, ",
            "pairwise/marginal artifacts patched on the affected keys only, global-rank ",
            "artifacts dropped for lazy rebuild); full rebuild = fresh engine + rebuilding ",
            "the same warm artifact families (O(n^2) tournament, co-clustering weights, ",
            "set-query tables). Patched and rebuilt engines answer bit-identically on every ",
            "measurement.\",\n",
            "  \"kinds\": {{\n",
            "{}\n",
            "  }}\n",
            "}}\n"
        ),
        args.n,
        args.seed,
        args.reps,
        results
            .iter()
            .map(kind_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    if let Some(path) = &args.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    } else {
        println!("{json}");
    }

    if args.check {
        let prob = results
            .iter()
            .find(|r| r.kind == "xor_probability")
            .expect("suite always measures the probability kind");
        if prob.speedup() < 1.0 {
            eprintln!(
                "CHECK FAILED: probability-delta patch ({:.3} ms) is slower than the full \
                 rebuild ({:.3} ms)",
                prob.patch_ms, prob.rebuild_ms
            );
            std::process::exit(1);
        }
        println!(
            "check passed: probability-delta patch {:.2}x faster than a full rebuild, \
             answers bit-identical on every kind",
            prob.speedup()
        );
    }
}
