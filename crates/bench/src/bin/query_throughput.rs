//! `BENCH_query_throughput.json` emitter: measures sustained mixed-workload
//! query throughput (QPS) of one `ConsensusEngine` under the serial `run`
//! loop vs. the two-phase parallel `run_batch`, warm and cold, at several
//! batch-duplication factors and thread counts, verifying on every
//! measurement that the two executors return bit-identical batches.
//!
//! ```text
//! cargo run --release -p cpdb_bench --bin query_throughput -- \
//!     --n 120 --reps 3 --out BENCH_query_throughput.json --check
//! ```
//!
//! `--check` exits non-zero when the warm parallel batch QPS falls below the
//! warm serial loop on the duplicated mixed workload (the `perf-smoke` CI
//! gate) or when any parallel batch diverges from the serial loop.
//!
//! The report records `machine_threads` (what
//! `std::thread::available_parallelism` saw): on a single-core runner the
//! parallel wins come from the batch executor's dedup amortisation alone;
//! multi-core runners add thread-level speedup on top.

use cpdb_bench::query_throughput::*;
use cpdb_parallel::resolve_threads;

struct Args {
    n: usize,
    seed: u64,
    reps: usize,
    dup: usize,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 120,
        seed: 7,
        reps: 3,
        dup: 4,
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n").parse().expect("--n takes an integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes an integer"),
            "--dup" => args.dup = value("--dup").parse().expect("--dup takes an integer"),
            "--out" => args.out = Some(value("--out")),
            "--check" => args.check = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

struct Scenario {
    label: String,
    dup: usize,
    threads: usize,
    batch_len: usize,
    warm_serial_qps: f64,
    warm_parallel_qps: f64,
    cold_serial_qps: f64,
    cold_parallel_qps: f64,
}

impl Scenario {
    fn warm_speedup(&self) -> f64 {
        self.warm_parallel_qps / self.warm_serial_qps
    }
    fn cold_speedup(&self) -> f64 {
        self.cold_parallel_qps / self.cold_serial_qps
    }
    fn json(&self) -> String {
        format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"dup\": {},\n",
                "      \"threads\": {},\n",
                "      \"batch_len\": {},\n",
                "      \"warm_serial_qps\": {:.1},\n",
                "      \"warm_parallel_qps\": {:.1},\n",
                "      \"warm_parallel_over_serial\": {:.2},\n",
                "      \"cold_serial_qps\": {:.1},\n",
                "      \"cold_parallel_qps\": {:.1},\n",
                "      \"cold_parallel_over_serial\": {:.2}\n",
                "    }}"
            ),
            self.label,
            self.dup,
            self.threads,
            self.batch_len,
            self.warm_serial_qps,
            self.warm_parallel_qps,
            self.warm_speedup(),
            self.cold_serial_qps,
            self.cold_parallel_qps,
            self.cold_speedup(),
        )
    }
}

fn measure(n: usize, seed: u64, reps: usize, dup: usize, threads: usize) -> Scenario {
    let batch = mixed_batch(&[5, 10], dup);
    // Warm: one engine with every artifact built; answers must agree.
    let warm = serving_engine(n, seed, threads);
    let serial_answers = warm.run_batch_serial(&batch);
    let parallel_answers = warm.run_batch(&batch);
    assert_identical(&serial_answers, &parallel_answers);
    let warm_serial_qps = qps_best_of(reps, batch.len(), || warm.run_batch_serial(&batch));
    let warm_parallel_qps = qps_best_of(reps, batch.len(), || warm.run_batch(&batch));
    // Cold: a fresh engine per run, artifact builds on the clock.
    let cold_serial_qps = qps_best_of(reps, batch.len(), || {
        serving_engine(n, seed, threads).run_batch_serial(&batch)
    });
    let cold_parallel_qps = qps_best_of(reps, batch.len(), || {
        serving_engine(n, seed, threads).run_batch(&batch)
    });
    Scenario {
        label: format!("dup{dup}_t{threads}"),
        dup,
        threads,
        batch_len: batch.len(),
        warm_serial_qps,
        warm_parallel_qps,
        cold_serial_qps,
        cold_parallel_qps,
    }
}

fn main() {
    let args = parse_args();
    if args.check && args.dup <= 1 {
        eprintln!("--check gates the duplicated (dup > 1) scenarios; pass --dup 2 or higher");
        std::process::exit(2);
    }
    let machine_threads = resolve_threads(0);
    // Always measure the all-unique baseline; add the duplicated workload
    // only when it is a distinct scenario (avoids duplicate JSON keys).
    let mut dups = vec![1usize];
    if args.dup > 1 {
        dups.push(args.dup);
    }
    let mut scenarios = Vec::new();
    for &dup in &dups {
        for &threads in &[1usize, 2, 4, 8] {
            scenarios.push(measure(args.n, args.seed, args.reps, dup, threads));
        }
    }

    println!(
        "query_throughput — n = {}, seed = {}, best of {}, mixed batch over k ∈ {{5, 10}}, \
         machine threads = {}",
        args.n, args.seed, args.reps, machine_threads
    );
    println!(
        "{:<12} {:>6} {:>16} {:>18} {:>8} {:>16} {:>18} {:>8}",
        "scenario",
        "batch",
        "warm serial q/s",
        "warm parallel q/s",
        "x",
        "cold serial q/s",
        "cold parallel q/s",
        "x"
    );
    for s in &scenarios {
        println!(
            "{:<12} {:>6} {:>16.1} {:>18.1} {:>7.2}x {:>16.1} {:>18.1} {:>7.2}x",
            s.label,
            s.batch_len,
            s.warm_serial_qps,
            s.warm_parallel_qps,
            s.warm_speedup(),
            s.cold_serial_qps,
            s.cold_parallel_qps,
            s.cold_speedup(),
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"cpdb.query_throughput.v1\",\n",
            "  \"workload\": {{ \"n\": {}, \"seed\": {}, \"reps\": {}, \"ks\": [5, 10], ",
            "\"machine_threads\": {} }},\n",
            "  \"note\": \"mixed serving batches; dup = copies of each distinct query per batch ",
            "(production traffic repeats popular queries). Parallel = two-phase run_batch ",
            "(concurrent artifact prefetch + deduplicated fan-out); serial = plain run loop. ",
            "Answers bit-identical between executors on every measurement. On a 1-thread ",
            "machine the parallel win is dedup amortisation; extra cores multiply it.\",\n",
            "  \"scenarios\": {{\n",
            "{}\n",
            "  }}\n",
            "}}\n"
        ),
        args.n,
        args.seed,
        args.reps,
        machine_threads,
        scenarios
            .iter()
            .map(Scenario::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    if let Some(path) = &args.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    } else {
        println!("{json}");
    }

    if args.check {
        let mut failed = false;
        for s in scenarios.iter().filter(|s| s.dup > 1) {
            if s.warm_speedup() < 1.0 {
                eprintln!(
                    "CHECK FAILED: {} warm parallel batch ({:.1} q/s) is slower than the serial \
                     loop ({:.1} q/s)",
                    s.label, s.warm_parallel_qps, s.warm_serial_qps
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: warm parallel batch ≥ serial loop on every duplicated (dup > 1) \
             scenario, answers bit-identical on every scenario"
        );
    }
}
