//! `BENCH_replication.json` emitter: measures cold-follower catch-up
//! latency as a function of shipped-WAL length, segment-ship throughput,
//! and steady-state replica staleness at two sync cadences (see
//! [`cpdb_bench::replication`]).
//!
//! ```text
//! cargo run --release -p cpdb_bench --bin replication -- \
//!     --n 80 --lens 8,64,256 --reps 3 --out BENCH_replication.json --check
//! ```
//!
//! `--check` exits non-zero unless every measured catch-up leaves the
//! follower bit-identical to the primary (epoch digest and probe answers,
//! asserted inside the workload) and the per-delta sync cadence serves
//! with zero steady-state lag after each sync.

use cpdb_bench::replication::{measure_catch_up, measure_staleness, CatchUpResult};

struct Args {
    n: usize,
    seed: u64,
    reps: usize,
    lens: Vec<usize>,
    total: usize,
    cadences: Vec<usize>,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 80,
        seed: 7,
        reps: 3,
        lens: vec![8, 64, 256],
        total: 48,
        cadences: vec![1, 8],
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n").parse().expect("--n takes an integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes an integer"),
            "--lens" => {
                args.lens = value("--lens")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--lens takes integers"))
                    .collect();
            }
            "--total" => args.total = value("--total").parse().expect("--total takes an integer"),
            "--cadences" => {
                args.cadences = value("--cadences")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--cadences takes integers"))
                    .collect();
            }
            "--out" => args.out = Some(value("--out")),
            "--check" => args.check = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

fn len_json(r: &CatchUpResult) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"shipped_bytes\": {},\n",
            "      \"ship_ms\": {:.3},\n",
            "      \"ship_mb_per_s\": {:.1},\n",
            "      \"catch_up_ms\": {:.3}\n",
            "    }}"
        ),
        r.shipped_records, r.shipped_bytes, r.ship_ms, r.ship_mb_per_s, r.catch_up_ms,
    )
}

fn main() {
    let args = parse_args();
    let catch_up = measure_catch_up(args.n, args.seed, args.reps, &args.lens);
    let staleness = measure_staleness(args.n, args.seed, args.total, &args.cadences);

    println!(
        "replication — n = {}, seed = {}, best of {}",
        args.n, args.seed, args.reps
    );
    println!(
        "{:<16} {:>14} {:>10} {:>14} {:>14}",
        "shipped records", "shipped bytes", "ship ms", "ship MB/s", "catch-up ms"
    );
    for r in &catch_up {
        println!(
            "{:<16} {:>14} {:>10.3} {:>14.1} {:>14.3}",
            r.shipped_records, r.shipped_bytes, r.ship_ms, r.ship_mb_per_s, r.catch_up_ms
        );
    }
    for s in &staleness {
        println!(
            "staleness — sync every {:>2} deltas over {} epochs: mean lag {:.2}, max lag {}",
            s.sync_every, args.total, s.mean_lag, s.max_lag
        );
    }

    if let Some(path) = &args.out {
        let lens: Vec<String> = catch_up.iter().map(len_json).collect();
        let stale: Vec<String> = staleness
            .iter()
            .map(|s| {
                format!(
                    concat!(
                        "    \"{}\": {{\n",
                        "      \"mean_lag\": {:.3},\n",
                        "      \"max_lag\": {}\n",
                        "    }}"
                    ),
                    s.sync_every, s.mean_lag, s.max_lag
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"replication\",\n",
                "  \"n\": {},\n",
                "  \"seed\": {},\n",
                "  \"reps\": {},\n",
                "  \"total_epochs\": {},\n",
                "  \"shipped_wal_lengths\": {{\n{}\n  }},\n",
                "  \"staleness_by_sync_cadence\": {{\n{}\n  }}\n",
                "}}\n"
            ),
            args.n,
            args.seed,
            args.reps,
            args.total,
            lens.join(",\n"),
            stale.join(",\n"),
        );
        std::fs::write(path, json).expect("bench JSON is writable");
        println!("wrote {path}");
    }

    if args.check {
        // The hard bit-identity gates (epoch digest + probe answers after
        // every measured catch-up and the steady-state runs) are asserted
        // inside the workload; reaching this point means they all held.
        if let Some(per_delta) = staleness.iter().find(|s| s.sync_every == 1) {
            assert!(
                per_delta.max_lag <= 1,
                "per-delta sync cadence observed a lag of {} epochs",
                per_delta.max_lag
            );
        }
        println!(
            "check passed: every catch-up and steady-state follower was bit-identical to the primary"
        );
    }
}
