//! `BENCH_rank_artifacts.json` emitter: times the legacy per-tuple artifact
//! builds against the single-sweep batch evaluator (cold builds of the
//! rank-PMF table, the Kendall tournament, and the co-clustering weights),
//! verifies the results agree, and writes the measurements as JSON.
//!
//! ```text
//! cargo run --release -p cpdb_bench --bin rank_artifacts -- \
//!     --n 200 --k 20 --out BENCH_rank_artifacts.json --check
//! ```
//!
//! `--check` exits non-zero when any batch single-threaded cold build is
//! slower than its legacy counterpart (the `perf-smoke` CI gate) or when the
//! batch results diverge from the per-tuple paths by more than `1e-9`.

use cpdb_bench::rank_artifacts::*;
use cpdb_parallel::resolve_threads;

struct Args {
    n: usize,
    k: usize,
    seed: u64,
    reps: usize,
    threads: usize,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 200,
        k: 20,
        seed: 7,
        reps: 3,
        threads: 0,
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n").parse().expect("--n takes an integer"),
            "--k" => args.k = value("--k").parse().expect("--k takes an integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes an integer"),
            "--threads" => {
                args.threads = value("--threads")
                    .parse()
                    .expect("--threads takes an integer");
            }
            "--out" => args.out = Some(value("--out")),
            "--check" => args.check = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

struct Comparison {
    name: &'static str,
    legacy_ms: f64,
    batch_single_ms: f64,
    batch_parallel_ms: f64,
    max_abs_diff: f64,
}

impl Comparison {
    fn speedup_single(&self) -> f64 {
        self.legacy_ms / self.batch_single_ms
    }
    fn speedup_parallel(&self) -> f64 {
        self.legacy_ms / self.batch_parallel_ms
    }
    fn json(&self) -> String {
        format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"legacy_ms\": {:.3},\n",
                "      \"batch_single_thread_ms\": {:.3},\n",
                "      \"batch_parallel_ms\": {:.3},\n",
                "      \"speedup_single_thread\": {:.2},\n",
                "      \"speedup_parallel\": {:.2},\n",
                "      \"max_abs_diff\": {:e}\n",
                "    }}"
            ),
            self.name,
            self.legacy_ms,
            self.batch_single_ms,
            self.batch_parallel_ms,
            self.speedup_single(),
            self.speedup_parallel(),
            self.max_abs_diff,
        )
    }
}

fn main() {
    let args = parse_args();
    let threads = resolve_threads(args.threads);
    let tree = rank_workload(args.n, args.seed);
    let keys = tree.keys();
    let ctree = clustering_workload(args.n, args.seed);

    // --- Rank-PMF table (TopKContext cold build). ---
    let legacy_table = legacy_rank_table(&tree, args.k);
    let batch_table = batch_rank_table(&tree, args.k, 1);
    let rank = Comparison {
        name: "rank_pmf_table",
        legacy_ms: time_best_of_ms(args.reps, || legacy_rank_table(&tree, args.k)),
        batch_single_ms: time_best_of_ms(args.reps, || batch_rank_table(&tree, args.k, 1)),
        batch_parallel_ms: time_best_of_ms(args.reps, || batch_rank_table(&tree, args.k, threads)),
        max_abs_diff: rank_table_max_diff(&legacy_table, &batch_table),
    };

    // --- Kendall tournament (preference-matrix cold build). ---
    let legacy_t = legacy_tournament(&tree, &keys);
    let batch_t = batch_tournament(&tree, &keys, 1);
    let kendall = Comparison {
        name: "kendall_tournament",
        legacy_ms: time_best_of_ms(args.reps, || legacy_tournament(&tree, &keys)),
        batch_single_ms: time_best_of_ms(args.reps, || batch_tournament(&tree, &keys, 1)),
        batch_parallel_ms: time_best_of_ms(args.reps, || batch_tournament(&tree, &keys, threads)),
        max_abs_diff: matrix_max_diff(&legacy_t, &batch_t),
    };

    // --- Co-clustering weights cold build. ---
    let legacy_c = legacy_cocluster(&ctree);
    let batch_c = batch_cocluster(&ctree, 1);
    let cocluster = Comparison {
        name: "coclustering_weights",
        legacy_ms: time_best_of_ms(args.reps, || legacy_cocluster(&ctree)),
        batch_single_ms: time_best_of_ms(args.reps, || batch_cocluster(&ctree, 1)),
        batch_parallel_ms: time_best_of_ms(args.reps, || batch_cocluster(&ctree, threads)),
        max_abs_diff: cocluster_max_diff(&legacy_c, &batch_c),
    };

    let comparisons = [rank, kendall, cocluster];
    println!(
        "rank_artifacts cold builds — n = {}, k = {}, seed = {}, best of {}, {} thread(s) for the parallel column",
        args.n, args.k, args.seed, args.reps, threads
    );
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>10} {:>10} {:>12}",
        "artifact", "legacy ms", "batch(1) ms", "batch(T) ms", "x1", "xT", "max |Δ|"
    );
    for c in &comparisons {
        println!(
            "{:<22} {:>12.3} {:>14.3} {:>14.3} {:>9.1}x {:>9.1}x {:>12.2e}",
            c.name,
            c.legacy_ms,
            c.batch_single_ms,
            c.batch_parallel_ms,
            c.speedup_single(),
            c.speedup_parallel(),
            c.max_abs_diff,
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"cpdb.rank_artifacts.v1\",\n",
            "  \"workload\": {{ \"n\": {}, \"k\": {}, \"seed\": {}, \"reps\": {}, ",
            "\"parallel_threads\": {} }},\n",
            "  \"cold_builds\": {{\n",
            "{}\n",
            "  }}\n",
            "}}\n"
        ),
        args.n,
        args.k,
        args.seed,
        args.reps,
        threads,
        comparisons
            .iter()
            .map(Comparison::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    if let Some(path) = &args.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    } else {
        println!("{json}");
    }

    if args.check {
        let mut failed = false;
        for c in &comparisons {
            if c.max_abs_diff > 1e-9 {
                eprintln!(
                    "CHECK FAILED: {} batch diverges from the per-tuple path by {:.2e}",
                    c.name, c.max_abs_diff
                );
                failed = true;
            }
            if c.speedup_single() < 1.0 {
                eprintln!(
                    "CHECK FAILED: {} batch cold build ({:.3} ms) is slower than legacy ({:.3} ms)",
                    c.name, c.batch_single_ms, c.legacy_ms
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed: batch ≥ legacy on every artifact, results agree");
    }
}
