//! Persistence round-trip workload shared by the `persistence_roundtrip`
//! Criterion bench and the `persistence_roundtrip` JSON emitter binary.
//!
//! The workload models the restart path of a durable serving engine: a
//! [`cpdb_live::LiveEngine`] is created on disk, absorbs one delta of every
//! supported kind (each WAL-logged and fsynced before publication), and is
//! then reopened. The measurement compares:
//!
//! * **warm start** — [`cpdb_live::LiveEngine::open`]: decode the epoch-0
//!   snapshot (configuration, tree, and every built artifact, bit-exact) and
//!   replay the WAL tail through the delta-aware maintenance path;
//! * **snapshot-only start** — the same open after [`persist_snapshot`]
//!   compacted the WAL into a fresh snapshot (no replay work left);
//! * **cold rebuild** — the pre-`cpdb_store` alternative: build a fresh
//!   engine from the final tree and recompute the warm artifact families
//!   from scratch.
//!
//! Every measurement first asserts that the reopened engine answers the
//! probe batch bit-identically to the writer it recovered from.
//!
//! [`persist_snapshot`]: cpdb_live::LiveEngine::persist_snapshot

use crate::update_throughput::{
    delta_suite, live_engine, live_tree, probe, warm_maintained_artifacts,
};
use cpdb_live::LiveEngine;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One measured persistence round-trip at a given fleet size.
pub struct PersistenceResult {
    /// Fleet size (scored BID blocks).
    pub n: usize,
    /// Deltas logged to the WAL before the measured reopen.
    pub deltas_applied: usize,
    /// Size of the compacted snapshot file on disk.
    pub snapshot_bytes: u64,
    /// Size of the WAL before compaction (header + logged records).
    pub wal_bytes: u64,
    /// Milliseconds for a durable apply (WAL append + fsync + publish),
    /// averaged over the delta suite.
    pub durable_apply_ms: f64,
    /// Milliseconds to write + fsync + atomically publish a snapshot of the
    /// final epoch (best of `reps`).
    pub snapshot_write_ms: f64,
    /// Milliseconds for `LiveEngine::open`: snapshot decode + WAL replay
    /// (best of `reps`).
    pub warm_open_ms: f64,
    /// Milliseconds for `LiveEngine::open` after compaction: snapshot decode
    /// only (best of `reps`).
    pub snapshot_only_open_ms: f64,
    /// Milliseconds to rebuild the same serving state cold: fresh engine
    /// from the final tree + recomputing the warm artifact families (best of
    /// `reps`).
    pub cold_build_ms: f64,
}

impl PersistenceResult {
    /// `cold / warm` — how much faster a restart is when it recovers the
    /// persisted artifacts instead of recomputing them.
    pub fn cold_over_warm(&self) -> f64 {
        self.cold_build_ms / self.warm_open_ms
    }

    /// Snapshot write throughput in MB/s.
    pub fn snapshot_write_mbps(&self) -> f64 {
        (self.snapshot_bytes as f64 / 1e6) / (self.snapshot_write_ms / 1e3)
    }

    /// Snapshot load throughput in MB/s (decode + validate + rebuild).
    pub fn snapshot_load_mbps(&self) -> f64 {
        (self.snapshot_bytes as f64 / 1e6) / (self.snapshot_only_open_ms / 1e3)
    }
}

fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e3
}

/// A fresh, unique scratch directory under the system temp dir.
fn scratch_dir(n: usize, seed: u64) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let unique = format!(
        "cpdb-bench-persistence-{}-{}-{}-{}",
        std::process::id(),
        n,
        seed,
        SEQ.fetch_add(1, Ordering::Relaxed),
    );
    let dir = std::env::temp_dir().join(unique);
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    dir
}

/// Builds a durable engine in a fresh scratch directory and logs one delta
/// of every supported kind to its WAL. Returns the directory and the number
/// of logged deltas (= the final epoch). The caller owns the directory.
pub fn scratch_engine(n: usize, seed: u64) -> (PathBuf, usize) {
    let (dir, deltas_applied, _) = scratch_engine_timed(n, seed);
    (dir, deltas_applied)
}

fn scratch_engine_timed(n: usize, seed: u64) -> (PathBuf, usize, f64) {
    let tree = live_tree(n, seed);
    let dir = scratch_dir(n, seed);
    let engine = live_engine(tree.clone(), seed);
    warm_maintained_artifacts(&engine);
    let live = LiveEngine::new_durable(engine, &dir).expect("creating durable engine");
    // One durable apply per delta kind; each WAL append is fsynced before
    // the epoch publishes. Deltas address nodes by id, so each one is
    // regenerated against the tree it will actually mutate.
    let kinds = delta_suite(&tree).len();
    let mut apply_total_ms = 0.0;
    for i in 0..kinds {
        let current = live.snapshot().tree().clone();
        let (kind, delta) = delta_suite(&current).swap_remove(i);
        let start = Instant::now();
        live.apply(&delta)
            .unwrap_or_else(|e| panic!("applying suite delta {kind}: {e}"));
        apply_total_ms += start.elapsed().as_secs_f64() * 1e3;
    }
    (dir, kinds, apply_total_ms / kinds as f64)
}

/// Measures one persistence round-trip: durable writes, snapshot write, warm
/// reopen (snapshot + WAL replay), snapshot-only reopen, and the cold
/// rebuild it replaces — asserting recovered ≡ writer answers throughout.
pub fn measure_persistence(n: usize, seed: u64, reps: usize) -> PersistenceResult {
    let queries = probe();
    let (dir, deltas_applied, durable_apply_ms) = scratch_engine_timed(n, seed);
    let live = LiveEngine::open(&dir).expect("reopening the writer");

    let expected = live.snapshot();
    let expected_answers = expected.run_batch_serial(&queries);
    let final_tree = expected.tree().clone();
    let wal_bytes = std::fs::metadata(dir.join("wal.cpdb"))
        .expect("WAL exists after durable applies")
        .len();
    drop(expected);
    drop(live);

    // Warm start: epoch-0 snapshot decode + full WAL replay.
    let warm_open_ms = best_ms(reps, || {
        let reopened = LiveEngine::open(&dir).expect("warm reopen");
        assert_eq!(reopened.epoch(), deltas_applied as u64);
        reopened
    });
    let reopened = LiveEngine::open(&dir).expect("warm reopen");
    assert_eq!(
        reopened.snapshot().run_batch_serial(&queries),
        expected_answers,
        "warm-started engine diverges from the writer it recovered"
    );

    // Snapshot of the final epoch (also compacts the WAL).
    let snapshot_write_ms = best_ms(reps, || {
        reopened
            .persist_snapshot()
            .expect("snapshotting the final epoch")
    });
    let snapshot_bytes = std::fs::metadata(dir.join(format!("snapshot-{deltas_applied}.cpdb")))
        .expect("final-epoch snapshot exists")
        .len();
    drop(reopened);

    // Snapshot-only start: the WAL was compacted, so open is pure decode.
    let snapshot_only_open_ms = best_ms(reps, || {
        let reopened = LiveEngine::open(&dir).expect("snapshot-only reopen");
        assert_eq!(reopened.epoch(), deltas_applied as u64);
        reopened
    });
    let reopened = LiveEngine::open(&dir).expect("snapshot-only reopen");
    assert_eq!(
        reopened.snapshot().run_batch_serial(&queries),
        expected_answers,
        "snapshot-only start diverges from the writer it recovered"
    );
    drop(reopened);

    // The alternative: recompute everything from the final tree.
    let cold_build_ms = best_ms(reps, || {
        let cold = live_engine(final_tree.clone(), seed);
        warm_maintained_artifacts(&cold);
        cold
    });
    let cold = live_engine(final_tree.clone(), seed);
    warm_maintained_artifacts(&cold);
    assert_eq!(
        cold.run_batch_serial(&queries),
        expected_answers,
        "cold rebuild diverges from the recovered serving state"
    );

    std::fs::remove_dir_all(&dir).ok();
    PersistenceResult {
        n,
        deltas_applied,
        snapshot_bytes,
        wal_bytes,
        durable_apply_ms,
        snapshot_write_ms,
        warm_open_ms,
        snapshot_only_open_ms,
        cold_build_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_recovers_and_measures() {
        let r = measure_persistence(24, 5, 1);
        assert_eq!(r.n, 24);
        assert_eq!(r.deltas_applied, 5);
        assert!(r.snapshot_bytes > 0);
        // Header + five framed records.
        assert!(r.wal_bytes > 12);
        assert!(r.durable_apply_ms > 0.0);
        assert!(r.snapshot_write_ms > 0.0);
        assert!(r.warm_open_ms > 0.0);
        assert!(r.snapshot_only_open_ms > 0.0);
        assert!(r.cold_build_ms > 0.0);
        assert!(r.snapshot_write_mbps() > 0.0);
        assert!(r.snapshot_load_mbps() > 0.0);
    }
}
